//! Hostile-input coverage for the ops HTTP server: the parser and the
//! socket loop must degrade to clean error responses — never a panic,
//! never an unbounded buffer — when the peer is broken or adversarial.

use mfcp_obs::http::{parse_request, HttpConfig, ObsServer, ParseOutcome, Request};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn start_server(read_timeout: Duration) -> ObsServer {
    ObsServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            read_timeout,
            max_request_bytes: 1024,
        },
        None,
    )
    .expect("bind ephemeral port")
}

fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(bytes).expect("write");
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

#[test]
fn hostile_request_lines_get_400_not_panic() {
    let server = start_server(Duration::from_secs(2));
    let addr = server.local_addr();
    for bytes in [
        &b"\x00\x01\x02\x03\r\n\r\n"[..],
        b"GET\r\n\r\n",
        b"GET / SPDY/9\r\n\r\n",
        b"DELETE\t/ HTTP/1.1\r\n\r\n",
        b"GET http://evil.example/ HTTP/1.1\r\n\r\n",
        b"G\xffT / HTTP/1.1\r\n\r\n",
        b"GET / HTTP/1.1\n\n",
    ] {
        let reply = raw_exchange(addr, bytes);
        assert!(
            reply.starts_with("HTTP/1.1 400"),
            "expected 400 for {bytes:?}, got {reply:?}"
        );
    }
    // The server is still alive and serving afterwards.
    let ok = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
}

#[test]
fn oversized_request_gets_413() {
    let server = start_server(Duration::from_secs(2));
    let addr = server.local_addr();
    let mut huge = b"GET /".to_vec();
    huge.extend(std::iter::repeat_n(b'a', 4096));
    huge.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let reply = raw_exchange(addr, &huge);
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
}

#[test]
fn slow_loris_hits_read_deadline_with_408() {
    let server = start_server(Duration::from_millis(150));
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    // A valid prefix that never completes: the server must not wait
    // forever for the header block terminator.
    s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n")
        .expect("write partial");
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    let started = std::time::Instant::now();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(
        out.starts_with("HTTP/1.1 408"),
        "expected 408 on slow-loris, got {out:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline must bound the wait"
    );
}

#[test]
fn partial_close_and_unknown_paths_are_handled() {
    let server = start_server(Duration::from_secs(2));
    let addr = server.local_addr();
    // Peer sends a fragment and closes: no response owed, no panic.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /par").expect("write");
    }
    // Unknown path 404s without killing the loop.
    let reply = raw_exchange(addr, b"GET /definitely/not/a/route HTTP/1.1\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
    let ok = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
}

#[test]
fn parser_never_panics_on_byte_noise() {
    // Deterministic pseudo-random byte soup (no RNG dependency): every
    // outcome is acceptable except a panic.
    let mut state = 0x9e3779b97f4a7c15u64;
    for len in 0..200usize {
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            buf.push((state >> 33) as u8);
        }
        let _ = parse_request(&buf, 128);
    }
    // And on every prefix of a valid request, the outcome is Partial,
    // Malformed, or the final Complete — monotone, no panic.
    let valid = b"GET /metrics?window=5 HTTP/1.1\r\nHost: h\r\nAccept: */*\r\n\r\n";
    for cut in 0..=valid.len() {
        let outcome = parse_request(&valid[..cut], 8192);
        if cut == valid.len() {
            assert_eq!(
                outcome,
                ParseOutcome::Complete(Request {
                    method: "GET".into(),
                    path: "/metrics".into(),
                    query: Some("window=5".into()),
                })
            );
        } else {
            assert!(
                matches!(outcome, ParseOutcome::Partial | ParseOutcome::Complete(_)),
                "prefix of a valid request must not be Malformed at cut {cut}: {outcome:?}"
            );
        }
    }
}
