//! Consistent metric snapshots plus the JSON and human-readable sinks.

use crate::histogram::{bucket_bounds, BUCKETS};
use crate::registry::Registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Aggregate timing of one span path at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Completed executions of the span.
    pub count: u64,
    /// Total wall seconds across executions.
    pub total_secs: f64,
    /// Longest single execution, seconds.
    pub max_secs: f64,
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite observations recorded.
    pub count: u64,
    /// Non-finite observations rejected.
    pub nonfinite: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest observation (`NaN` when empty).
    pub min: f64,
    /// Largest observation (`NaN` when empty).
    pub max: f64,
    /// Occupied buckets as `(lo, hi, count)`, ascending.
    pub buckets: Vec<(f64, f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile from the bucket midpoints (`NaN` when empty).
    /// Accuracy is bounded by the log-linear bucket width (~11%).
    /// Delegates to the shared [`crate::histogram::quantile_over`]
    /// kernel, so snapshot and live-handle quantiles always agree.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::histogram::quantile_over(
            self.count,
            self.buckets.iter().copied(),
            q,
            self.min,
            self.max,
        )
    }
}

/// A consistent copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Span timings by `/`-joined path.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    pub(crate) fn capture(reg: &Registry) -> Snapshot {
        let counters = reg.counters_map().into_iter().collect();
        let gauges = reg.gauges_map().into_iter().collect();
        let spans = reg
            .spans
            .read()
            .unwrap()
            .iter()
            .map(|(path, stat)| {
                (
                    path.clone(),
                    SpanSnapshot {
                        count: stat.count.load(Ordering::Relaxed),
                        total_secs: stat.total_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                        max_secs: stat.max_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                    },
                )
            })
            .collect();
        let histograms = reg
            .histograms_map()
            .into_iter()
            .map(|(name, h)| {
                // Read the active generation; the inactive one is zeroed
                // (see histogram.rs reset semantics).
                let sh = h.active_shard();
                let count = sh.count.load(Ordering::Relaxed);
                let buckets: Vec<(f64, f64, u64)> = (0..BUCKETS)
                    .filter_map(|i| {
                        let c = sh.buckets[i].load(Ordering::Relaxed);
                        (c > 0).then(|| {
                            let (lo, hi) = bucket_bounds(i);
                            (lo, hi, c)
                        })
                    })
                    .collect();
                let (min, max) = if count == 0 {
                    (f64::NAN, f64::NAN)
                } else {
                    (
                        f64::from_bits(sh.min_bits.load(Ordering::Relaxed)),
                        f64::from_bits(sh.max_bits.load(Ordering::Relaxed)),
                    )
                };
                (
                    name,
                    HistogramSnapshot {
                        count,
                        nonfinite: sh.nonfinite.load(Ordering::Relaxed),
                        sum: f64::from_bits(sh.sum_bits.load(Ordering::Relaxed)),
                        min,
                        max,
                        buckets,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            spans,
            histograms,
        }
    }

    /// Serializes the snapshot as a JSON document (hand-rolled; the build
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, (name, v)| {
            let _ = write!(out, "{}: {v}", json_str(name));
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter(), |out, (name, v)| {
            let _ = write!(out, "{}: {}", json_str(name), json_f64(*v));
        });
        out.push_str("},\n  \"spans\": {");
        push_entries(&mut out, self.spans.iter(), |out, (path, s)| {
            let _ = write!(
                out,
                "{}: {{\"count\": {}, \"total_secs\": {}, \"max_secs\": {}}}",
                json_str(path),
                s.count,
                json_f64(s.total_secs),
                json_f64(s.max_secs)
            );
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, self.histograms.iter(), |out, (name, h)| {
            let _ = write!(
                out,
                "{}: {{\"count\": {}, \"nonfinite\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                json_str(name),
                h.count,
                h.nonfinite,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.mean()),
                json_f64(h.quantile(0.5)),
                json_f64(h.quantile(0.9)),
                json_f64(h.quantile(0.99)),
            );
            for (i, &(lo, hi, c)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"lo\": {}, \"hi\": {}, \"count\": {c}}}",
                    json_f64(lo),
                    json_f64(hi)
                );
            }
            out.push_str("]}");
        });
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot as indented human-readable text: the span
    /// profile tree first, then counters, then histogram summaries.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("profile tree (count, total, mean, max):\n");
        // BTreeMap order sorts parents directly before their children.
        for (path, s) in &self.spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let mean = if s.count > 0 {
                s.total_secs / s.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:indent$}{name:<28} x{:<6} {:>10.4}s  {:>10.6}s  {:>10.6}s",
                "",
                s.count,
                s.total_secs,
                mean,
                s.max_secs,
                indent = depth * 2
            );
        }
        out.push_str("\ncounters:\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<44} {v}");
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v}");
            }
        }
        out.push_str("\nhistograms (count, mean, p50, p90, p99, max):\n");
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<36} x{:<7} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.max
            );
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), the `/metrics.txt` payload of the live ops
    /// surface. Metric names are sanitized to `[a-zA-Z0-9_:]` (every
    /// other byte becomes `_`); counters keep their monotone semantics,
    /// gauges export verbatim, histograms export as summaries
    /// (`{quantile="…"}` series plus `_sum`/`_count`), and span paths
    /// export their cumulative seconds and execution counts.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", prom_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                let _ = writeln!(
                    out,
                    "{n}{{quantile=\"{label}\"}} {}",
                    prom_f64(h.quantile(q))
                );
            }
            let _ = writeln!(out, "{n}_sum {}", prom_f64(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        for (path, s) in &self.spans {
            let n = prom_name(path);
            let _ = writeln!(
                out,
                "# TYPE {n}_seconds_total counter\n{n}_seconds_total {}",
                prom_f64(s.total_secs)
            );
            let _ = writeln!(out, "# TYPE {n}_count counter\n{n}_count {}", s.count);
        }
        out
    }
}

/// Sanitizes a metric name into the Prometheus charset: `[a-zA-Z0-9_:]`
/// with a leading `_` when the first byte is a digit.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Prometheus floats: `NaN`/`+Inf`/`-Inf` are legal literals there.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn push_entries<'a, T: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = T>,
    write_one: impl Fn(&mut String, T),
) {
    let mut first = true;
    for entry in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_one(out, entry);
    }
    if !first {
        out.push_str("\n  ");
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity literals; encode them as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_is_parseable_shape() {
        let _g = crate::test_guard();
        crate::counter("snap.test.counter").add(7);
        crate::histogram("snap.test.hist").record(0.5);
        crate::histogram("snap.test.hist").record(2.0);
        {
            let _s = crate::span("snap_test_span");
        }
        let json = crate::snapshot().to_json();
        assert!(json.contains("\"snap.test.counter\": 7"));
        assert!(json.contains("\"snap.test.hist\""));
        assert!(json.contains("\"snap_test_span\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn quantiles_are_monotone_and_in_range() {
        let _g = crate::test_guard();
        let h = crate::histogram("snap.test.quant");
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let snap = crate::snapshot();
        let hs = &snap.histograms["snap.test.quant"];
        let (p50, p90, p99) = (hs.quantile(0.5), hs.quantile(0.9), hs.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p50 >= hs.min && p99 <= hs.max);
        // p50 of uniform 0.01..10 is ~5, allow bucket resolution slack.
        assert!((p50 - 5.0).abs() < 1.0, "p50 {p50}");
    }

    #[test]
    fn text_sink_renders_tree() {
        let _g = crate::test_guard();
        {
            let _a = crate::span("text_root");
            let _b = crate::span("text_child");
        }
        let text = crate::snapshot().to_text();
        assert!(text.contains("text_root"));
        assert!(text.contains("text_child"));
    }

    /// Round-trip through the strict in-repo parser: escaping of control
    /// chars and non-ASCII in interned names, no trailing commas, finite
    /// numbers only.
    #[test]
    fn json_round_trips_through_strict_parser() {
        let _g = crate::test_guard();
        let nasty = "snap.nasty \"quoted\"\\\n\t\u{1}控制字符😀";
        crate::counter(nasty).add(3);
        let h = crate::histogram("snap.nasty.hist é😀");
        h.record(2.5);
        h.record(f64::INFINITY); // must surface as a nonfinite tally, not a literal
        {
            let _s = crate::span("snap_nasty_span");
        }
        let json = crate::snapshot().to_json();
        let parsed = crate::json::parse(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        let counters = parsed.get("counters").expect("counters object");
        assert_eq!(
            counters.get(nasty).and_then(crate::json::Json::as_f64),
            Some(3.0),
            "nasty counter name must survive the round trip"
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("snap.nasty.hist é😀"))
            .expect("nasty histogram name");
        assert_eq!(
            hist.get("nonfinite").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            hist.get("count").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert!(parsed
            .get("spans")
            .and_then(|s| s.get("snap_nasty_span"))
            .is_some());
    }

    #[test]
    fn gauges_snapshot_and_serialize() {
        let _g = crate::test_guard();
        crate::reset();
        let g = crate::gauge("snap.test.gauge");
        g.set(4.5);
        g.add(-1.5);
        let snap = crate::snapshot();
        assert_eq!(snap.gauges["snap.test.gauge"], 3.0);
        let json = snap.to_json();
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"snap.test.gauge\": 3"));
        assert!(crate::json::parse(&json).is_ok(), "{json}");
        assert!(snap.to_text().contains("snap.test.gauge"));
        // Reset zeroes gauges like every other metric.
        crate::reset();
        assert_eq!(crate::snapshot().gauges["snap.test.gauge"], 0.0);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let _g = crate::test_guard();
        crate::reset();
        crate::counter("prom.test.counter with spaces").add(2);
        crate::gauge("prom.test.gauge").set(1.25);
        let h = crate::histogram("prom.test.hist");
        h.record(0.5);
        h.record(2.0);
        {
            let _s = crate::span("prom_test_span");
        }
        let text = crate::snapshot().to_prometheus();
        assert!(text.contains("# TYPE prom_test_counter_with_spaces counter"));
        assert!(text.contains("prom_test_counter_with_spaces 2"));
        assert!(text.contains("# TYPE prom_test_gauge gauge"));
        assert!(text.contains("prom_test_gauge 1.25"));
        assert!(text.contains("prom_test_hist{quantile=\"0.5\"}"));
        assert!(text.contains("prom_test_hist_count 2"));
        assert!(text.contains("prom_test_span_seconds_total"));
        // Every non-comment line is `name[{labels}] value` with a
        // parseable value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect(line);
            assert!(!name.is_empty(), "{line}");
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "{line}"
            );
        }
    }

    #[test]
    fn empty_histogram_mean_is_nan() {
        let _g = crate::test_guard();
        crate::histogram("snap.test.empty");
        let snap = crate::snapshot();
        assert!(snap.histograms["snap.test.empty"].mean().is_nan());
    }
}
