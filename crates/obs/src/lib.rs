//! Zero-dependency observability for the MFCP pipeline.
//!
//! Decision-focused pipelines are opaque about *why* regret moves: a perf
//! PR needs to know whether the time went into solver iterations, the
//! fallback ladder, gradient pullback, or queue wait. This crate is the
//! measuring substrate — no external dependencies (the build environment
//! has no registry access), `std` only:
//!
//! * [`span`] — RAII wall-time timers with nested scopes. Spans opened
//!   while another span is live on the same thread nest under it, so the
//!   snapshot reconstructs a profile tree (`train_mfcp/round/cluster_grads`).
//! * [`counter`] — monotonic `u64` counters.
//! * [`gauge`] — last-write-wins `f64` levels (queue depth, cache
//!   occupancy).
//! * [`histogram`] — log-linear-bucket value distributions (durations,
//!   iteration counts, gradient norms). See [`histogram::bucket_index`]
//!   for the bucketing scheme and [`Histogram::quantile`] for the live
//!   percentile read.
//! * [`timeseries`] — a background sampler that snapshots the registry
//!   on a fixed interval into fixed-capacity ring buffers: per-counter
//!   rates, gauge levels, and rolling histogram percentiles.
//! * [`http`] — a zero-dependency HTTP/1.1 ops server exposing
//!   `/healthz`, `/metrics`, `/metrics.txt` (Prometheus text),
//!   `/slo`, `/trace` (Chrome trace JSON), `/timeseries`, and an
//!   inline `/dashboard`.
//! * [`snapshot`] — a consistent copy of every metric, renderable as JSON
//!   (machine artifact for perf trajectories) or human-readable text.
//! * [`trace`] — a flight recorder: per-thread ring buffers of
//!   sequence-stamped begin/end/instant events (spans emit their
//!   begin/end pairs automatically), drained into Chrome `trace_event`
//!   JSON or a text timeline.
//! * [`json`] — a minimal strict JSON parser, used to validate this
//!   crate's hand-rolled serializers and to read benchmark baselines.
//!
//! Everything lives in one process-wide [`Registry`]. Recording is a few
//! atomic operations per event; instrumentation sits on coarse operations
//! (a solve, a training round, a pool job), keeping overhead well under
//! the 5% budget measured in DESIGN.md. [`set_enabled`]`(false)` turns
//! every record path into a cheap early return for A/B overhead runs.
//!
//! ```
//! mfcp_obs::reset();
//! {
//!     let _outer = mfcp_obs::span("work");
//!     let _inner = mfcp_obs::span("step");
//!     mfcp_obs::counter("work.items").add(3);
//!     mfcp_obs::histogram("work.value").record(0.25);
//! }
//! let snap = mfcp_obs::snapshot();
//! assert_eq!(snap.counters["work.items"], 3);
//! assert!(snap.spans.contains_key("work/step"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod http;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use histogram::Histogram;
pub use http::{HttpConfig, ObsServer};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
pub use span::SpanGuard;
pub use timeseries::{SamplerHandle, TimeSeries, TimeSeriesConfig};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Globally enables or disables recording. Handles stay valid; their
/// record operations become cheap no-ops while disabled. Used by the
/// `report --overhead` mode to A/B the instrumentation cost.
///
/// `set_enabled(false)` also disables the [`trace`] flight recorder —
/// the kill-switch gates every record path in this crate, events
/// included, so the disabled arm of an A/B run measures a clean
/// zero-instrumentation baseline.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Returns (interning on first use) the counter registered under `name`.
///
/// The handle is cheap to clone; hot paths should look it up once and
/// keep it.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Returns (interning on first use) the gauge registered under `name`.
/// Gauges are last-write-wins levels (queue depth, cache occupancy)
/// next to the monotonic [`counter`]s.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Returns (interning on first use) the histogram registered under `name`.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Opens a nested span scope; the returned guard records wall time under
/// the current thread's span path when dropped.
pub fn span(name: &'static str) -> SpanGuard {
    span::enter(global(), name)
}

/// Takes a consistent snapshot of every registered metric.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears every registered metric (counts to zero, spans/histograms
/// emptied) and discards buffered flight-recorder events. Counter and
/// span resets are per-cell stores, so an event recorded while the reset
/// runs lands on one side of it whole; histogram resets are epoch-based
/// (see [`histogram`]) and guarantee a concurrent record is either fully
/// counted in the post-reset state or fully discarded — never torn.
pub fn reset() {
    global().reset();
    trace::clear();
}

/// Serializes the enabled flag and recording assertions across this
/// crate's unit tests (they all share the one global registry).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let _g = test_guard();
        let c = counter("lib.test.counter");
        let before = snapshot().counters["lib.test.counter"];
        c.inc();
        c.add(4);
        assert_eq!(snapshot().counters["lib.test.counter"], before + 5);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = test_guard();
        let c = counter("lib.test.disabled");
        set_enabled(false);
        c.inc();
        histogram("lib.test.disabled.hist").record(1.0);
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counters["lib.test.disabled"], 0);
        assert_eq!(snap.histograms["lib.test.disabled.hist"].count, 0);
    }

    #[test]
    fn spans_nest_into_paths() {
        let _g = test_guard();
        {
            let _a = span("lib_outer");
            let _b = span("lib_inner");
        }
        let snap = snapshot();
        assert!(snap.spans.contains_key("lib_outer"));
        let inner = &snap.spans["lib_outer/lib_inner"];
        assert!(inner.count >= 1);
        assert!(inner.total_secs >= 0.0);
    }

    #[test]
    fn same_name_same_handle() {
        let _g = test_guard();
        let a = counter("lib.test.same");
        let b = counter("lib.test.same");
        a.add(2);
        b.add(3);
        assert!(snapshot().counters["lib.test.same"] >= 5);
    }
}
