//! A zero-dependency HTTP/1.1 ops server over the metric registry.
//!
//! The exchange daemon is a long-running process; operators need to ask
//! it *right now* questions — is it healthy, what are the SLO counters,
//! what did latency look like over the last minute — without attaching a
//! debugger or waiting for the end-of-run artifact. This module is that
//! surface: a deliberately small, hand-rolled HTTP/1.1 server (the build
//! environment has no registry access, so no hyper/axum) that serves
//! **read-only** views of the [`crate`] registry:
//!
//! | Path           | Content                                            |
//! |----------------|----------------------------------------------------|
//! | `/healthz`     | `ok` — liveness probe                              |
//! | `/metrics`     | full [`crate::snapshot`] as JSON                   |
//! | `/metrics.txt` | Prometheus text exposition of the same snapshot    |
//! | `/slo`         | serve SLO counters + rolling miss rate/percentiles |
//! | `/trace`       | drains the flight recorder as Chrome trace JSON    |
//! | `/timeseries`  | rolling window JSON (`?window=N` ticks)            |
//! | `/dashboard`   | inline HTML page with live sparklines              |
//!
//! Design constraints, in order: **never perturb the daemon** (every
//! endpoint only reads atomics already published by the registry — the
//! strict-determinism chaos suite runs bit-identical with the server
//! enabled), **never trust the peer** (bounded request size, per-
//! connection read deadline against slow-loris, strict request-line
//! validation — see [`parse_request`], which is pure and fuzz-tested in
//! `tests/http_hostile.rs`), and **shut down deterministically** (the
//! accept loop is woken by a self-connection and joined on drop).
//!
//! The server is sequential — one connection at a time. An ops surface
//! polled by one human and one scraper does not need concurrency, and a
//! sequential loop cannot amplify a request flood into thread
//! exhaustion.

use crate::timeseries::TimeSeries;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for one [`ObsServer`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address, e.g. `127.0.0.1:9184`. Port `0` picks a free port
    /// (read it back from [`ObsServer::local_addr`]).
    pub addr: String,
    /// Per-connection read deadline. A peer that trickles bytes slower
    /// than this (slow-loris) gets a `408` and the socket closed.
    pub read_timeout: Duration,
    /// Maximum accepted request size in bytes; larger requests get
    /// `413`. Generous for any `GET` this server understands.
    pub max_request_bytes: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(2),
            max_request_bytes: 8192,
        }
    }
}

/// A parsed request line (headers are intentionally ignored — no
/// endpoint varies on them, and not storing them bounds memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, …). Non-`GET` methods
    /// parse fine and are rejected with `405` by the handler.
    pub method: String,
    /// The path component of the request target, always starting `/`.
    pub path: String,
    /// The query string after `?`, if any, without the `?`.
    pub query: Option<String>,
}

/// Outcome of [`parse_request`] over a (possibly incomplete) buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The header block is complete and well-formed.
    Complete(Request),
    /// More bytes are needed; nothing invalid seen yet.
    Partial,
    /// The request can never become valid; respond `400` and close.
    Malformed(&'static str),
    /// The header block exceeded the size bound; respond `413`.
    TooLarge,
}

/// Parses the accumulated bytes of one HTTP/1.1 request. Pure (no I/O),
/// so hostile inputs are testable without sockets. Invalid requests are
/// rejected as early as the prefix proves them invalid — a malformed
/// request line fails [`ParseOutcome::Malformed`] without waiting for
/// the rest of the headers, which denies slow-loris peers the read
/// deadline's worth of patience.
pub fn parse_request(buf: &[u8], max_bytes: usize) -> ParseOutcome {
    // Reject embedded NUL / control bytes anywhere in the header block
    // (CR and LF are the only permitted control bytes, and only as
    // separators; HT never appears in a request this server accepts).
    if buf
        .iter()
        .any(|&b| (b < 0x20 && b != b'\r' && b != b'\n') || b == 0x7f)
    {
        return ParseOutcome::Malformed("control byte in header block");
    }
    let head_end = find_subslice(buf, b"\r\n\r\n");
    if head_end.is_none() && buf.len() > max_bytes {
        return ParseOutcome::TooLarge;
    }
    // Validate the request line as soon as it is complete, even when
    // the header block is still arriving.
    let Some(line_end) = find_subslice(buf, b"\r\n") else {
        // A lone LF before any CR can never become a CRLF request line.
        if buf.contains(&b'\n') {
            return ParseOutcome::Malformed("bare LF in request line");
        }
        return ParseOutcome::Partial;
    };
    let line = &buf[..line_end];
    let Ok(line) = std::str::from_utf8(line) else {
        return ParseOutcome::Malformed("request line is not UTF-8");
    };
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Malformed("request line is not `METHOD SP TARGET SP VERSION`");
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return ParseOutcome::Malformed("method is not an uppercase token");
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ParseOutcome::Malformed("unsupported HTTP version");
    }
    if !target.starts_with('/') {
        return ParseOutcome::Malformed("request target must be origin-form");
    }
    if head_end.is_none() {
        return ParseOutcome::Partial;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    ParseOutcome::Complete(Request {
        method: method.to_string(),
        path,
        query,
    })
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// The running ops server: an accept-loop thread plus its shutdown
/// signal. Dropping it (or calling [`Self::shutdown`]) stops accepting,
/// wakes the blocked `accept` with a self-connection, and joins the
/// thread — bounded, deterministic teardown.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `cfg.addr` and starts serving. `series` attaches a rolling
    /// [`TimeSeries`] for `/timeseries`, `/slo` rolling sections, and
    /// the dashboard sparklines; without it those report "disabled".
    pub fn start(cfg: HttpConfig, series: Option<Arc<TimeSeries>>) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("mfcp-obs-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_seen.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    serve_connection(stream, &cfg, series.as_deref());
                }
            })?;
        Ok(ObsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the loop re-checks the flag before
        // serving, so this connection is never answered.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, cfg: &HttpConfig, series: Option<&TimeSeries>) {
    crate::counter("obs.http.requests").inc();
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let request = loop {
        match parse_request(&buf, cfg.max_request_bytes) {
            ParseOutcome::Complete(req) => break req,
            ParseOutcome::Malformed(why) => {
                crate::counter("obs.http.bad_requests").inc();
                respond(&mut stream, 400, "Bad Request", "text/plain", why);
                return;
            }
            ParseOutcome::TooLarge => {
                crate::counter("obs.http.bad_requests").inc();
                respond(
                    &mut stream,
                    413,
                    "Content Too Large",
                    "text/plain",
                    "request exceeds size bound",
                );
                return;
            }
            ParseOutcome::Partial => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Peer closed before completing the request.
                crate::counter("obs.http.bad_requests").inc();
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                crate::counter("obs.http.timeouts").inc();
                respond(
                    &mut stream,
                    408,
                    "Request Timeout",
                    "text/plain",
                    "read deadline exceeded",
                );
                return;
            }
            Err(_) => return,
        }
    };
    if request.method != "GET" {
        respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported",
        );
        return;
    }
    match request.path.as_str() {
        "/healthz" => respond(&mut stream, 200, "OK", "text/plain", "ok\n"),
        "/metrics" => {
            let body = crate::snapshot().to_json();
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/metrics.txt" => {
            let body = crate::snapshot().to_prometheus();
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body);
        }
        "/slo" => {
            let body = slo_json(series);
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/trace" => {
            // Draining consumes the buffered window — each poll returns
            // the events since the previous one, like the flight
            // recorder's artifact path.
            let body = crate::trace::drain().to_chrome_json();
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/timeseries" => match series {
            Some(ts) => {
                let window = query_window(request.query.as_deref()).unwrap_or(120);
                let body = ts.window_json(window);
                respond(&mut stream, 200, "OK", "application/json", &body);
            }
            None => respond(
                &mut stream,
                404,
                "Not Found",
                "text/plain",
                "time-series sampling is not enabled",
            ),
        },
        "/" | "/dashboard" => {
            respond(
                &mut stream,
                200,
                "OK",
                "text/html; charset=utf-8",
                DASHBOARD_HTML,
            );
        }
        _ => {
            crate::counter("obs.http.not_found").inc();
            respond(&mut stream, 404, "Not Found", "text/plain", "unknown path");
        }
    }
}

fn query_window(query: Option<&str>) -> Option<usize> {
    let query = query?;
    for pair in query.split('&') {
        if let Some(v) = pair.strip_prefix("window=") {
            return v.parse::<usize>().ok().map(|w| w.clamp(1, 100_000));
        }
    }
    None
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, content_type: &str, body: &str) {
    // Best-effort: the peer may already be gone; errors are not ours to
    // surface.
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Writes `v` as a JSON number, or `null` when non-finite (empty
/// histograms yield NaN quantiles; `null` keeps the document strict).
fn json_num_or_null(v: f64) -> String {
    if v.is_finite() {
        crate::json::number(v)
    } else {
        "null".to_string()
    }
}

/// The `/slo` document: every `serve.*` counter, cumulative latency
/// percentiles from the live histogram, and — when a time-series store
/// is attached — rolling (last 60 ticks) miss rate and percentiles.
fn slo_json(series: Option<&TimeSeries>) -> String {
    use std::fmt::Write as _;
    let snap = crate::snapshot();
    let mut out = String::from("{\"counters\": {");
    let mut first = true;
    for (name, v) in snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("serve."))
    {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}: {v}", crate::json::escape(name));
    }
    out.push('}');
    let admitted = snap.counters.get("serve.admitted").copied().unwrap_or(0);
    let misses = snap
        .counters
        .get("serve.deadline_miss")
        .copied()
        .unwrap_or(0);
    let miss_rate = if admitted > 0 {
        misses as f64 / admitted as f64
    } else {
        0.0
    };
    let _ = write!(
        out,
        ", \"deadline_miss_rate\": {}",
        crate::json::number(miss_rate)
    );
    let h = crate::histogram("serve.match_latency_secs");
    let _ = write!(
        out,
        ", \"match_latency_secs\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        json_num_or_null(h.quantile(0.5)),
        json_num_or_null(h.quantile(0.95)),
        json_num_or_null(h.quantile(0.99))
    );
    match series {
        Some(ts) => {
            const WINDOW: usize = 60;
            let admit_rate = ts.rolling_rate("serve.admitted", WINDOW);
            let miss_per_sec = ts.rolling_rate("serve.deadline_miss", WINDOW);
            let rolling_miss = if admit_rate > 0.0 {
                miss_per_sec / admit_rate
            } else {
                f64::NAN
            };
            let _ = write!(
                out,
                ", \"rolling\": {{\"window_ticks\": {WINDOW}, \"interval_secs\": {}, \
                 \"admitted_per_sec\": {}, \"deadline_miss_rate\": {}, \
                 \"match_latency_secs\": {{\"p50\": {}, \"p95\": {}}}}}",
                crate::json::number(ts.interval().as_secs_f64()),
                json_num_or_null(admit_rate),
                json_num_or_null(rolling_miss),
                json_num_or_null(ts.rolling_quantile("serve.match_latency_secs", WINDOW, 0.5)),
                json_num_or_null(ts.rolling_quantile("serve.match_latency_secs", WINDOW, 0.95)),
            );
        }
        None => out.push_str(", \"rolling\": null"),
    }
    out.push('}');
    out
}

/// The inline ops dashboard: no external assets (the daemon may run in
/// an air-gapped environment), one page polling `/metrics` and
/// `/timeseries` and drawing canvas sparklines per series.
const DASHBOARD_HTML: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mfcp ops</title>
<style>
 body { font: 13px/1.5 ui-monospace, monospace; background: #11151a; color: #d8dee6; margin: 1.5em; }
 h1 { font-size: 16px; } h2 { font-size: 14px; margin: 1.2em 0 .4em; color: #8fb4d8; }
 table { border-collapse: collapse; }
 td, th { padding: 2px 12px 2px 0; text-align: left; vertical-align: middle; }
 td.num { text-align: right; font-variant-numeric: tabular-nums; }
 canvas { background: #1a2028; border-radius: 3px; }
 #status { color: #7a8694; }
</style>
</head>
<body>
<h1>mfcp ops surface <span id="status"></span></h1>
<h2>counters (rate/s, rolling window)</h2><table id="counters"></table>
<h2>gauges</h2><table id="gauges"></table>
<h2>latency percentiles (p95 per tick)</h2><table id="hists"></table>
<script>
function spark(canvas, pts) {
  const w = canvas.width, h = canvas.height, ctx = canvas.getContext('2d');
  ctx.clearRect(0, 0, w, h);
  const vals = pts.filter(p => p !== null && isFinite(p));
  if (!vals.length) return;
  const max = Math.max(...vals, 1e-12), min = Math.min(...vals, 0);
  ctx.strokeStyle = '#5fb3f0'; ctx.lineWidth = 1.25; ctx.beginPath();
  pts.forEach((p, i) => {
    if (p === null || !isFinite(p)) return;
    const x = pts.length > 1 ? i / (pts.length - 1) * (w - 2) + 1 : w / 2;
    const y = h - 2 - (p - min) / (max - min || 1) * (h - 4);
    i === 0 ? ctx.moveTo(x, y) : ctx.lineTo(x, y);
  });
  ctx.stroke();
}
function row(table, name, pts, latest) {
  let tr = table.querySelector('tr[data-n="' + name + '"]');
  if (!tr) {
    tr = document.createElement('tr'); tr.dataset.n = name;
    tr.innerHTML = '<td>' + name + '</td><td class="num"></td><td><canvas width="180" height="28"></canvas></td>';
    table.appendChild(tr);
  }
  tr.children[1].textContent = latest === null ? 'n/a' : latest.toPrecision(4);
  spark(tr.children[2].firstChild, pts);
}
async function tick() {
  try {
    const ts = await (await fetch('timeseries?window=120')).json();
    for (const [n, pts] of Object.entries(ts.counters))
      row(document.getElementById('counters'), n, pts, pts.length ? pts[pts.length - 1] : null);
    for (const [n, pts] of Object.entries(ts.gauges))
      row(document.getElementById('gauges'), n, pts, pts.length ? pts[pts.length - 1] : null);
    for (const [n, qs] of Object.entries(ts.histograms)) {
      const pts = qs.p95 || [];
      const finite = pts.filter(p => p !== null && isFinite(p));
      row(document.getElementById('hists'), n + '.p95', pts, finite.length ? finite[finite.length - 1] : null);
    }
    document.getElementById('status').textContent = '· tick ' + ts.ticks + ' · ' + ts.interval_secs + 's interval';
  } catch (e) {
    document.getElementById('status').textContent = '· ' + e;
  }
}
tick(); setInterval(tick, 2000);
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> Request {
        match parse_request(buf, 8192) {
            ParseOutcome::Complete(r) => r,
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_get() {
        let r = complete(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.query, None);
    }

    #[test]
    fn splits_query_string() {
        let r = complete(b"GET /timeseries?window=30&x=1 HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/timeseries");
        assert_eq!(r.query.as_deref(), Some("window=30&x=1"));
        assert_eq!(query_window(r.query.as_deref()), Some(30));
        assert_eq!(query_window(Some("x=1")), None);
        assert_eq!(query_window(Some("window=junk")), None);
    }

    #[test]
    fn incomplete_requests_are_partial() {
        assert_eq!(parse_request(b"", 8192), ParseOutcome::Partial);
        assert_eq!(parse_request(b"GET /he", 8192), ParseOutcome::Partial);
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nHost: x\r\n", 8192),
            ParseOutcome::Partial,
            "request line done, header block still open"
        );
    }

    #[test]
    fn malformed_requests_are_rejected_early() {
        for (bytes, why) in [
            (&b"GET/ HTTP/1.1\r\n\r\n"[..], "missing spaces"),
            (b"get / HTTP/1.1\r\n\r\n", "lowercase method"),
            (b"GET / HTTP/2\r\n\r\n", "unsupported version"),
            (b"GET example.com/x HTTP/1.1\r\n\r\n", "non-origin target"),
            (b"GET / HTTP/1.1 extra\r\n\r\n", "trailing token"),
            (b"GET / HTTP/1.1\n\n", "bare LF"),
            (b"GET /\x00 HTTP/1.1\r\n\r\n", "NUL byte"),
        ] {
            assert!(
                matches!(parse_request(bytes, 8192), ParseOutcome::Malformed(_)),
                "{why}: {bytes:?}"
            );
        }
        // Early rejection: malformed request line fails before the
        // header block terminator arrives.
        assert!(matches!(
            parse_request(b"BROKEN\r\nHost: x\r\n", 8192),
            ParseOutcome::Malformed(_)
        ));
    }

    #[test]
    fn oversized_requests_are_too_large() {
        let mut buf = b"GET /".to_vec();
        buf.extend(std::iter::repeat_n(b'a', 100));
        assert_eq!(parse_request(&buf, 64), ParseOutcome::TooLarge);
        // Under the bound it is merely partial.
        assert_eq!(parse_request(&buf, 8192), ParseOutcome::Partial);
    }

    #[test]
    fn slo_json_is_strict_json_even_when_empty() {
        let _g = crate::test_guard();
        crate::reset();
        let doc = slo_json(None);
        let v = crate::json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(v.get("counters").is_some());
        assert_eq!(v.get("rolling"), Some(&crate::json::Json::Null));
        // Empty histogram quantiles must serialize as null, not NaN.
        assert_eq!(
            v.get("match_latency_secs").and_then(|m| m.get("p50")),
            Some(&crate::json::Json::Null)
        );
    }

    #[test]
    fn server_round_trip_and_shutdown() {
        let _g = crate::test_guard();
        crate::reset();
        crate::counter("http.test.round_trip").add(7);
        let ts = Arc::new(TimeSeries::new(crate::TimeSeriesConfig::default()));
        ts.sample_now();
        let mut server =
            ObsServer::start(HttpConfig::default(), Some(Arc::clone(&ts))).expect("bind");
        let addr = server.local_addr();
        for (path, expect) in [
            ("/healthz", "ok"),
            ("/metrics", "http.test.round_trip"),
            ("/metrics.txt", "# TYPE"),
            ("/slo", "deadline_miss_rate"),
            ("/trace", "traceEvents"),
            ("/timeseries?window=10", "interval_secs"),
            ("/dashboard", "mfcp ops"),
            ("/", "mfcp ops"),
        ] {
            let body = get(addr, path);
            assert!(
                body.contains(expect),
                "{path}: expected {expect:?} in {body:?}"
            );
        }
        let missing = get_raw(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let posted = get_raw(addr, "POST /healthz HTTP/1.1\r\n\r\n");
        assert!(posted.starts_with("HTTP/1.1 405"), "{posted}");
        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err() ||
            // The OS may accept briefly after close on some platforms;
            // what matters is that nothing answers.
            get_try(addr, "/healthz").is_none()
        );
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        get_raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    fn get_raw(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(request.as_bytes()).expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    fn get_try(addr: SocketAddr, path: &str) -> Option<String> {
        let mut s = TcpStream::connect_timeout(&addr, Duration::from_millis(200)).ok()?;
        let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
        s.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
            .ok()?;
        let mut out = String::new();
        s.read_to_string(&mut out).ok()?;
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}
