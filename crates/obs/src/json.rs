//! A minimal, strict JSON parser (RFC 8259 subset, no serde).
//!
//! This crate hand-rolls its serializers ([`crate::Snapshot::to_json`],
//! [`crate::trace::Trace::to_chrome_json`]), so it also carries the
//! checker that keeps them honest: [`parse`] accepts exactly
//! standard JSON — no trailing commas, no `NaN`/`Infinity` literals, no
//! unescaped control characters — and rejects numbers that overflow to
//! a non-finite `f64`. The bench crate reuses it to read perf-gate
//! baselines, which keeps the whole pipeline zero-dependency.
//!
//! ```
//! use mfcp_obs::json::{parse, Json};
//! let v = parse(r#"{"a": [1, 2.5], "b": "x\n"}"#).unwrap();
//! assert_eq!(v.get("a").and_then(|a| a.as_array()).unwrap().len(), 2);
//! assert_eq!(v.get("b").and_then(Json::as_str), Some("x\n"));
//! assert!(parse("[1, 2,]").is_err()); // trailing comma
//! assert!(parse("NaN").is_err()); // not JSON
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always finite; non-finite parses are rejected).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Later duplicate keys overwrite earlier ones.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the failure was detected.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as a single JSON document (trailing whitespace only).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

/// Escapes `s` as a JSON string literal, surrounding quotes included.
/// The counterpart of [`parse`] for the hand-rolled serializers in this
/// workspace (snapshots, traces, benchmark reports).
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` as a JSON number. JSON has no NaN/Infinity
/// literals, so non-finite input is a caller bug.
///
/// # Panics
/// Panics when `v` is not finite.
pub fn number(v: f64) -> String {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    format!("{v}")
}

/// Nesting depth bound — deep enough for any artifact this repo emits,
/// shallow enough that hostile input cannot blow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|e| JsonError {
                msg: format!("object key: {}", e.msg),
                ..e
            })?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        return Err(self.err("trailing comma in object"));
                    }
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        return Err(self.err("trailing comma in array"));
                    }
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining surrogate pairs. Leaves the cursor after the last digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired high surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired high surrogate"));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit then digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        let v: f64 = text
            .parse()
            .map_err(|e| self.err(format!("number '{text}': {e}")))?;
        if !v.is_finite() {
            return Err(self.err(format!("number '{text}' overflows to non-finite f64")));
        }
        Ok(Json::Number(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": {"b": [1, -2.5e3, 0]}, "c": null, "d": true}"#).unwrap();
        let b = v.get("a").and_then(|a| a.get("b")).unwrap();
        let nums: Vec<f64> = b
            .as_array()
            .unwrap()
            .iter()
            .filter_map(Json::as_f64)
            .collect();
        assert_eq!(nums, vec![1.0, -2500.0, 0.0]);
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn resolves_escapes_and_unicode() {
        let v = parse(r#""line\n tab\t quote\" back\\ \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("line\n tab\t quote\" back\\ é 😀"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "[1, 2,]",
            "{\"a\": 1,}",
            "{'a': 1}",
            "NaN",
            "Infinity",
            "-Infinity",
            "01",
            "1.",
            "1e",
            "{\"a\" 1}",
            "[1 2]",
            "\"unterminated",
            "\"bad \u{0001} ctl\"",
            "\"\\x41\"",
            "\"\\ud800\"",
            "1e999",
            "[1] tail",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(2.0));
    }
}
