//! Flight-recorder event tracing.
//!
//! Aggregate counters and span totals (the rest of this crate) answer
//! *how much*; the flight recorder answers *what happened, in what
//! order*. Every participating thread owns a fixed-capacity ring buffer
//! of events — overwrite-oldest, so a long run always retains the most
//! recent window — and recording an event is a few thread-local writes
//! plus one global sequence-number fetch-add. There are no cross-thread
//! locks on the hot path: the per-thread buffer's mutex is only ever
//! contended by [`drain`].
//!
//! Events are sequence-stamped begin/end/instant records carrying an
//! interned name (for spans, the full `/`-joined span path), the
//! recording thread's id, and an optional `u64` argument (an iteration
//! number, a job id, a round index). [`drain`] merges every thread's
//! buffer into one time-ordered [`Trace`], which exports to
//! Chrome `trace_event` JSON ([`Trace::to_chrome_json`], loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>) or a compact text
//! timeline ([`Trace::to_text`]).
//!
//! Recording is gated on both [`crate::enabled`] (the crate-wide
//! kill-switch: `set_enabled(false)` also disables the recorder) and the
//! recorder's own [`set_recording`] flag, so metrics can stay on while
//! tracing is off.
//!
//! ```
//! mfcp_obs::trace::clear();
//! {
//!     let _span = mfcp_obs::span("demo_work");
//!     mfcp_obs::trace::instant("demo_tick", Some(3));
//! }
//! let trace = mfcp_obs::trace::drain();
//! assert!(trace.events.iter().any(|e| e.name == "demo_tick"));
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_THREAD_CAPACITY: usize = 8192;

static RECORDING: AtomicBool = AtomicBool::new(true);
static THREAD_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_THREAD_CAPACITY);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The recorder's time origin: every event timestamp is nanoseconds since
/// the first event recorded by this process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns the flight recorder on or off without touching the metric
/// paths. Recording also requires [`crate::enabled`] to be true.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether the recorder would currently accept events.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed) && crate::enabled()
}

/// Sets the ring capacity (events per thread) applied to buffers created
/// after this call; existing per-thread buffers keep their capacity.
/// Clamped to at least 16.
pub fn set_thread_capacity(events: usize) {
    THREAD_CAPACITY.store(events.max(16), Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------

#[derive(Default)]
struct NameTable {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

fn names() -> &'static RwLock<NameTable> {
    static NAMES: OnceLock<RwLock<NameTable>> = OnceLock::new();
    NAMES.get_or_init(|| RwLock::new(NameTable::default()))
}

/// Interns `name` and returns its stable id. Hot paths that emit the
/// same event name repeatedly should intern once and use the `_id`
/// record variants.
pub fn intern(name: &str) -> u32 {
    if let Some(&id) = names().read().unwrap().ids.get(name) {
        return id;
    }
    let mut table = names().write().unwrap();
    if let Some(&id) = table.ids.get(name) {
        return id;
    }
    let id = table.names.len() as u32;
    table.names.push(name.to_string());
    table.ids.insert(name.to_string(), id);
    id
}

fn resolve(id: u32) -> String {
    names()
        .read()
        .unwrap()
        .names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("<unknown:{id}>"))
}

// ---------------------------------------------------------------------
// Events and per-thread rings
// ---------------------------------------------------------------------

/// What a recorded event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A scope opened (paired with a later [`EventKind::End`]).
    Begin,
    /// A scope closed.
    End,
    /// A point-in-time marker.
    Instant,
}

#[derive(Clone, Copy)]
struct RawEvent {
    seq: u64,
    t_ns: u64,
    kind: EventKind,
    name: u32,
    arg: Option<u64>,
}

struct Ring {
    slots: Vec<RawEvent>,
    capacity: usize,
    /// Index of the next slot to write once the ring is full.
    next: usize,
    /// Events overwritten since the last drain.
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, e: RawEvent) {
        if self.slots.len() < self.capacity {
            self.slots.push(e);
        } else {
            self.slots[self.next] = e;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Removes and returns the buffered events, oldest first.
    fn take(&mut self) -> (Vec<RawEvent>, u64) {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        self.slots.clear();
        self.next = 0;
        (out, std::mem::take(&mut self.dropped))
    }
}

struct ThreadBuffer {
    tid: u64,
    thread_name: Option<String>,
    ring: Mutex<Ring>,
}

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuffer>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TLS_BUFFER: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

fn register_thread() -> Arc<ThreadBuffer> {
    let buf = Arc::new(ThreadBuffer {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        thread_name: std::thread::current().name().map(str::to_string),
        ring: Mutex::new(Ring::new(THREAD_CAPACITY.load(Ordering::Relaxed))),
    });
    buffers()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&buf));
    buf
}

fn record(kind: EventKind, name: u32, arg: Option<u64>) {
    if !recording() {
        return;
    }
    let t_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let e = RawEvent {
        seq,
        t_ns,
        kind,
        name,
        arg,
    };
    TLS_BUFFER.with(|cell| {
        let mut slot = cell.borrow_mut();
        let buf = slot.get_or_insert_with(register_thread);
        buf.ring.lock().unwrap_or_else(|p| p.into_inner()).push(e);
    });
}

/// Records a scope-open event under a pre-interned name.
pub fn begin_id(name: u32, arg: Option<u64>) {
    record(EventKind::Begin, name, arg);
}

/// Records a scope-close event under a pre-interned name.
pub fn end_id(name: u32, arg: Option<u64>) {
    record(EventKind::End, name, arg);
}

/// Records an instant event under a pre-interned name.
pub fn instant_id(name: u32, arg: Option<u64>) {
    record(EventKind::Instant, name, arg);
}

/// Records a scope-open event, interning `name` on the fly.
pub fn begin(name: &str, arg: Option<u64>) {
    if recording() {
        begin_id(intern(name), arg);
    }
}

/// Records a scope-close event, interning `name` on the fly.
pub fn end(name: &str, arg: Option<u64>) {
    if recording() {
        end_id(intern(name), arg);
    }
}

/// Records an instant event, interning `name` on the fly.
pub fn instant(name: &str, arg: Option<u64>) {
    if recording() {
        instant_id(intern(name), arg);
    }
}

// ---------------------------------------------------------------------
// Draining and exporting
// ---------------------------------------------------------------------

/// One drained event with its name resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the recorder's first event.
    pub t_ns: u64,
    /// Recorder-assigned id of the thread that emitted the event.
    pub tid: u64,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Resolved event name (for spans, the full span path).
    pub name: String,
    /// Optional argument (iteration, job id, round index, …).
    pub arg: Option<u64>,
}

/// A merged, sequence-ordered view of every thread's ring buffer.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in global sequence order (per-thread order is preserved).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrites since the previous drain.
    pub dropped: u64,
    /// `tid -> thread name` for threads that had one.
    pub thread_names: Vec<(u64, String)>,
}

/// Drains every thread's ring buffer into one time-ordered [`Trace`].
/// The buffers are left empty; names stay interned.
pub fn drain() -> Trace {
    let mut events = Vec::new();
    let mut dropped = 0;
    let mut thread_names = Vec::new();
    for buf in buffers().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        let (raw, lost) = buf.ring.lock().unwrap_or_else(|p| p.into_inner()).take();
        dropped += lost;
        if let Some(name) = &buf.thread_name {
            if !raw.is_empty() {
                thread_names.push((buf.tid, name.clone()));
            }
        }
        events.extend(raw.into_iter().map(|e| TraceEvent {
            seq: e.seq,
            t_ns: e.t_ns,
            tid: buf.tid,
            kind: e.kind,
            name: resolve(e.name),
            arg: e.arg,
        }));
    }
    events.sort_unstable_by_key(|e| e.seq);
    Trace {
        events,
        dropped,
        thread_names,
    }
}

/// Discards every buffered event (a drain whose result is thrown away).
pub fn clear() {
    let _ = drain();
}

impl Trace {
    /// Exports the trace as Chrome `trace_event` JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in
    /// `chrome://tracing` and Perfetto.
    ///
    /// Ring overwrites can orphan one half of a begin/end pair, so the
    /// exporter re-balances each thread's stream: an `E` with no open
    /// `B` is demoted to an instant, and any `B` still open at the end
    /// of the trace is closed at the trace's last timestamp.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        let mut push = |out: &mut String, line: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(line);
        };
        push(
            &mut out,
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
             \"args\": {\"name\": \"mfcp\"}}",
        );
        for (tid, name) in &self.thread_names {
            push(
                &mut out,
                &format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                     \"args\": {{\"name\": {}}}}}",
                    crate::snapshot::json_str(name)
                ),
            );
        }
        // Per-thread stacks of open begins, for re-balancing.
        let mut open: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
        let last_ns = self.events.last().map_or(0, |e| e.t_ns);
        for e in &self.events {
            let ts = e.t_ns as f64 / 1e3; // trace_event timestamps are µs
            match e.kind {
                EventKind::Begin => {
                    open.entry(e.tid).or_default().push(e);
                    push(
                        &mut out,
                        &chrome_line("B", &e.name, ts, e.tid, e.arg, e.seq),
                    );
                }
                EventKind::End => {
                    if open.entry(e.tid).or_default().pop().is_some() {
                        push(
                            &mut out,
                            &chrome_line("E", &e.name, ts, e.tid, e.arg, e.seq),
                        );
                    } else {
                        // Begin was overwritten in the ring: keep the
                        // information without breaking nesting.
                        push(
                            &mut out,
                            &chrome_line("i", &e.name, ts, e.tid, e.arg, e.seq),
                        );
                    }
                }
                EventKind::Instant => {
                    push(
                        &mut out,
                        &chrome_line("i", &e.name, ts, e.tid, e.arg, e.seq),
                    );
                }
            }
        }
        // Close scopes whose end was never recorded (still open, or lost
        // to an overwrite), innermost first.
        let mut tids: Vec<u64> = open.keys().copied().collect();
        tids.sort_unstable();
        for tid in tids {
            let mut stack = open.remove(&tid).unwrap_or_default();
            while let Some(b) = stack.pop() {
                let ts = last_ns.max(b.t_ns) as f64 / 1e3;
                push(&mut out, &chrome_line("E", &b.name, ts, tid, None, b.seq));
            }
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        out
    }

    /// Renders the trace as a compact text timeline: one line per event,
    /// sequence-ordered, indented by the emitting thread's scope depth.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} events, {} dropped to ring overwrite",
            self.events.len(),
            self.dropped
        );
        let mut depth: HashMap<u64, usize> = HashMap::new();
        for e in &self.events {
            let d = depth.entry(e.tid).or_insert(0);
            let (mark, indent) = match e.kind {
                EventKind::Begin => {
                    let i = *d;
                    *d += 1;
                    ('>', i)
                }
                EventKind::End => {
                    *d = d.saturating_sub(1);
                    ('<', *d)
                }
                EventKind::Instant => ('.', *d),
            };
            let _ = write!(
                out,
                "[{:>12.6}ms] t{:02} {:indent$}{mark} {}",
                e.t_ns as f64 / 1e6,
                e.tid,
                "",
                e.name,
                indent = indent * 2
            );
            match e.arg {
                Some(a) => {
                    let _ = writeln!(out, " ({a})");
                }
                None => out.push('\n'),
            }
        }
        out
    }
}

fn chrome_line(ph: &str, name: &str, ts: f64, tid: u64, arg: Option<u64>, seq: u64) -> String {
    let mut line = format!(
        "{{\"name\": {}, \"cat\": \"mfcp\", \"ph\": \"{ph}\", \"ts\": {ts}, \
         \"pid\": 1, \"tid\": {tid}",
        crate::snapshot::json_str(name)
    );
    if ph == "i" {
        line.push_str(", \"s\": \"t\"");
    }
    match arg {
        Some(a) => {
            let _ = write!(line, ", \"args\": {{\"arg\": {a}, \"seq\": {seq}}}}}");
        }
        None => {
            let _ = write!(line, ", \"args\": {{\"seq\": {seq}}}}}");
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_order_with_args() {
        let _g = crate::test_guard();
        clear();
        begin("trace_outer", None);
        instant("trace_tick", Some(41));
        end("trace_outer", None);
        let trace = drain();
        let mine: Vec<&TraceEvent> = trace
            .events
            .iter()
            .filter(|e| e.name.starts_with("trace_"))
            .collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, EventKind::Begin);
        assert_eq!(mine[1].arg, Some(41));
        assert_eq!(mine[2].kind, EventKind::End);
        assert!(mine[0].seq < mine[1].seq && mine[1].seq < mine[2].seq);
        assert!(mine[0].t_ns <= mine[2].t_ns);
        // Buffers are empty after a drain.
        assert!(!drain().events.iter().any(|e| e.name.starts_with("trace_")));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring::new(4);
        for i in 0..10u64 {
            ring.push(RawEvent {
                seq: i,
                t_ns: i,
                kind: EventKind::Instant,
                name: 0,
                arg: None,
            });
        }
        let (events, dropped) = ring.take();
        assert_eq!(dropped, 6);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = crate::test_guard();
        clear();
        crate::set_enabled(false);
        instant("trace_disabled_evt", None);
        crate::set_enabled(true);
        set_recording(false);
        instant("trace_disabled_evt", None);
        set_recording(true);
        assert!(!drain()
            .events
            .iter()
            .any(|e| e.name == "trace_disabled_evt"));
    }

    #[test]
    fn chrome_export_balances_orphan_ends_and_unclosed_begins() {
        let _g = crate::test_guard();
        clear();
        // Orphan end (its begin was "overwritten"), then an unclosed begin.
        end("trace_orphan_end", None);
        begin("trace_unclosed", Some(7));
        let trace = drain();
        let json = trace.to_chrome_json();
        // Orphan end demoted to an instant.
        let orphan = json
            .lines()
            .find(|l| l.contains("trace_orphan_end"))
            .expect("orphan event present");
        assert!(orphan.contains("\"ph\": \"i\""), "{orphan}");
        // Unclosed begin gets a synthetic close.
        let opens = json.matches("trace_unclosed").count();
        assert_eq!(opens, 2, "begin + synthetic end:\n{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_timeline_indents_by_depth() {
        let _g = crate::test_guard();
        clear();
        begin("trace_text_a", None);
        instant("trace_text_b", Some(1));
        end("trace_text_a", None);
        let text = drain().to_text();
        assert!(text.contains("> trace_text_a"));
        assert!(text.contains(". trace_text_b (1)"));
        assert!(text.contains("< trace_text_a"));
    }

    /// The Chrome exporter's output must be strictly valid JSON even for
    /// hostile event names (control chars, quotes, non-ASCII).
    #[test]
    fn chrome_export_round_trips_through_strict_parser() {
        let _g = crate::test_guard();
        clear();
        begin("trace \"nasty\"\\\n\t\u{2}名前😀", Some(u64::MAX));
        instant("trace_plain", None);
        end("trace \"nasty\"\\\n\t\u{2}名前😀", None);
        let json = drain().to_chrome_json();
        let parsed = crate::json::parse(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        let events = parsed
            .get("traceEvents")
            .and_then(crate::json::Json::as_array)
            .expect("traceEvents array");
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(crate::json::Json::as_str)
                == Some("trace \"nasty\"\\\n\t\u{2}名前😀")));
        // Every event has the fields a trace viewer needs.
        for e in events {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("trace.intern.same");
        let b = intern("trace.intern.same");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "trace.intern.same");
    }
}
