//! The process-wide metric registry.

use crate::histogram::{Histogram, HistogramInner};
use crate::snapshot::Snapshot;
use crate::span::SpanStat;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A handle to a registered monotonic counter. Cloning is cheap; all
/// clones share the same cell.
#[derive(Clone)]
pub struct Counter {
    pub(crate) cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to a registered gauge: a last-write-wins `f64` level (queue
/// depth, cache occupancy, watermark) as opposed to a monotonic
/// [`Counter`]. Cloning is cheap; all clones share the same cell, which
/// stores the value as `f64` bits in one atomic.
#[derive(Clone)]
pub struct Gauge {
    pub(crate) cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `v` (last write wins).
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `d` (negative to decrement) with a CAS loop, for callers
    /// that track a level incrementally from several sites.
    pub fn add(&self, d: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Holds every registered metric. Normally accessed through the global
/// instance behind [`crate::counter`]/[`crate::gauge`]/
/// [`crate::histogram`]/[`crate::span`]; a private `Registry` is only
/// useful for isolated tests.
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<HistogramInner>>>,
    pub(crate) spans: RwLock<HashMap<String, Arc<SpanStat>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            histograms: RwLock::new(HashMap::new()),
            spans: RwLock::new(HashMap::new()),
        }
    }

    /// Interns and returns the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(cell) = self.counters.read().unwrap().get(name) {
            return Counter {
                cell: Arc::clone(cell),
            };
        }
        let mut map = self.counters.write().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Arc::clone(cell),
        }
    }

    /// Interns and returns the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(cell) = self.gauges.read().unwrap().get(name) {
            return Gauge {
                cell: Arc::clone(cell),
            };
        }
        let mut map = self.gauges.write().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge {
            cell: Arc::clone(cell),
        }
    }

    /// Interns and returns the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(inner) = self.histograms.read().unwrap().get(name) {
            return Histogram {
                inner: Arc::clone(inner),
            };
        }
        let mut map = self.histograms.write().unwrap();
        let inner = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramInner::new()));
        Histogram {
            inner: Arc::clone(inner),
        }
    }

    pub(crate) fn span_stat(&self, path: &str) -> Arc<SpanStat> {
        if let Some(stat) = self.spans.read().unwrap().get(path) {
            return Arc::clone(stat);
        }
        let mut map = self.spans.write().unwrap();
        Arc::clone(map.entry(path.to_string()).or_insert_with(|| {
            // Interned once per distinct path; from then on the span's
            // flight-recorder events are id-only ring pushes.
            Arc::new(SpanStat::new(crate::trace::intern(path)))
        }))
    }

    /// Takes a snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self)
    }

    /// Zeroes every metric in place (handles stay valid).
    pub fn reset(&self) {
        for cell in self.counters.read().unwrap().values() {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in self.gauges.read().unwrap().values() {
            cell.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for hist in self.histograms.read().unwrap().values() {
            hist.reset();
        }
        for span in self.spans.read().unwrap().values() {
            span.reset();
        }
    }

    /// Calls `f` for every registered counter without cloning names —
    /// this is the allocation-free walk the time-series sampler runs on
    /// every tick (the read lock is held for the duration of the walk).
    pub fn visit_counters(&self, mut f: impl FnMut(&str, u64)) {
        for (name, cell) in self.counters.read().unwrap().iter() {
            f(name, cell.load(Ordering::Relaxed));
        }
    }

    /// Calls `f` for every registered gauge without cloning names.
    pub fn visit_gauges(&self, mut f: impl FnMut(&str, f64)) {
        for (name, cell) in self.gauges.read().unwrap().iter() {
            f(name, f64::from_bits(cell.load(Ordering::Relaxed)));
        }
    }

    /// Calls `f` for every registered histogram without cloning names.
    /// The handle passed to `f` is an `Arc` clone of the shared storage
    /// (no heap allocation), valid only for the call.
    pub fn visit_histograms(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (name, inner) in self.histograms.read().unwrap().iter() {
            let h = Histogram {
                inner: Arc::clone(inner),
            };
            f(name, &h);
        }
    }

    pub(crate) fn counters_map(&self) -> HashMap<String, u64> {
        self.counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn gauges_map(&self) -> HashMap<String, f64> {
        self.gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect()
    }

    pub(crate) fn histograms_map(&self) -> HashMap<String, Arc<HistogramInner>> {
        self.histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}
