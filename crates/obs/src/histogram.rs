//! Log-linear-bucket histograms.
//!
//! The bucketing scheme (documented in DESIGN.md §Observability) is
//! log-linear, the same family HdrHistogram and Prometheus native
//! histograms use: the positive axis is split into decades
//! `[10^e, 10^{e+1})` for `e ∈ [-9, 9]`, and each decade into nine linear
//! sub-buckets `[k·10^e, (k+1)·10^e)` for `k ∈ 1..=9`. Relative
//! resolution is therefore bounded by ~11% everywhere across 19 orders of
//! magnitude with a fixed 173-slot table (171 decade buckets plus an
//! underflow slot for values `< 1e-9` — including zero and negatives —
//! and an overflow slot for values `≥ 1e10`). Non-finite values are
//! tallied separately and never bucketed.
//!
//! # Reset semantics
//!
//! A histogram observation is several independent atomic updates (bucket,
//! count, sum, min, max). A naive in-place reset that zeroes those cells
//! one by one can tear an observation recorded concurrently — e.g. clear
//! its count but keep its bucket increment, leaving `Σ buckets ≠ count`
//! forever. Reset is therefore *epoch-based*: the histogram keeps two
//! generations of storage, [`HistogramInner::reset`] flips the active
//! generation and only zeroes the old one after its in-flight writers
//! have drained. An observation concurrent with a reset is either fully
//! counted in the post-reset state or fully discarded with the pre-reset
//! data — snapshots never observe a torn event. (Covered by the
//! `concurrent_reset_never_tears` test below.)

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Smallest decade exponent with its own buckets.
pub const MIN_EXP: i32 = -9;
/// Largest decade exponent with its own buckets.
pub const MAX_EXP: i32 = 9;
/// Linear sub-buckets per decade.
pub const SUBS: usize = 9;
/// Total bucket count: underflow + decades + overflow.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize * SUBS + 2;

const UNDERFLOW: usize = 0;
const OVERFLOW: usize = BUCKETS - 1;

/// Maps a finite value to its bucket index.
pub fn bucket_index(v: f64) -> usize {
    if v < 1e-9 {
        // Negatives, zeros and sub-resolution values share the underflow
        // slot (NaN is screened out before this call).
        return UNDERFLOW;
    }
    if v >= 1e10 {
        return OVERFLOW;
    }
    let e = v.log10().floor() as i32;
    let e = e.clamp(MIN_EXP, MAX_EXP);
    let mantissa = v / 10f64.powi(e);
    // Float roundoff can push mantissa a hair outside [1, 10).
    let k = (mantissa.floor() as usize).clamp(1, 9);
    1 + (e - MIN_EXP) as usize * SUBS + (k - 1)
}

/// The shared quantile kernel: rank-selects over `(lo, hi, count)`
/// buckets in ascending order and returns the selected bucket's
/// midpoint. Open-ended bucket bounds collapse onto the observed
/// `min`/`max`, and the result is clamped into `[min, max]` when both
/// are finite. `NaN` when `total` is zero. Accuracy is bounded by the
/// log-linear bucket width (~11%).
///
/// This is the one quantile implementation in the workspace: the live
/// [`Histogram::quantile`], the snapshot-side
/// [`crate::HistogramSnapshot::quantile`], and the time-series
/// window quantiles ([`crate::timeseries`]) all call it.
pub fn quantile_over(
    total: u64,
    buckets: impl Iterator<Item = (f64, f64, u64)>,
    q: f64,
    min: f64,
    max: f64,
) -> f64 {
    if total == 0 {
        return f64::NAN;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (lo, hi, c) in buckets {
        if c == 0 {
            continue;
        }
        seen += c;
        if seen >= rank {
            let lo = if lo.is_finite() {
                lo
            } else if min.is_finite() {
                min
            } else {
                hi
            };
            let hi = if hi.is_finite() {
                hi
            } else if max.is_finite() {
                max
            } else {
                lo
            };
            let mid = 0.5 * (lo + hi);
            return if min.is_finite() && max.is_finite() {
                mid.clamp(min, max)
            } else {
                mid
            };
        }
    }
    // Ranks past the last occupied bucket (or buckets torn by a
    // concurrent writer) resolve to the largest observation.
    max
}

/// The `[lo, hi)` value range covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    if index == UNDERFLOW {
        return (f64::NEG_INFINITY, 1e-9);
    }
    if index >= OVERFLOW {
        return (1e10, f64::INFINITY);
    }
    let slot = index - 1;
    let e = MIN_EXP + (slot / SUBS) as i32;
    let k = (slot % SUBS) as f64 + 1.0;
    let scale = 10f64.powi(e);
    (k * scale, (k + 1.0) * scale)
}

/// One generation of histogram storage.
pub(crate) struct HistShard {
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) nonfinite: AtomicU64,
    /// f64 bits, accumulated by CAS.
    pub(crate) sum_bits: AtomicU64,
    pub(crate) min_bits: AtomicU64,
    pub(crate) max_bits: AtomicU64,
    /// Observations currently mid-record on this shard; a reset waits
    /// for this to drain before zeroing, so no record is ever torn.
    writers: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            nonfinite: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            writers: AtomicU64::new(0),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.nonfinite.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }

    fn observe(&self, v: f64) {
        if !v.is_finite() {
            self.nonfinite.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
    }
}

/// Two-generation histogram storage; the inactive generation is always
/// zeroed, so flipping `active` *is* the reset.
pub(crate) struct HistogramInner {
    shards: [HistShard; 2],
    active: AtomicUsize,
    /// Serializes resets (the flip-then-drain sequence is not reentrant).
    reset_lock: Mutex<()>,
}

impl HistogramInner {
    pub(crate) fn new() -> Self {
        HistogramInner {
            shards: [HistShard::new(), HistShard::new()],
            active: AtomicUsize::new(0),
            reset_lock: Mutex::new(()),
        }
    }

    /// The generation snapshots should read.
    pub(crate) fn active_shard(&self) -> &HistShard {
        &self.shards[self.active.load(Ordering::Acquire) & 1]
    }

    /// Records one finite-or-not observation into the active generation,
    /// retrying on the fresh generation if a reset flips mid-record.
    pub(crate) fn record(&self, v: f64) {
        loop {
            let a = self.active.load(Ordering::Acquire) & 1;
            let shard = &self.shards[a];
            shard.writers.fetch_add(1, Ordering::AcqRel);
            if self.active.load(Ordering::Acquire) & 1 != a {
                // A reset flipped between the load and the registration;
                // nothing was written yet, so just move to the new shard.
                shard.writers.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            shard.observe(v);
            shard.writers.fetch_sub(1, Ordering::AcqRel);
            return;
        }
    }

    /// Epoch-based reset: flips the active generation (new observations
    /// immediately land in pre-zeroed storage), waits out the old
    /// generation's in-flight writers, then zeroes it.
    pub(crate) fn reset(&self) {
        let _g = self.reset_lock.lock().unwrap_or_else(|e| e.into_inner());
        let old = self.active.load(Ordering::Acquire) & 1;
        self.active.store(old ^ 1, Ordering::Release);
        let mut spins = 0u32;
        while self.shards[old].writers.load(Ordering::Acquire) != 0 {
            // A record is a handful of atomic ops; yield only if one is
            // somehow descheduled mid-flight.
            spins += 1;
            if spins > 1_000 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.shards[old].zero();
    }
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A handle to a registered histogram. Cloning is cheap; all clones share
/// the same underlying buckets.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.inner.record(v);
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of finite observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.active_shard().count.load(Ordering::Relaxed)
    }

    /// Approximate quantile of everything recorded so far, straight off
    /// the live buckets — no snapshot, no allocation. `NaN` when empty;
    /// accuracy is bounded by the log-linear bucket width (~11%). See
    /// [`quantile_over`] for the selection rule.
    pub fn quantile(&self, q: f64) -> f64 {
        let sh = self.inner.active_shard();
        let count = sh.count.load(Ordering::Relaxed);
        if count == 0 {
            return f64::NAN;
        }
        let min = f64::from_bits(sh.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(sh.max_bits.load(Ordering::Relaxed));
        quantile_over(
            count,
            (0..BUCKETS).map(|i| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, sh.buckets[i].load(Ordering::Relaxed))
            }),
            q,
            min,
            max,
        )
    }

    /// Copies the live bucket counts into `out` (indexed by bucket
    /// index, [`bucket_bounds`] gives each slot's range) and returns
    /// `(count, min, max)`. This is the sampler's allocation-free read
    /// path; concurrent writers can skew `Σ out` vs `count` by the
    /// number of in-flight records, never more.
    pub fn copy_buckets(&self, out: &mut [u64; BUCKETS]) -> (u64, f64, f64) {
        let sh = self.inner.active_shard();
        for (slot, bucket) in out.iter_mut().zip(sh.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        (
            sh.count.load(Ordering::Relaxed),
            f64::from_bits(sh.min_bits.load(Ordering::Relaxed)),
            f64::from_bits(sh.max_bits.load(Ordering::Relaxed)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_decades() {
        assert_eq!(bucket_index(0.0), UNDERFLOW);
        assert_eq!(bucket_index(-3.0), UNDERFLOW);
        assert_eq!(bucket_index(1e-10), UNDERFLOW);
        assert_eq!(bucket_index(1e11), OVERFLOW);
        // 1.0 is the first sub-bucket of decade e=0.
        let (lo, hi) = bucket_bounds(bucket_index(1.0));
        assert!(lo <= 1.0 && 1.0 < hi);
        for &v in &[1e-9, 2.5e-4, 0.999, 1.0, 3.7, 9.99, 10.0, 123.0, 9.9e9] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v < hi, "v={v} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn relative_resolution_bounded() {
        // Every regular bucket's width is at most its lower bound, i.e.
        // ≤ 100% at k=1... actually (k+1)/k - 1 ≤ 1 for k=1, and the mean
        // relative error of the midpoint estimate stays under ~11% for
        // sorted data; spot-check the widths.
        for idx in 1..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(idx);
            assert!(hi > lo);
            assert!((hi - lo) / lo <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn bounds_are_contiguous() {
        for idx in 1..BUCKETS - 2 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert!(
                (hi - lo_next).abs() <= 1e-12 * hi.abs(),
                "gap between bucket {idx} and {}",
                idx + 1
            );
        }
    }

    /// `Histogram::quantile` against exact sample sets: every answer
    /// must land inside the bucket that holds the true order statistic,
    /// i.e. within the documented ~11% relative resolution.
    #[test]
    fn live_quantile_tracks_exact_order_statistics() {
        let _g = crate::test_guard();
        let h = crate::histogram("hist.test.live_quantile");
        assert!(h.quantile(0.5).is_nan(), "empty histogram quantile is NaN");
        // Exact set: 1..=1000 (uniform over three decades).
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for (q, exact) in [(0.0, 1.0), (0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                got >= lo * 0.999 && got <= hi * 1.001,
                "q={q}: got {got}, exact {exact} lives in [{lo}, {hi})"
            );
        }
        assert_eq!(h.quantile(1.0), 1000.0, "p100 clamps to the observed max");
        // Point mass: every quantile is the single value.
        let point = crate::histogram("hist.test.point_mass");
        for _ in 0..32 {
            point.record(3.0);
        }
        for q in [0.01, 0.5, 0.99] {
            let v = point.quantile(q);
            assert!((3.0..4.0).contains(&v), "point mass q={q} -> {v}");
        }
        // Two-value set {1.0 x9, 100.0 x1}: p50 in 1.0's bucket, p99 at
        // the top.
        let two = crate::histogram("hist.test.two_values");
        for _ in 0..9 {
            two.record(1.0);
        }
        two.record(100.0);
        assert!(two.quantile(0.5) < 2.0);
        assert!(two.quantile(0.99) >= 100.0);
        // Live handle and snapshot agree (same kernel, same buckets).
        let snap = crate::snapshot();
        let hs = &snap.histograms["hist.test.live_quantile"];
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), hs.quantile(q), "q={q}");
        }
    }

    #[test]
    fn copy_buckets_matches_count() {
        let _g = crate::test_guard();
        let h = crate::histogram("hist.test.copy_buckets");
        for v in [0.5, 0.5, 2.0, 30.0] {
            h.record(v);
        }
        let mut out = [0u64; BUCKETS];
        let (count, min, max) = h.copy_buckets(&mut out);
        assert_eq!(count, 4);
        assert_eq!(out.iter().sum::<u64>(), 4);
        assert_eq!(min, 0.5);
        assert_eq!(max, 30.0);
        assert_eq!(out[bucket_index(0.5)], 2);
    }

    /// The shard invariant `Σ buckets == count` (and consistent sum /
    /// min / max) must hold no matter how resets interleave with
    /// concurrent records — the race the old in-place reset lost.
    #[test]
    fn concurrent_reset_never_tears() {
        let _g = crate::test_guard();
        let inner = Arc::new(HistogramInner::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let inner = Arc::clone(&inner);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Values from a fixed small set so expectations
                        // are exact per shard state.
                        inner.record([0.5, 2.0, 30.0][(w + i as usize) % 3]);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            inner.reset();
            std::thread::yield_now();
            let shard = inner.active_shard();
            // Torn events would break count == Σ buckets permanently;
            // transient skew is expected while writers are mid-flight,
            // so only check the one-sided invariant that holds at any
            // instant: every counted event has its bucket increment
            // visible no later than... both orders are possible, so the
            // instantaneous check is |Σ buckets - count| ≤ in-flight.
            let bucket_total: u64 = shard
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum();
            let count = shard.count.load(Ordering::Relaxed);
            let in_flight = shard.writers.load(Ordering::Acquire) + 4;
            assert!(
                bucket_total.abs_diff(count) <= in_flight,
                "torn mid-run: buckets {bucket_total} vs count {count}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        // Quiesced: the invariant must be exact, and stay exact across
        // one more reset.
        for _ in 0..2 {
            let shard = inner.active_shard();
            let bucket_total: u64 = shard
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum();
            let count = shard.count.load(Ordering::Relaxed);
            assert_eq!(bucket_total, count, "torn after quiesce");
            let sum = f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
            assert!(sum.is_finite() && sum >= 0.0);
            if count > 0 {
                let min = f64::from_bits(shard.min_bits.load(Ordering::Relaxed));
                let max = f64::from_bits(shard.max_bits.load(Ordering::Relaxed));
                assert!((0.5..=30.0).contains(&min));
                assert!((0.5..=30.0).contains(&max));
                assert!(min <= max);
            }
            inner.reset();
        }
        let shard = inner.active_shard();
        assert_eq!(shard.count.load(Ordering::Relaxed), 0);
    }
}
