//! Log-linear-bucket histograms.
//!
//! The bucketing scheme (documented in DESIGN.md §Observability) is
//! log-linear, the same family HdrHistogram and Prometheus native
//! histograms use: the positive axis is split into decades
//! `[10^e, 10^{e+1})` for `e ∈ [-9, 9]`, and each decade into nine linear
//! sub-buckets `[k·10^e, (k+1)·10^e)` for `k ∈ 1..=9`. Relative
//! resolution is therefore bounded by ~11% everywhere across 19 orders of
//! magnitude with a fixed 173-slot table (171 decade buckets plus an
//! underflow slot for values `< 1e-9` — including zero and negatives —
//! and an overflow slot for values `≥ 1e10`). Non-finite values are
//! tallied separately and never bucketed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest decade exponent with its own buckets.
pub const MIN_EXP: i32 = -9;
/// Largest decade exponent with its own buckets.
pub const MAX_EXP: i32 = 9;
/// Linear sub-buckets per decade.
pub const SUBS: usize = 9;
/// Total bucket count: underflow + decades + overflow.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize * SUBS + 2;

const UNDERFLOW: usize = 0;
const OVERFLOW: usize = BUCKETS - 1;

/// Maps a finite value to its bucket index.
pub fn bucket_index(v: f64) -> usize {
    if v < 1e-9 {
        // Negatives, zeros and sub-resolution values share the underflow
        // slot (NaN is screened out before this call).
        return UNDERFLOW;
    }
    if v >= 1e10 {
        return OVERFLOW;
    }
    let e = v.log10().floor() as i32;
    let e = e.clamp(MIN_EXP, MAX_EXP);
    let mantissa = v / 10f64.powi(e);
    // Float roundoff can push mantissa a hair outside [1, 10).
    let k = (mantissa.floor() as usize).clamp(1, 9);
    1 + (e - MIN_EXP) as usize * SUBS + (k - 1)
}

/// The `[lo, hi)` value range covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    if index == UNDERFLOW {
        return (f64::NEG_INFINITY, 1e-9);
    }
    if index >= OVERFLOW {
        return (1e10, f64::INFINITY);
    }
    let slot = index - 1;
    let e = MIN_EXP + (slot / SUBS) as i32;
    let k = (slot % SUBS) as f64 + 1.0;
    let scale = 10f64.powi(e);
    (k * scale, (k + 1.0) * scale)
}

pub(crate) struct HistogramInner {
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) nonfinite: AtomicU64,
    /// f64 bits, accumulated by CAS.
    pub(crate) sum_bits: AtomicU64,
    pub(crate) min_bits: AtomicU64,
    pub(crate) max_bits: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn new() -> Self {
        HistogramInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            nonfinite: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.nonfinite.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A handle to a registered histogram. Cloning is cheap; all clones share
/// the same underlying buckets.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        if !v.is_finite() {
            self.inner.nonfinite.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.inner.sum_bits, |s| s + v);
        atomic_f64_update(&self.inner.min_bits, |m| m.min(v));
        atomic_f64_update(&self.inner.max_bits, |m| m.max(v));
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of finite observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_decades() {
        assert_eq!(bucket_index(0.0), UNDERFLOW);
        assert_eq!(bucket_index(-3.0), UNDERFLOW);
        assert_eq!(bucket_index(1e-10), UNDERFLOW);
        assert_eq!(bucket_index(1e11), OVERFLOW);
        // 1.0 is the first sub-bucket of decade e=0.
        let (lo, hi) = bucket_bounds(bucket_index(1.0));
        assert!(lo <= 1.0 && 1.0 < hi);
        for &v in &[1e-9, 2.5e-4, 0.999, 1.0, 3.7, 9.99, 10.0, 123.0, 9.9e9] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v < hi, "v={v} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn relative_resolution_bounded() {
        // Every regular bucket's width is at most its lower bound, i.e.
        // ≤ 100% at k=1... actually (k+1)/k - 1 ≤ 1 for k=1, and the mean
        // relative error of the midpoint estimate stays under ~11% for
        // sorted data; spot-check the widths.
        for idx in 1..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(idx);
            assert!(hi > lo);
            assert!((hi - lo) / lo <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn bounds_are_contiguous() {
        for idx in 1..BUCKETS - 2 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert!(
                (hi - lo_next).abs() <= 1e-12 * hi.abs(),
                "gap between bucket {idx} and {}",
                idx + 1
            );
        }
    }
}
