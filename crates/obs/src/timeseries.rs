//! Rolling time-series over the metric registry.
//!
//! Aggregate counters answer *how much since process start*; an
//! operator watching a live exchange needs *how much per second, right
//! now* and *what the latency percentiles looked like over the last
//! minute*. This module is that layer: a [`TimeSeries`] store samples
//! the global registry on a fixed interval (a background thread via
//! [`TimeSeries::start`], or an explicit [`TimeSeries::sample_now`] for
//! deterministic tests) into fixed-capacity ring buffers:
//!
//! * **Counters** store per-tick *rates* (`Δvalue / interval`).
//! * **Gauges** store the sampled level.
//! * **Histograms** store a full cumulative bucket image per tick, so a
//!   *window* quantile is exact at bucket resolution: the quantile of
//!   `buckets(now) − buckets(now − w)` — a true rolling percentile, not
//!   a since-startup one.
//!
//! The sampling path is allocation-free in steady state: every ring is
//! preallocated at series creation (the first tick that sees a new
//! metric name allocates its ring once), a tick is one registry walk
//! under read locks plus ring writes. Memory is bounded by
//! `capacity × (8 B per counter/gauge + ~1.4 KiB per histogram)`; the
//! default (240 ticks at 1 s) keeps a 4-minute window at well under a
//! megabyte for this workspace's metric population.
//!
//! ```
//! let ts = std::sync::Arc::new(mfcp_obs::TimeSeries::new(
//!     mfcp_obs::TimeSeriesConfig::default(),
//! ));
//! mfcp_obs::counter("ts.doc.events").add(10);
//! ts.sample_now();
//! mfcp_obs::counter("ts.doc.events").add(30);
//! ts.sample_now();
//! let rate = ts.rolling_rate("ts.doc.events", 1);
//! assert!(rate > 0.0);
//! ```

use crate::histogram::{bucket_bounds, quantile_over, BUCKETS};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for one [`TimeSeries`] store.
#[derive(Debug, Clone)]
pub struct TimeSeriesConfig {
    /// Sampling interval of the background thread (and the Δt used to
    /// convert counter deltas into rates).
    pub interval: Duration,
    /// Ring capacity in ticks; the rolling window can reach back at
    /// most this far. Clamped to at least 2.
    pub capacity: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            interval: Duration::from_secs(1),
            capacity: 240,
        }
    }
}

/// Fixed-capacity overwrite-oldest ring of `f64` points.
struct RingF64 {
    buf: Vec<f64>,
    /// Next write slot.
    head: usize,
    len: usize,
}

impl RingF64 {
    fn new(cap: usize) -> Self {
        RingF64 {
            buf: vec![0.0; cap],
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, v: f64) {
        let cap = self.buf.len();
        self.buf[self.head] = v;
        self.head = (self.head + 1) % cap;
        self.len = (self.len + 1).min(cap);
    }

    /// Last `n` points, oldest first, into `out` (cleared first).
    fn window(&self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        let n = n.min(self.len);
        let cap = self.buf.len();
        for k in 0..n {
            out.push(self.buf[(self.head + cap - n + k) % cap]);
        }
    }
}

struct CounterSeries {
    prev: u64,
    rates: RingF64,
}

/// Ring of cumulative bucket images; one flat allocation of
/// `cap × BUCKETS` slots plus per-tick count/min/max columns.
struct HistSeries {
    buckets: Vec<u64>,
    counts: Vec<u64>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    head: usize,
    len: usize,
    /// Scratch reused by [`Self::push_current`] so sampling allocates
    /// nothing.
    scratch: [u64; BUCKETS],
}

impl HistSeries {
    fn new(cap: usize) -> Self {
        HistSeries {
            buckets: vec![0; cap * BUCKETS],
            counts: vec![0; cap],
            mins: vec![f64::NAN; cap],
            maxs: vec![f64::NAN; cap],
            head: 0,
            len: 0,
            scratch: [0; BUCKETS],
        }
    }

    fn cap(&self) -> usize {
        self.counts.len()
    }

    fn push_current(&mut self, h: &crate::Histogram) {
        let (count, min, max) = h.copy_buckets(&mut self.scratch);
        let slot = self.head;
        self.buckets[slot * BUCKETS..(slot + 1) * BUCKETS].copy_from_slice(&self.scratch);
        self.counts[slot] = count;
        self.mins[slot] = min;
        self.maxs[slot] = max;
        self.head = (self.head + 1) % self.cap();
        self.len = (self.len + 1).min(self.cap());
    }

    /// Physical slot of the `k`-th most recent tick (`k = 0` is the
    /// latest); `None` when the ring holds fewer than `k + 1` ticks.
    fn slot_back(&self, k: usize) -> Option<usize> {
        if k >= self.len {
            return None;
        }
        let cap = self.cap();
        Some((self.head + cap - 1 - k) % cap)
    }

    /// Quantile of the observations recorded during the last `window`
    /// ticks: rank-select over `buckets(latest) − buckets(latest − w)`.
    fn window_quantile(&self, window: usize, q: f64) -> f64 {
        let Some(now) = self.slot_back(0) else {
            return f64::NAN;
        };
        let base = self.slot_back(window.max(1).min(self.len - 1));
        let now_off = now * BUCKETS;
        let (min, max) = (self.mins[now], self.maxs[now]);
        match base {
            Some(b) => {
                let b_off = b * BUCKETS;
                let total: u64 = (0..BUCKETS)
                    .map(|i| self.buckets[now_off + i].saturating_sub(self.buckets[b_off + i]))
                    .sum();
                quantile_over(
                    total,
                    (0..BUCKETS).map(|i| {
                        let (lo, hi) = bucket_bounds(i);
                        let c = self.buckets[now_off + i].saturating_sub(self.buckets[b_off + i]);
                        (lo, hi, c)
                    }),
                    q,
                    min,
                    max,
                )
            }
            // Only one tick in the ring: the window is everything.
            None => quantile_over(
                self.counts[now],
                (0..BUCKETS).map(|i| {
                    let (lo, hi) = bucket_bounds(i);
                    (lo, hi, self.buckets[now_off + i])
                }),
                q,
                min,
                max,
            ),
        }
    }
}

struct SeriesStore {
    ticks: u64,
    counters: HashMap<String, CounterSeries>,
    gauges: HashMap<String, RingF64>,
    hists: HashMap<String, HistSeries>,
}

/// The rolling time-series store. Shared behind an `Arc` between the
/// sampler thread, the HTTP server, and whoever wants window reads.
pub struct TimeSeries {
    store: Mutex<SeriesStore>,
    interval: Duration,
    capacity: usize,
}

impl TimeSeries {
    /// An empty store; nothing is recorded until [`Self::sample_now`]
    /// runs (directly or from the [`Self::start`] thread).
    pub fn new(cfg: TimeSeriesConfig) -> Self {
        TimeSeries {
            store: Mutex::new(SeriesStore {
                ticks: 0,
                counters: HashMap::new(),
                gauges: HashMap::new(),
                hists: HashMap::new(),
            }),
            interval: cfg.interval.max(Duration::from_millis(1)),
            capacity: cfg.capacity.max(2),
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Ticks sampled so far.
    pub fn ticks(&self) -> u64 {
        self.store.lock().unwrap_or_else(|e| e.into_inner()).ticks
    }

    /// Takes one sample of the global registry. The background thread
    /// calls this on its interval; tests call it directly for
    /// deterministic tick control.
    pub fn sample_now(&self) {
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let store = &mut *store;
        let dt = self.interval.as_secs_f64();
        let cap = self.capacity;
        crate::global().visit_counters(|name, v| {
            match store.counters.get_mut(name) {
                Some(s) => {
                    s.rates.push(v.saturating_sub(s.prev) as f64 / dt);
                    s.prev = v;
                }
                None => {
                    // First sight of this counter: its ring starts at the
                    // next tick (there is no previous value to rate
                    // against). The one-time insert is the only
                    // allocation this path ever performs.
                    store.counters.insert(
                        name.to_string(),
                        CounterSeries {
                            prev: v,
                            rates: RingF64::new(cap),
                        },
                    );
                }
            }
        });
        crate::global().visit_gauges(|name, v| match store.gauges.get_mut(name) {
            Some(ring) => ring.push(v),
            None => {
                let mut ring = RingF64::new(cap);
                ring.push(v);
                store.gauges.insert(name.to_string(), ring);
            }
        });
        crate::global().visit_histograms(|name, h| {
            match store.hists.get_mut(name) {
                Some(s) => s.push_current(h),
                None => {
                    let mut s = HistSeries::new(cap);
                    s.push_current(h);
                    store.hists.insert(name.to_string(), s);
                }
            };
        });
        store.ticks += 1;
    }

    /// Mean per-second rate of counter `name` over the last `window`
    /// ticks (`NaN` when the counter has fewer than one sampled rate).
    pub fn rolling_rate(&self, name: &str, window: usize) -> f64 {
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let Some(s) = store.counters.get(name) else {
            return f64::NAN;
        };
        let mut pts = Vec::new();
        s.rates.window(window.max(1), &mut pts);
        if pts.is_empty() {
            return f64::NAN;
        }
        pts.iter().sum::<f64>() / pts.len() as f64
    }

    /// Latest sampled value of gauge `name` (`NaN` when never sampled).
    pub fn latest_gauge(&self, name: &str) -> f64 {
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let mut pts = Vec::new();
        if let Some(ring) = store.gauges.get(name) {
            ring.window(1, &mut pts);
        }
        pts.pop().unwrap_or(f64::NAN)
    }

    /// Rolling quantile of histogram `name` over the last `window`
    /// ticks — the quantile of exactly the observations recorded inside
    /// the window, at bucket resolution (`NaN` when unsampled or the
    /// window recorded nothing).
    pub fn rolling_quantile(&self, name: &str, window: usize, q: f64) -> f64 {
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        store
            .hists
            .get(name)
            .map_or(f64::NAN, |s| s.window_quantile(window, q))
    }

    /// Serializes the last `window` ticks of every series as JSON:
    /// `{"interval_secs": …, "ticks": …, "counters": {name: [rate, …]},
    /// "gauges": {…}, "histograms": {name: {"p50": [...], "p95": [...],
    /// "p99": [...]}}}`. Histogram points are per-tick quantiles (each
    /// tick's window of 1), which is what a sparkline wants.
    pub fn window_json(&self, window: usize) -> String {
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let window = window.max(1);
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"interval_secs\": {}, \"ticks\": {}, \"capacity\": {}",
            crate::json::number(self.interval.as_secs_f64()),
            store.ticks,
            self.capacity
        );
        out.push_str(", \"counters\": {");
        let mut names: Vec<&String> = store.counters.keys().collect();
        names.sort();
        let mut pts = Vec::new();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            store.counters[*name].rates.window(window, &mut pts);
            let _ = write!(out, "{}: ", crate::json::escape(name));
            push_points(&mut out, &pts);
        }
        out.push_str("}, \"gauges\": {");
        let mut names: Vec<&String> = store.gauges.keys().collect();
        names.sort();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            store.gauges[*name].window(window, &mut pts);
            let _ = write!(out, "{}: ", crate::json::escape(name));
            push_points(&mut out, &pts);
        }
        out.push_str("}, \"histograms\": {");
        let mut names: Vec<&String> = store.hists.keys().collect();
        names.sort();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let s = &store.hists[*name];
            let n = window.min(s.len);
            let _ = write!(out, "{}: {{", crate::json::escape(name));
            for (j, (label, q)) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)]
                .iter()
                .enumerate()
            {
                if j > 0 {
                    out.push_str(", ");
                }
                // Per-tick quantiles: quantile of the observations that
                // arrived in each single tick, oldest first.
                pts.clear();
                for k in (0..n).rev() {
                    // Window of 1 ending k ticks back == diff between
                    // consecutive images; recompute via window_quantile
                    // on a shifted view is not directly expressible, so
                    // diff adjacent slots here.
                    pts.push(s.tick_quantile(k, *q));
                }
                let _ = write!(out, "\"{label}\": ");
                push_points(&mut out, &pts);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Spawns the background sampler thread. The handle stops and joins
    /// the thread when dropped (or on [`SamplerHandle::stop`]).
    pub fn start(self: &Arc<Self>) -> SamplerHandle {
        let series = Arc::clone(self);
        let shared = Arc::new(StopSignal {
            stopped: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        });
        let signal = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("mfcp-obs-sampler".into())
            .spawn(move || loop {
                series.sample_now();
                let guard = signal.mutex.lock().unwrap_or_else(|e| e.into_inner());
                let (_guard, _timeout) = signal
                    .cond
                    .wait_timeout(guard, series.interval)
                    .unwrap_or_else(|e| e.into_inner());
                if signal.stopped.load(Ordering::Acquire) {
                    return;
                }
            })
            .expect("spawn sampler thread");
        SamplerHandle {
            signal: shared,
            thread: Some(thread),
        }
    }
}

impl HistSeries {
    /// Quantile of the observations recorded during the single tick `k`
    /// steps back from the latest (0 = latest tick).
    fn tick_quantile(&self, k: usize, q: f64) -> f64 {
        let Some(now) = self.slot_back(k) else {
            return f64::NAN;
        };
        let now_off = now * BUCKETS;
        let (min, max) = (self.mins[now], self.maxs[now]);
        match self.slot_back(k + 1) {
            Some(prev) => {
                let p_off = prev * BUCKETS;
                let total: u64 = (0..BUCKETS)
                    .map(|i| self.buckets[now_off + i].saturating_sub(self.buckets[p_off + i]))
                    .sum();
                quantile_over(
                    total,
                    (0..BUCKETS).map(|i| {
                        let (lo, hi) = bucket_bounds(i);
                        let c = self.buckets[now_off + i].saturating_sub(self.buckets[p_off + i]);
                        (lo, hi, c)
                    }),
                    q,
                    min,
                    max,
                )
            }
            None => quantile_over(
                self.counts[now],
                (0..BUCKETS).map(|i| {
                    let (lo, hi) = bucket_bounds(i);
                    (lo, hi, self.buckets[now_off + i])
                }),
                q,
                min,
                max,
            ),
        }
    }
}

fn push_points(out: &mut String, pts: &[f64]) {
    out.push('[');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if p.is_finite() {
            let _ = write!(out, "{p}");
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
}

struct StopSignal {
    stopped: AtomicBool,
    mutex: Mutex<()>,
    cond: Condvar,
}

/// Owns the background sampler thread; dropping it stops sampling and
/// joins the thread (shutdown is bounded by one condvar wake).
pub struct SamplerHandle {
    signal: Arc<StopSignal>,
    thread: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Stops the sampler and joins its thread. Idempotent.
    pub fn stop(&mut self) {
        self.signal.stopped.store(true, Ordering::Release);
        let _guard = self.signal.mutex.lock().unwrap_or_else(|e| e.into_inner());
        self.signal.cond.notify_all();
        drop(_guard);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize) -> TimeSeriesConfig {
        TimeSeriesConfig {
            interval: Duration::from_secs(1),
            capacity,
        }
    }

    #[test]
    fn counter_rates_and_gauge_levels() {
        let _g = crate::test_guard();
        crate::reset();
        let ts = TimeSeries::new(cfg(8));
        let c = crate::counter("ts.test.rate");
        let g = crate::gauge("ts.test.level");
        c.add(5);
        g.set(2.0);
        ts.sample_now(); // first sight: establishes the counter baseline
        c.add(10);
        g.set(7.0);
        ts.sample_now();
        assert_eq!(ts.rolling_rate("ts.test.rate", 1), 10.0);
        assert_eq!(ts.latest_gauge("ts.test.level"), 7.0);
        c.add(2);
        ts.sample_now();
        // Mean of the last two per-tick rates: (10 + 2) / 2.
        assert_eq!(ts.rolling_rate("ts.test.rate", 2), 6.0);
        assert!(ts.rolling_rate("ts.test.missing", 4).is_nan());
        assert_eq!(ts.ticks(), 3);
    }

    #[test]
    fn rolling_quantiles_are_window_local() {
        let _g = crate::test_guard();
        crate::reset();
        let ts = TimeSeries::new(cfg(16));
        let h = crate::histogram("ts.test.lat");
        // Tick 1: fast regime.
        for _ in 0..100 {
            h.record(0.001);
        }
        ts.sample_now();
        // Ticks 2-3: slow regime, fewer observations than the fast
        // burst so the *cumulative* median stays in the fast bucket.
        for _ in 0..50 {
            h.record(1.0);
        }
        ts.sample_now();
        for _ in 0..50 {
            h.record(1.0);
        }
        ts.sample_now();
        // A 2-tick window sees only the slow regime; the cumulative
        // histogram would put p50 somewhere between the regimes.
        let rolling_p50 = ts.rolling_quantile("ts.test.lat", 2, 0.5);
        assert!(
            rolling_p50 >= 0.9,
            "rolling p50 should see only the slow window, got {rolling_p50}"
        );
        let cumulative_p50 = h.quantile(0.5);
        assert!(cumulative_p50 < rolling_p50);
        // A window wider than history degrades to everything sampled.
        let wide = ts.rolling_quantile("ts.test.lat", 64, 0.5);
        assert!(wide.is_finite());
    }

    #[test]
    fn rings_overwrite_oldest_at_capacity() {
        let _g = crate::test_guard();
        crate::reset();
        let ts = TimeSeries::new(cfg(2));
        let c = crate::counter("ts.test.capped");
        for i in 0..10u64 {
            c.add(i);
            ts.sample_now();
        }
        // Ring holds the last 2 rates: 8 and 9; asking for more returns
        // what exists.
        assert_eq!(ts.rolling_rate("ts.test.capped", 2), 8.5);
        assert_eq!(ts.rolling_rate("ts.test.capped", 100), 8.5);
        assert_eq!(ts.ticks(), 10);
    }

    #[test]
    fn window_json_parses_and_contains_series() {
        let _g = crate::test_guard();
        crate::reset();
        let ts = TimeSeries::new(cfg(8));
        crate::counter("ts.test.json.c").add(3);
        crate::gauge("ts.test.json.g").set(1.5);
        crate::histogram("ts.test.json.h").record(0.25);
        ts.sample_now();
        crate::counter("ts.test.json.c").add(4);
        ts.sample_now();
        let json = ts.window_json(8);
        let doc = crate::json::parse(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(doc
            .get("counters")
            .and_then(|c| c.get("ts.test.json.c"))
            .is_some());
        assert!(doc
            .get("gauges")
            .and_then(|c| c.get("ts.test.json.g"))
            .is_some());
        assert!(doc
            .get("histograms")
            .and_then(|c| c.get("ts.test.json.h"))
            .and_then(|h| h.get("p50"))
            .is_some());
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let _g = crate::test_guard();
        crate::reset();
        let ts = Arc::new(TimeSeries::new(TimeSeriesConfig {
            interval: Duration::from_millis(5),
            capacity: 64,
        }));
        let mut handle = ts.start();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ts.ticks() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(ts.ticks() >= 3, "sampler thread should tick");
        handle.stop();
        let after = ts.ticks();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ts.ticks(), after, "no ticks after stop");
        handle.stop(); // idempotent
    }
}
