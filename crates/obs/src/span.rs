//! Nested span timers.
//!
//! A span is a named RAII scope: `let _g = mfcp_obs::span("round");`
//! records wall time from creation to drop. Spans opened while another
//! span is live on the same thread nest under it — the metric key is the
//! `/`-joined path of open span names (`train_mfcp/round/cluster_grads`),
//! which the snapshot renders as a profile tree. Worker threads start
//! with an empty path, so spans opened inside `par_map` closures become
//! roots of their own subtrees.
//!
//! Besides the aggregate wall-time statistic, every span emits a
//! begin/end event pair into the [`crate::trace`] flight recorder under
//! its full path, so queue wait vs. run time (and any other gap between
//! scopes) can be separated post-hoc from the drained event timeline
//! instead of being folded into one aggregate duration.

use crate::registry::Registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Aggregate timing of one span path.
pub(crate) struct SpanStat {
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
    /// Interned trace-event name of this path, resolved once so the
    /// per-execution recorder cost is a ring push, not a string intern.
    pub(crate) trace_name: u32,
}

impl SpanStat {
    pub(crate) fn new(trace_name: u32) -> Self {
        SpanStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            trace_name,
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`crate::span`]; records elapsed wall time on
/// drop and pops its name off the thread's span path.
pub struct SpanGuard {
    stat: Option<Arc<SpanStat>>,
    start: Instant,
    prev_len: usize,
}

pub(crate) fn enter(reg: &'static Registry, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            stat: None,
            start: Instant::now(),
            prev_len: usize::MAX,
        };
    }
    let (stat, prev_len) = PATH.with(|p| {
        let mut path = p.borrow_mut();
        let prev_len = path.len();
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(name);
        (reg.span_stat(&path), prev_len)
    });
    crate::trace::begin_id(stat.trace_name, None);
    SpanGuard {
        stat: Some(stat),
        start: Instant::now(),
        prev_len,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(stat) = self.stat.take() else {
            return;
        };
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        crate::trace::end_id(stat.trace_name, None);
        stat.count.fetch_add(1, Ordering::Relaxed);
        stat.total_ns.fetch_add(ns, Ordering::Relaxed);
        stat.max_ns.fetch_max(ns, Ordering::Relaxed);
        PATH.with(|p| {
            let mut path = p.borrow_mut();
            path.truncate(self.prev_len);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_restored_after_drop() {
        let _g = crate::test_guard();
        {
            let _a = crate::span("span_test_a");
            PATH.with(|p| assert!(p.borrow().ends_with("span_test_a")));
            {
                let _b = crate::span("span_test_b");
                PATH.with(|p| assert!(p.borrow().ends_with("span_test_a/span_test_b")));
            }
            PATH.with(|p| assert!(p.borrow().ends_with("span_test_a")));
        }
        PATH.with(|p| assert!(p.borrow().is_empty()));
    }

    #[test]
    fn nested_paths_survive_panics() {
        let _g = crate::test_guard();
        // Guard drops run during unwind, so the thread-local path must be
        // fully restored once the panic is caught — a later span on this
        // thread must not inherit a stale prefix.
        let caught = std::panic::catch_unwind(|| {
            let _a = crate::span("span_panic_outer");
            let _b = crate::span("span_panic_inner");
            panic!("unwind through open spans");
        });
        assert!(caught.is_err());
        PATH.with(|p| assert!(p.borrow().is_empty(), "path: {:?}", p.borrow()));
        {
            let _c = crate::span("span_after_panic");
            PATH.with(|p| assert_eq!(*p.borrow(), "span_after_panic"));
        }
        let snap = crate::snapshot();
        // Both panicked spans still recorded their timing on unwind…
        assert!(snap.spans.contains_key("span_panic_outer"));
        assert!(snap.spans.contains_key("span_panic_outer/span_panic_inner"));
        // …and the post-panic span is a root, not nested under them.
        assert!(snap.spans.contains_key("span_after_panic"));
    }

    #[test]
    fn span_emits_trace_begin_end_pair() {
        let _g = crate::test_guard();
        crate::trace::clear();
        {
            let _a = crate::span("span_trace_outer");
            let _b = crate::span("span_trace_inner");
        }
        let trace = crate::trace::drain();
        let kinds: Vec<(crate::trace::EventKind, &str)> = trace
            .events
            .iter()
            .filter(|e| e.name.starts_with("span_trace_outer"))
            .map(|e| (e.kind, e.name.as_str()))
            .collect();
        use crate::trace::EventKind::*;
        assert_eq!(
            kinds,
            vec![
                (Begin, "span_trace_outer"),
                (Begin, "span_trace_outer/span_trace_inner"),
                (End, "span_trace_outer/span_trace_inner"),
                (End, "span_trace_outer"),
            ]
        );
    }

    #[test]
    fn disabled_span_does_not_touch_path() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        {
            let _a = crate::span("span_test_disabled");
            PATH.with(|p| assert!(p.borrow().is_empty()));
        }
        crate::set_enabled(true);
        assert!(!crate::snapshot().spans.contains_key("span_test_disabled"));
    }
}
