//! Nested span timers.
//!
//! A span is a named RAII scope: `let _g = mfcp_obs::span("round");`
//! records wall time from creation to drop. Spans opened while another
//! span is live on the same thread nest under it — the metric key is the
//! `/`-joined path of open span names (`train_mfcp/round/cluster_grads`),
//! which the snapshot renders as a profile tree. Worker threads start
//! with an empty path, so spans opened inside `par_map` closures become
//! roots of their own subtrees.

use crate::registry::Registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Aggregate timing of one span path.
pub(crate) struct SpanStat {
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
}

impl SpanStat {
    pub(crate) fn new() -> Self {
        SpanStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`crate::span`]; records elapsed wall time on
/// drop and pops its name off the thread's span path.
pub struct SpanGuard {
    stat: Option<Arc<SpanStat>>,
    start: Instant,
    prev_len: usize,
}

pub(crate) fn enter(reg: &'static Registry, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            stat: None,
            start: Instant::now(),
            prev_len: usize::MAX,
        };
    }
    let (stat, prev_len) = PATH.with(|p| {
        let mut path = p.borrow_mut();
        let prev_len = path.len();
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(name);
        (reg.span_stat(&path), prev_len)
    });
    SpanGuard {
        stat: Some(stat),
        start: Instant::now(),
        prev_len,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(stat) = self.stat.take() else {
            return;
        };
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        stat.count.fetch_add(1, Ordering::Relaxed);
        stat.total_ns.fetch_add(ns, Ordering::Relaxed);
        stat.max_ns.fetch_max(ns, Ordering::Relaxed);
        PATH.with(|p| {
            let mut path = p.borrow_mut();
            path.truncate(self.prev_len);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_restored_after_drop() {
        let _g = crate::test_guard();
        {
            let _a = crate::span("span_test_a");
            PATH.with(|p| assert!(p.borrow().ends_with("span_test_a")));
            {
                let _b = crate::span("span_test_b");
                PATH.with(|p| assert!(p.borrow().ends_with("span_test_a/span_test_b")));
            }
            PATH.with(|p| assert!(p.borrow().ends_with("span_test_a")));
        }
        PATH.with(|p| assert!(p.borrow().is_empty()));
    }

    #[test]
    fn disabled_span_does_not_touch_path() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        {
            let _a = crate::span("span_test_disabled");
            PATH.with(|p| assert!(p.borrow().is_empty()));
        }
        crate::set_enabled(true);
        assert!(!crate::snapshot().spans.contains_key("span_test_disabled"));
    }
}
