//! Proves same-shape `refactor` calls reuse their storage: after the
//! first factorization sizes the buffers, re-factoring another matrix of
//! the same shape performs zero heap allocations (Cholesky, LU, and QR).
//!
//! The measurement compares K and 3K same-shape refactors of rotating
//! inputs — the fixed warm-up cost (initial buffer sizing) is identical
//! in both runs, so the extra 2K refactors must add exactly zero
//! allocations.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide; running it next to unrelated
//! tests would make the counts racy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mfcp_linalg::cholesky::Cholesky;
use mfcp_linalg::lu::Lu;
use mfcp_linalg::qr::Qr;
use mfcp_linalg::Matrix;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N: usize = 24;

/// Deterministic SPD matrices (diagonally dominant) that vary with `round`
/// so each refactor does real work on fresh values.
fn spd(round: usize) -> Matrix {
    let mut a = Matrix::from_fn(N, N, |i, j| {
        (((i * 31 + j * 17 + round * 7) % 13) as f64 * 0.05).sin() * 0.1
    });
    // Symmetrize and dominate the diagonal.
    for i in 0..N {
        for j in 0..i {
            let s = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = s;
            a[(j, i)] = s;
        }
        a[(i, i)] = 2.0 + (round % 5) as f64 * 0.1;
    }
    a
}

fn general(round: usize) -> Matrix {
    let mut a = spd(round);
    // Break symmetry but keep the matrix comfortably non-singular.
    a[(0, N - 1)] += 0.7;
    a
}

fn cholesky_allocations(refactors: usize, f: &mut Cholesky, b: &mut [f64]) -> u64 {
    let mats: Vec<Matrix> = (0..4).map(spd).collect();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..refactors {
        f.refactor(&mats[round % mats.len()]).unwrap();
        b.fill(1.0);
        f.solve_in_place(b).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(b.iter().all(|v| v.is_finite()));
    after - before
}

fn lu_allocations(refactors: usize, f: &mut Lu, x: &mut Vec<f64>) -> u64 {
    let mats: Vec<Matrix> = (0..4).map(general).collect();
    let b = vec![1.0; N];
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..refactors {
        f.refactor(&mats[round % mats.len()]).unwrap();
        f.solve_into(&b, x).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(x.iter().all(|v| v.is_finite()));
    after - before
}

fn qr_allocations(refactors: usize, f: &mut Qr) -> u64 {
    let mats: Vec<Matrix> = (0..4).map(general).collect();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..refactors {
        f.refactor(&mats[round % mats.len()]).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    after - before
}

#[test]
fn same_shape_refactors_allocate_nothing_after_warmup() {
    // Cholesky (blocked kernel) + in-place solve.
    let mut chol = Cholesky::empty();
    let mut b = vec![0.0; N];
    cholesky_allocations(2, &mut chol, &mut b); // warm-up: sizes L
    cholesky_allocations(2, &mut chol, &mut b); // and any process-wide lazy state
    let short = cholesky_allocations(8, &mut chol, &mut b);
    let long = cholesky_allocations(24, &mut chol, &mut b);
    assert_eq!(
        long, short,
        "cholesky: 16 extra same-shape refactors must allocate nothing \
         (short: {short}, long: {long})"
    );
    assert_eq!(
        short, 0,
        "cholesky: warmed-up refactor+solve must be allocation-free"
    );

    // LU + solve_into (x reused across solves).
    let mut lu = Lu::empty();
    let mut x = Vec::new();
    lu_allocations(2, &mut lu, &mut x);
    lu_allocations(2, &mut lu, &mut x);
    let short = lu_allocations(8, &mut lu, &mut x);
    let long = lu_allocations(24, &mut lu, &mut x);
    assert_eq!(
        long, short,
        "lu: 16 extra same-shape refactors must allocate nothing \
         (short: {short}, long: {long})"
    );
    assert_eq!(
        short, 0,
        "lu: warmed-up refactor+solve_into must be allocation-free"
    );

    // QR refactor reuse.
    let mut qr = Qr::empty();
    qr_allocations(2, &mut qr);
    qr_allocations(2, &mut qr);
    let short = qr_allocations(8, &mut qr);
    let long = qr_allocations(24, &mut qr);
    assert_eq!(
        long, short,
        "qr: 16 extra same-shape refactors must allocate nothing \
         (short: {short}, long: {long})"
    );
    assert_eq!(short, 0, "qr: warmed-up refactor must be allocation-free");
}
