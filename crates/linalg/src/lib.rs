//! Dense linear algebra for the MFCP workspace.
//!
//! The MFCP pipeline needs a small but complete dense-matrix toolkit:
//!
//! * [`Matrix`] — a row-major `f64` matrix with the usual constructors,
//!   arithmetic, and a cache-blocked, thread-parallel matrix multiply
//!   (used by the autodiff engine and the KKT system assembly).
//! * [`lu::Lu`] — LU factorization with partial pivoting, the solver behind
//!   the implicit differentiation of the matching layer (paper Eq. 15).
//! * [`cholesky::Cholesky`] — cache-blocked right-looking factorization
//!   for symmetric positive-definite systems, with a batched refactor API
//!   ([`cholesky::CholeskyBatch`]) that amortizes one blocking plan across
//!   many same-shape factorizations.
//! * [`qr::Qr`] — Householder QR and least-squares solves.
//! * [`eigen`] — cyclic-Jacobi symmetric eigendecomposition, used for
//!   conditioning diagnostics of the KKT systems.
//! * [`vector`] — free functions on `&[f64]` slices (dot, norms, softmax,
//!   log-sum-exp) shared by the optimizer and the neural nets.
//!
//! Everything is `f64`; the matrices involved in MFCP (KKT systems of size
//! `3·M·N + N` for single-digit `M` and tens of tasks `N`) are small enough
//! that a straightforward, well-tested implementation beats FFI to BLAS.
//!
//! The only `unsafe` in the crate lives in [`simd`]: the runtime-dispatched
//! AVX2/FMA arms of the blocked-kernel primitives (`deny` + a scoped allow
//! rather than `forbid`, which cannot be overridden per-module). Everything
//! else stays safe Rust.

#![deny(unsafe_code)]
#![warn(missing_docs)]
// Triangular-solve and factorization kernels read clearest in index form.
#![allow(clippy::needless_range_loop)]

mod error;
mod matrix;
mod ops;

pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod qr;
pub mod simd;
pub mod vector;

pub use cholesky::{Cholesky, CholeskyBatch};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use ops::MatmulOptions;

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
