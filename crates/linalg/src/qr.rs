//! Householder QR factorization and least-squares solves.
//!
//! Used by the TSM/UCB baselines for closed-form linear-probe fits and by
//! tests as an independent check on the LU solver.

use crate::{LinalgError, Matrix, Result};

/// A QR factorization `A = Q R` of an `m x n` matrix with `m >= n`,
/// computed with Householder reflections.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: Matrix,
    /// Scalar factors of the Householder reflectors.
    tau: Vec<f64>,
}

impl Default for Qr {
    fn default() -> Self {
        Qr::empty()
    }
}

impl Qr {
    /// An empty (0×0) factorization intended as reusable storage for
    /// [`Qr::refactor`]. Solving with it fails with a shape mismatch
    /// until a refactor succeeds.
    pub fn empty() -> Qr {
        Qr {
            qr: Matrix::zeros(0, 0),
            tau: Vec::new(),
        }
    }

    /// Factors an `m x n` matrix with `m >= n`.
    pub fn factor(a: &Matrix) -> Result<Qr> {
        let mut f = Qr::empty();
        f.refactor(a)?;
        Ok(f)
    }

    /// Re-factors `a` into this factorization's storage, reallocating only
    /// when the shape changes.
    ///
    /// On any error the factorization is reset to the empty (0×0) state —
    /// the same stale-factor-after-error hazard as [`crate::cholesky::Cholesky`]
    /// / [`crate::lu::Lu`]: a partially-written factor must never stay
    /// solvable-looking.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        let (m, n) = a.shape();
        if m < n {
            self.qr = Matrix::zeros(0, 0);
            self.tau.clear();
            return Err(LinalgError::ShapeMismatch {
                op: "qr (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        if self.qr.shape() == (m, n) {
            self.qr.as_mut_slice().copy_from_slice(a.as_slice());
        } else {
            self.qr = a.clone();
        }
        self.tau.clear();
        self.tau.resize(n, 0.0);
        let qr = &mut self.qr;
        let tau = &mut self.tau;
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalize so v[k] = 1 implicitly; store v[k+1..] scaled by 1/v0.
            for i in (k + 1)..m {
                let v = qr[(i, k)] / v0;
                qr[(i, k)] = v;
            }
            tau[k] = -v0 / alpha; // standard LAPACK-style tau = 2 / (vᵀv)
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for c in (k + 1)..n {
                let mut dot = qr[(k, c)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, c)];
                }
                let t = tau[k] * dot;
                qr[(k, c)] -= t;
                for i in (k + 1)..m {
                    let v = qr[(i, k)];
                    qr[(i, c)] -= t * v;
                }
            }
        }
        Ok(())
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = b[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * b[i];
            }
            let t = self.tau[k] * dot;
            b[k] -= t;
            for i in (k + 1)..m {
                b[i] -= t * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min_x ||A x - b||_2`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on the top n x n triangle of R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            let r = self.qr[(i, i)];
            if r.abs() < 1e-12 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / r;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (top `n x n` block).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |r, c| if c >= r { self.qr[(r, c)] } else { 0.0 })
    }
}

/// Convenience: least-squares solve `min_x ||A x - b||`.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_recovers_plane() {
        // Fit y = 2 + 3 t exactly (noise-free overdetermined system).
        let ts: Vec<f64> = (0..20).map(|i| i as f64 / 5.0).collect();
        let a = Matrix::from_fn(20, 2, |r, c| if c == 0 { 1.0 } else { ts[r] });
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 + 3.0 * t).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn normal_equations_hold() {
        // At the least-squares optimum, Aᵀ(Ax - b) = 0.
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::from_fn(15, 4, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..15).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(axi, bi)| axi - bi).collect();
        let grad = a.transpose().matvec(&resid).unwrap();
        assert!(vector::norm_inf(&grad) < 1e-9);
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::from_fn(8, 5, |_, _| rng.gen_range(-1.0..1.0));
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // |det R| equals sqrt(det AᵀA).
        let ata = a.transpose().matmul(&a).unwrap();
        let det_ata = crate::lu::Lu::factor(&ata).unwrap().det();
        let det_r: f64 = (0..5).map(|i| r[(i, i)]).product();
        assert!((det_r.abs() - det_ata.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(Qr::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn refactor_reuses_storage_and_matches_factor() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut f = Qr::empty();
        // Repeats a shape (buffer reuse) and changes it (regrowth).
        for (m, n) in [(6, 3), (6, 3), (9, 4), (4, 2)] {
            let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
            f.refactor(&a).unwrap();
            let fresh = Qr::factor(&a).unwrap();
            let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
            assert_eq!(
                f.solve_least_squares(&b).unwrap(),
                fresh.solve_least_squares(&b).unwrap()
            );
        }
    }

    #[test]
    fn failed_refactor_resets_to_empty() {
        // Same stale-factor-after-error hazard as Cholesky/Lu: a failed
        // refactor must not leave the previous factor solvable-looking.
        let mut rng = StdRng::seed_from_u64(9);
        let good = Matrix::from_fn(5, 3, |_, _| rng.gen_range(-1.0..1.0));
        let mut f = Qr::empty();
        f.refactor(&good).unwrap();
        let err = f.refactor(&Matrix::zeros(2, 3)).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
        let res = f.solve_least_squares(&[1.0; 5]);
        assert!(
            matches!(res, Err(LinalgError::ShapeMismatch { .. })),
            "solve after failed refactor must error, got {res:?}"
        );
        // Recovery path.
        f.refactor(&good).unwrap();
        assert!(f
            .solve_least_squares(&[1.0; 5])
            .unwrap()
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let a = Matrix::from_fn(4, 2, |r, _| r as f64 + 1.0);
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0, 4.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
