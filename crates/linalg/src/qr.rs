//! Householder QR factorization and least-squares solves.
//!
//! Used by the TSM/UCB baselines for closed-form linear-probe fits and by
//! tests as an independent check on the LU solver.

use crate::{simd, LinalgError, Matrix, Result};

/// Default panel width of the blocked Householder factorization.
pub const DEFAULT_BLOCK: usize = 32;

/// A QR factorization `A = Q R` of an `m x n` matrix with `m >= n`,
/// computed with Householder reflections.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: Matrix,
    /// Scalar factors of the Householder reflectors.
    tau: Vec<f64>,
    /// Compact-WY scratch: the upper-triangular `T` of the current panel
    /// (`block x block`, row-major). Persists across refactors so steady
    /// -state refactoring performs no heap allocation.
    t_mat: Vec<f64>,
    /// Compact-WY scratch: the `W = Vᵀ C` workspace (`block x (n - ke)`
    /// rows, row-major at width `n`).
    wy_work: Vec<f64>,
    /// Compact-WY scratch: the `Vᵀ v_j` column used to grow `T`.
    panel_dots: Vec<f64>,
}

impl Default for Qr {
    fn default() -> Self {
        Qr::empty()
    }
}

impl Qr {
    /// An empty (0×0) factorization intended as reusable storage for
    /// [`Qr::refactor`]. Solving with it fails with a shape mismatch
    /// until a refactor succeeds.
    pub fn empty() -> Qr {
        Qr {
            qr: Matrix::zeros(0, 0),
            tau: Vec::new(),
            t_mat: Vec::new(),
            wy_work: Vec::new(),
            panel_dots: Vec::new(),
        }
    }

    /// Factors an `m x n` matrix with `m >= n`.
    pub fn factor(a: &Matrix) -> Result<Qr> {
        let mut f = Qr::empty();
        f.refactor(a)?;
        Ok(f)
    }

    /// Re-factors `a` into this factorization's storage, reallocating only
    /// when the shape changes.
    ///
    /// On any error the factorization is reset to the empty (0×0) state —
    /// the same stale-factor-after-error hazard as [`crate::cholesky::Cholesky`]
    /// / [`crate::lu::Lu`]: a partially-written factor must never stay
    /// solvable-looking.
    ///
    /// The factorization is blocked compact-WY Householder: reflectors are
    /// computed a panel ([`DEFAULT_BLOCK`] columns) at a time, accumulated
    /// into a triangular factor `T` (`Q_panel = I - V T Vᵀ`), and applied to
    /// the trailing columns as three row-major passes (`W = VᵀC`,
    /// `W ← TᵀW`, `C ← C - V W`) routed through the [`crate::simd`]
    /// primitives. The `(V, tau, R)` storage and sign conventions are
    /// identical to the scalar reference ([`Qr::refactor_scalar`]), so
    /// [`Qr::solve_least_squares`] is oblivious to which path produced the
    /// factor. Unlike the blocked LU, the WY accumulation *reassociates*
    /// the reflector applications through `T`, so blocked and scalar agree
    /// to a documented `1e-12`-relative tolerance rather than bitwise —
    /// see the differential tests.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        self.refactor_with_block(a, DEFAULT_BLOCK)
    }

    /// [`Qr::refactor`] with an explicit panel width (block-boundary tests
    /// and benchmarks; `refactor` uses [`DEFAULT_BLOCK`]).
    pub fn refactor_with_block(&mut self, a: &Matrix, block: usize) -> Result<()> {
        let (m, n) = self.load(a)?;
        let block = block.max(1);
        let kern = simd::active_kernel();
        simd::record_dispatch(kern);
        // Scratch sized once per refactor; `resize` after `clear` keeps the
        // existing capacity, so steady-state refactoring allocates nothing.
        self.t_mat.clear();
        self.t_mat.resize(block * block, 0.0);
        self.wy_work.clear();
        self.wy_work.resize(block * n, 0.0);
        self.panel_dots.clear();
        self.panel_dots.resize(block, 0.0);
        let qr = &mut self.qr;
        let tau = &mut self.tau;
        let t_mat = &mut self.t_mat;
        let wy = &mut self.wy_work;
        let pd = &mut self.panel_dots;

        let mut kb = 0;
        while kb < n {
            let ke = (kb + block).min(n);
            let nb = ke - kb;
            // --- Panel factorization: the scalar reflector loop restricted
            // to the panel's own columns.
            for k in kb..ke {
                let mut norm = 0.0;
                for i in k..m {
                    norm += qr[(i, k)] * qr[(i, k)];
                }
                let norm = norm.sqrt();
                if norm == 0.0 {
                    tau[k] = 0.0;
                    continue;
                }
                let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
                let v0 = qr[(k, k)] - alpha;
                // Normalize so v[k] = 1 implicitly; store v[k+1..] / v0.
                for i in (k + 1)..m {
                    let v = qr[(i, k)] / v0;
                    qr[(i, k)] = v;
                }
                tau[k] = -v0 / alpha; // standard LAPACK-style tau = 2 / (vᵀv)
                qr[(k, k)] = alpha;
                for c in (k + 1)..ke {
                    let mut dot = qr[(k, c)];
                    for i in (k + 1)..m {
                        dot += qr[(i, k)] * qr[(i, c)];
                    }
                    let t = tau[k] * dot;
                    qr[(k, c)] -= t;
                    for i in (k + 1)..m {
                        let v = qr[(i, k)];
                        qr[(i, c)] -= t * v;
                    }
                }
            }
            if ke < n {
                // `ke < n` implies a full panel: `nb == block` exactly, so
                // every upper-triangle cell of `t_mat` is rewritten below.
                debug_assert_eq!(nb, block);
                // --- Forward accumulation of the WY triangle T (larft):
                // T[j][j] = tau_j, T[0..j][j] = -tau_j * T * (Vᵀ v_j).
                for j in 0..nb {
                    let kj = kb + j;
                    let tj = tau[kj];
                    if tj == 0.0 {
                        // Zero-norm column: identity reflector, zero T
                        // column annihilates its W row in the update.
                        for l in 0..=j {
                            t_mat[l * block + j] = 0.0;
                        }
                        continue;
                    }
                    // pd[l] = v_lᵀ v_j, exploiting the implicit unit
                    // diagonals (v_j is zero above row kj): row-major
                    // axpy sweep instead of strided column dots.
                    let data = qr.as_slice();
                    pd[..j].copy_from_slice(&data[kj * n + kb..kj * n + kb + j]);
                    for i in (kj + 1)..m {
                        let vji = data[i * n + kj];
                        kern.axpy(vji, &data[i * n + kb..i * n + kb + j], &mut pd[..j]);
                    }
                    for l in 0..j {
                        let mut acc = 0.0;
                        for p in l..j {
                            acc += t_mat[l * block + p] * pd[p];
                        }
                        t_mat[l * block + j] = -tj * acc;
                    }
                    t_mat[j * block + j] = tj;
                }
                // --- Trailing update C ← (I - V Tᵀ Vᵀ) C on rows kb..m,
                // columns ke..n, as three row-major passes.
                let nc = n - ke;
                let data = qr.as_mut_slice();
                // Pass 1: W = Vᵀ C (W[j] lives at wy[j*nc..], row-major).
                wy[..nb * nc].fill(0.0);
                for i in kb..m {
                    let jmax = (i - kb).min(nb - 1);
                    let row = &data[i * n..(i + 1) * n];
                    let c_row = &row[ke..];
                    for (j, w_row) in wy.chunks_exact_mut(nc).enumerate().take(jmax + 1) {
                        let v = if j == i - kb { 1.0 } else { row[kb + j] };
                        kern.axpy(v, c_row, w_row);
                    }
                }
                // Pass 2: W ← Tᵀ W in place (descending rows: row j only
                // reads rows l < j, which are still the pass-1 values).
                for j in (0..nb).rev() {
                    let tjj = t_mat[j * block + j];
                    for w in wy[j * nc..(j + 1) * nc].iter_mut() {
                        *w *= tjj;
                    }
                    let (head, tail) = wy.split_at_mut(j * nc);
                    for l in 0..j {
                        let tlj = t_mat[l * block + j];
                        if tlj != 0.0 {
                            kern.axpy(tlj, &head[l * nc..(l + 1) * nc], &mut tail[..nc]);
                        }
                    }
                }
                // Pass 3: C ← C - V W.
                for i in kb..m {
                    let jmax = (i - kb).min(nb - 1);
                    let row = &mut data[i * n..(i + 1) * n];
                    let (v_part, c_row) = row.split_at_mut(ke);
                    for (j, w_row) in wy.chunks_exact(nc).enumerate().take(jmax + 1) {
                        let v = if j == i - kb { 1.0 } else { v_part[kb + j] };
                        kern.axpy(-v, w_row, c_row);
                    }
                }
            }
            kb = ke;
        }
        Ok(())
    }

    /// The scalar one-reflector-at-a-time reference factorization, kept for
    /// the `qr_blocked` perfgate head-to-head and the differential tests.
    /// Same contract as [`Qr::refactor`], including storage reuse and the
    /// reset-to-empty-on-error behaviour.
    pub fn refactor_scalar(&mut self, a: &Matrix) -> Result<()> {
        let (m, n) = self.load(a)?;
        let qr = &mut self.qr;
        let tau = &mut self.tau;
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalize so v[k] = 1 implicitly; store v[k+1..] scaled by 1/v0.
            for i in (k + 1)..m {
                let v = qr[(i, k)] / v0;
                qr[(i, k)] = v;
            }
            tau[k] = -v0 / alpha; // standard LAPACK-style tau = 2 / (vᵀv)
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for c in (k + 1)..n {
                let mut dot = qr[(k, c)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, c)];
                }
                let t = tau[k] * dot;
                qr[(k, c)] -= t;
                for i in (k + 1)..m {
                    let v = qr[(i, k)];
                    qr[(i, c)] -= t * v;
                }
            }
        }
        Ok(())
    }

    /// Copies `a` into the factor storage (reallocating only on a shape
    /// change) and zeroes `tau`.
    fn load(&mut self, a: &Matrix) -> Result<(usize, usize)> {
        let (m, n) = a.shape();
        if m < n {
            self.reset();
            return Err(LinalgError::ShapeMismatch {
                op: "qr (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        if self.qr.shape() == (m, n) {
            self.qr.as_mut_slice().copy_from_slice(a.as_slice());
        } else {
            self.qr = a.clone();
        }
        self.tau.clear();
        self.tau.resize(n, 0.0);
        Ok((m, n))
    }

    /// Resets to the empty (0×0) state; solves fail until the next
    /// successful refactor.
    fn reset(&mut self) {
        self.qr = Matrix::zeros(0, 0);
        self.tau.clear();
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = b[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * b[i];
            }
            let t = self.tau[k] * dot;
            b[k] -= t;
            for i in (k + 1)..m {
                b[i] -= t * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min_x ||A x - b||_2`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on the top n x n triangle of R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            let r = self.qr[(i, i)];
            if r.abs() < 1e-12 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / r;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (top `n x n` block).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |r, c| if c >= r { self.qr[(r, c)] } else { 0.0 })
    }
}

/// Convenience: least-squares solve `min_x ||A x - b||`.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_recovers_plane() {
        // Fit y = 2 + 3 t exactly (noise-free overdetermined system).
        let ts: Vec<f64> = (0..20).map(|i| i as f64 / 5.0).collect();
        let a = Matrix::from_fn(20, 2, |r, c| if c == 0 { 1.0 } else { ts[r] });
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 + 3.0 * t).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn normal_equations_hold() {
        // At the least-squares optimum, Aᵀ(Ax - b) = 0.
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::from_fn(15, 4, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..15).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(axi, bi)| axi - bi).collect();
        let grad = a.transpose().matvec(&resid).unwrap();
        assert!(vector::norm_inf(&grad) < 1e-9);
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::from_fn(8, 5, |_, _| rng.gen_range(-1.0..1.0));
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // |det R| equals sqrt(det AᵀA).
        let ata = a.transpose().matmul(&a).unwrap();
        let det_ata = crate::lu::Lu::factor(&ata).unwrap().det();
        let det_r: f64 = (0..5).map(|i| r[(i, i)]).product();
        assert!((det_r.abs() - det_ata.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(Qr::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn refactor_reuses_storage_and_matches_factor() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut f = Qr::empty();
        // Repeats a shape (buffer reuse) and changes it (regrowth).
        for (m, n) in [(6, 3), (6, 3), (9, 4), (4, 2)] {
            let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
            f.refactor(&a).unwrap();
            let fresh = Qr::factor(&a).unwrap();
            let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
            assert_eq!(
                f.solve_least_squares(&b).unwrap(),
                fresh.solve_least_squares(&b).unwrap()
            );
        }
    }

    #[test]
    fn failed_refactor_resets_to_empty() {
        // Same stale-factor-after-error hazard as Cholesky/Lu: a failed
        // refactor must not leave the previous factor solvable-looking.
        let mut rng = StdRng::seed_from_u64(9);
        let good = Matrix::from_fn(5, 3, |_, _| rng.gen_range(-1.0..1.0));
        let mut f = Qr::empty();
        f.refactor(&good).unwrap();
        let err = f.refactor(&Matrix::zeros(2, 3)).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
        let res = f.solve_least_squares(&[1.0; 5]);
        assert!(
            matches!(res, Err(LinalgError::ShapeMismatch { .. })),
            "solve after failed refactor must error, got {res:?}"
        );
        // Recovery path.
        f.refactor(&good).unwrap();
        assert!(f
            .solve_least_squares(&[1.0; 5])
            .unwrap()
            .iter()
            .all(|v| v.is_finite()));
    }

    /// Blocked and scalar factorizations must agree on the packed factor
    /// (`V` below the diagonal, `R` on/above) and `tau` to a `1e-12`
    /// relative tolerance. The WY accumulation reassociates reflector
    /// applications through `T`, so bitwise equality is *not* expected —
    /// this documents the accepted bound.
    fn assert_blocked_matches_scalar(a: &Matrix, block: usize) {
        let mut blocked = Qr::empty();
        let mut scalar = Qr::empty();
        blocked.refactor_with_block(a, block).unwrap();
        scalar.refactor_scalar(a).unwrap();
        let scale = 1.0 + a.max_abs();
        let tol = 1e-12 * scale;
        for (i, (b, s)) in blocked
            .qr
            .as_slice()
            .iter()
            .zip(scalar.qr.as_slice())
            .enumerate()
        {
            assert!(
                (b - s).abs() <= tol,
                "factor diverges at flat index {i}: blocked={b}, scalar={s} \
                 (shape {:?}, block {block})",
                a.shape()
            );
        }
        for (k, (b, s)) in blocked.tau.iter().zip(&scalar.tau).enumerate() {
            assert!((b - s).abs() <= tol, "tau[{k}]: blocked={b}, scalar={s}");
        }
    }

    #[test]
    fn blocked_matches_scalar_across_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(41);
        for (m, n) in [(1, 1), (5, 3), (33, 32), (40, 40), (65, 33), (70, 64)] {
            let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
            for block in [1, 3, 8, 32, 100] {
                assert_blocked_matches_scalar(&a, block);
            }
        }
    }

    #[test]
    fn blocked_handles_zero_columns() {
        // Zero columns hit the tau = 0 path (identity reflector / zero T
        // column) inside and beyond the first panel.
        let mut rng = StdRng::seed_from_u64(43);
        let mut a = Matrix::from_fn(20, 11, |_, _| rng.gen_range(-1.0..1.0));
        for r in 0..20 {
            a[(r, 2)] = 0.0;
            a[(r, 7)] = 0.0;
        }
        for block in [1, 3, 4, 32] {
            assert_blocked_matches_scalar(&a, block);
        }
        // The factor must still solve: zero columns are rank deficiency,
        // caught at solve time exactly as with the scalar path.
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&vec![1.0; 20]),
            Err(LinalgError::Singular { .. })
        ));
    }

    proptest::proptest! {
        #[test]
        fn prop_blocked_matches_scalar(
            m in 1usize..24,
            extra in 0usize..12,
            block in 1usize..10,
            seed in 0u64..200,
        ) {
            let n = m.min(m.saturating_sub(extra).max(1));
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
            assert_blocked_matches_scalar(&a, block);
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let a = Matrix::from_fn(4, 2, |r, _| r as f64 + 1.0);
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0, 4.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
