//! LU factorization with partial pivoting.
//!
//! This is the workhorse behind MFCP-AD: the implicit differentiation of
//! the matching layer (paper Eq. 15) requires solving a dense linear system
//! whose matrix is the Jacobian of the KKT stationarity map. That matrix is
//! square, generally non-symmetric, and of moderate size (`3MN + N`), so
//! partial-pivoted LU is the right tool.

use crate::{simd, LinalgError, Matrix, Result};

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_EPS: f64 = 1e-12;

/// Default panel width of the blocked elimination (same tile footprint as
/// the blocked Cholesky).
pub const DEFAULT_BLOCK: usize = 64;

/// An LU factorization `P * A = L * U` with partial (row) pivoting.
///
/// ```
/// use mfcp_linalg::{lu::Lu, Matrix};
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = Lu::factor(&a).unwrap();
/// let x = lu.solve(&[10.0, 12.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (strict lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), for determinants.
    perm_sign: f64,
    /// Per-strip packed multipliers (`4 × panel-width`), scratch for the
    /// blocked trailing update; sized once and reused across refactors.
    lpack: Vec<f64>,
}

impl Default for Lu {
    fn default() -> Self {
        Lu::empty()
    }
}

impl Lu {
    /// An empty (0×0) factorization intended as reusable storage for
    /// [`Lu::refactor`]. Solving with it fails with a shape mismatch
    /// until a refactor succeeds.
    pub fn empty() -> Lu {
        Lu {
            lu: Matrix::zeros(0, 0),
            perm: Vec::new(),
            perm_sign: 1.0,
            lpack: Vec::new(),
        }
    }

    /// Factors a square matrix. Fails on non-square or singular input.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        let mut f = Lu::empty();
        f.refactor(a)?;
        Ok(f)
    }

    /// Re-factors `a` into this factorization's storage, reallocating only
    /// when the dimension changes. After an error the factorization is
    /// unusable until the next successful refactor.
    ///
    /// The elimination is cache-blocked and right-looking (panel
    /// factorization with full-row pivot swaps, a unit-triangular U12
    /// update, then a register-blocked trailing update). Every element
    /// receives its rank-1 updates in the same ascending-`k` order with
    /// the same fused `fma(-l, u, ·)` arithmetic as the scalar
    /// reference (`f64::mul_add` is correctly rounded on every platform,
    /// hardware FMA or libm), and pivot decisions read bitwise-identical
    /// column values, so [`Lu::refactor`] and [`Lu::refactor_scalar`]
    /// produce **bit-identical** factors, permutations, and singularity
    /// verdicts — the blocking only reorders independent memory traffic.
    /// Pivot-magnitude comparisons are what make this mandatory rather
    /// than nice-to-have: both paths must run the *same* (fused)
    /// arithmetic, because a 1-ulp divergence that flips a pivot choice
    /// becomes a macroscopic divergence in the factors.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        self.refactor_with_block(a, DEFAULT_BLOCK)
    }

    /// [`Lu::refactor`] with an explicit panel width (block-boundary tests
    /// and benchmarks; `refactor` uses [`DEFAULT_BLOCK`]).
    pub fn refactor_with_block(&mut self, a: &Matrix, block: usize) -> Result<()> {
        let n = self.load_square(a)?;
        let block = block.max(1);
        let kern = simd::active_kernel();
        simd::record_dispatch(kern);
        let scale = self.lu.max_abs().max(1.0);
        self.lpack.clear();
        self.lpack.resize(4 * block, 0.0);
        let data = self.lu.as_mut_slice();
        let mut kb = 0;
        while kb < n {
            let ke = (kb + block).min(n);
            // Panel factorization: columns kb..ke over rows kb..n. Column
            // k is fully updated on entry (previous panels' trailing
            // updates plus this panel's k' < k), so the pivot search sees
            // exactly the values the scalar elimination sees.
            for k in kb..ke {
                let mut pivot_row = k;
                let mut pivot_val = data[k * n + k].abs();
                for r in (k + 1)..n {
                    let v = data[r * n + k].abs();
                    if v > pivot_val {
                        pivot_val = v;
                        pivot_row = r;
                    }
                }
                if pivot_val <= SINGULARITY_EPS * scale {
                    // Reset to the empty state: a partially-eliminated
                    // factor still reports dim() == n, and solving with it
                    // silently returns garbage (or divides by a ~0 pivot).
                    self.reset();
                    return Err(LinalgError::Singular { pivot: k });
                }
                if pivot_row != k {
                    self.perm.swap(k, pivot_row);
                    self.perm_sign = -self.perm_sign;
                    for c in 0..n {
                        data.swap(k * n + c, pivot_row * n + c);
                    }
                }
                let (head, tail) = data.split_at_mut((k + 1) * n);
                let row_k = &head[k * n..(k + 1) * n];
                let pivot = row_k[k];
                for row_r in tail.chunks_exact_mut(n) {
                    let factor = row_r[k] / pivot;
                    row_r[k] = factor;
                    // Restrict the rank-1 update to the remaining panel
                    // columns; columns ke..n catch up in the U12/trailing
                    // stages below, still in ascending-k order per element.
                    kern.axpy(-factor, &row_k[k + 1..ke], &mut row_r[k + 1..ke]);
                }
            }
            if ke < n {
                // U12 stage: rows kb+1..ke, columns ke..n — forward solve
                // against the unit-lower panel block L11.
                for r in (kb + 1)..ke {
                    let (head, tail) = data.split_at_mut(r * n);
                    let row_r = &mut tail[..n];
                    for k in kb..r {
                        let l = row_r[k];
                        let urow = &head[k * n + ke..(k + 1) * n];
                        kern.axpy(-l, urow, &mut row_r[ke..]);
                    }
                }
                // Trailing stage: rows ke..n, columns ke..n get the full
                // panel's updates as GEMM-shaped 4×8 register tiles
                // ([`simd::SimdKernel::fnma_tile8`]) with the panel index
                // `k` innermost, multipliers packed per four-row strip.
                // Each element still receives its updates as a running
                // fused `fma(-l, u, ·)` chain in ascending-`k` order — the
                // tiling only changes *which* elements share a pass, never
                // the per-element arithmetic — so bitwise identity with
                // the scalar elimination survives.
                let (panel, trailing) = data.split_at_mut(ke * n);
                let nt = n - ke;
                let kl = ke - kb;
                let lp = &mut self.lpack[..4 * kl];
                let mut q = 0;
                while q + 4 <= nt {
                    let chunk = &mut trailing[q * n..(q + 4) * n];
                    let (r0, rest) = chunk.split_at_mut(n);
                    let (r1, rest) = rest.split_at_mut(n);
                    let (r2, r3) = rest.split_at_mut(n);
                    for (ki, k) in (kb..ke).enumerate() {
                        lp[4 * ki] = r0[k];
                        lp[4 * ki + 1] = r1[k];
                        lp[4 * ki + 2] = r2[k];
                        lp[4 * ki + 3] = r3[k];
                    }
                    let mut c = ke;
                    while c + 8 <= n {
                        kern.fnma_tile8(
                            kl,
                            lp,
                            &panel[kb * n + c..],
                            n,
                            &mut r0[c..],
                            &mut r1[c..],
                            &mut r2[c..],
                            &mut r3[c..],
                        );
                        c += 8;
                    }
                    while c < n {
                        let (mut a0, mut a1, mut a2, mut a3) = (r0[c], r1[c], r2[c], r3[c]);
                        for (ki, k) in (kb..ke).enumerate() {
                            let u = panel[k * n + c];
                            a0 = (-lp[4 * ki]).mul_add(u, a0);
                            a1 = (-lp[4 * ki + 1]).mul_add(u, a1);
                            a2 = (-lp[4 * ki + 2]).mul_add(u, a2);
                            a3 = (-lp[4 * ki + 3]).mul_add(u, a3);
                        }
                        r0[c] = a0;
                        r1[c] = a1;
                        r2[c] = a2;
                        r3[c] = a3;
                        c += 1;
                    }
                    q += 4;
                }
                while q < nt {
                    let row_r = &mut trailing[q * n..(q + 1) * n];
                    for k in kb..ke {
                        let urow = &panel[k * n + ke..(k + 1) * n];
                        let factor = row_r[k];
                        kern.axpy(-factor, urow, &mut row_r[ke..]);
                    }
                    q += 1;
                }
            }
            kb = ke;
        }
        Ok(())
    }

    /// The unblocked right-looking reference elimination, kept for the
    /// `lu_blocked` perfgate head-to-head and the bitwise differential
    /// tests. Runs the same fused `fma(-l, u, ·)` per-element arithmetic
    /// as the blocked path (through [`simd::SimdKernel::axpy`], so both
    /// follow one dispatch policy) but with no panel/trailing blocking —
    /// the head-to-head therefore isolates the cache-blocking win. Same
    /// contract as [`Lu::refactor`], including storage reuse and the
    /// reset-to-empty-on-error behaviour.
    pub fn refactor_scalar(&mut self, a: &Matrix) -> Result<()> {
        let n = self.load_square(a)?;
        let kern = simd::active_kernel();
        let scale = self.lu.max_abs().max(1.0);
        let data = self.lu.as_mut_slice();

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = data[k * n + k].abs();
            for r in (k + 1)..n {
                let v = data[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= SINGULARITY_EPS * scale {
                self.reset();
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                self.perm.swap(k, pivot_row);
                self.perm_sign = -self.perm_sign;
                for c in 0..n {
                    data.swap(k * n + c, pivot_row * n + c);
                }
            }
            // Eliminate below the pivot: one fused axpy per row.
            let (head, tail) = data.split_at_mut((k + 1) * n);
            let row_k = &head[k * n..(k + 1) * n];
            let pivot = row_k[k];
            for row_r in tail.chunks_exact_mut(n) {
                let factor = row_r[k] / pivot;
                row_r[k] = factor;
                kern.axpy(-factor, &row_k[k + 1..], &mut row_r[k + 1..]);
            }
        }
        Ok(())
    }

    /// Copies `a` into the factor storage (reallocating only on a
    /// dimension change) and resets the permutation to identity.
    fn load_square(&mut self, a: &Matrix) -> Result<usize> {
        if a.rows() != a.cols() {
            self.reset();
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if self.lu.shape() == (n, n) {
            self.lu.as_mut_slice().copy_from_slice(a.as_slice());
        } else {
            self.lu = a.clone();
        }
        self.perm.clear();
        self.perm.extend(0..n);
        self.perm_sign = 1.0;
        Ok(n)
    }

    /// Resets to the empty (0×0) state; solves fail until the next
    /// successful refactor.
    fn reset(&mut self) {
        self.lu = Matrix::zeros(0, 0);
        self.perm.clear();
        self.perm_sign = 1.0;
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for one right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b`, writing the solution into `x`. After `x` has
    /// grown to capacity `n` once, repeated solves perform no heap
    /// allocation.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation: y = P b.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience: solves `A x = b` by factoring `A` once.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

/// Solves `A x = b` with one step of iterative refinement, which buys back
/// roughly a digit of accuracy on the ill-conditioned KKT systems produced
/// by sharp smoothing parameters.
pub fn solve_refined(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let lu = Lu::factor(a)?;
    let mut x = lu.solve(b)?;
    // residual r = b - A x
    let ax = a.matvec(&x)?;
    let r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
    let dx = lu.solve(&r)?;
    for (xi, di) in x.iter_mut().zip(&dx) {
        *xi += di;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, n: usize) -> Matrix {
        Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_is_small_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 2, 5, 20, 60] {
            let a = random_matrix(&mut rng, n);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve(&a, &b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                assert!((axi - bi).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-10);
        // Pivoting case: determinant sign must account for the row swap.
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::factor(&b).unwrap().det() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 10);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(10), 1e-8));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 8);
        let b = Matrix::from_fn(8, 3, |_, _| rng.gen_range(-1.0..1.0));
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        assert!(ax.approx_eq(&b, 1e-8));
    }

    #[test]
    fn refined_solve_at_least_as_accurate() {
        let mut rng = StdRng::seed_from_u64(17);
        // Moderately ill-conditioned: scale rows very differently. A
        // 1e4 spread keeps the small row safely above the relative
        // singularity threshold (1e-12 * max_abs) for any draw; at 1e6
        // the margin is zero and the test hinges on the RNG stream.
        let mut a = random_matrix(&mut rng, 12);
        for c in 0..12 {
            a[(0, c)] *= 1e4;
            a[(11, c)] *= 1e-4;
        }
        let b: Vec<f64> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = solve_refined(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        // Relative residual per row: the 1e6-scaled rows dominate any
        // absolute measure, so normalize by the row magnitude.
        for (r, (axi, bi)) in ax.iter().zip(&b).enumerate() {
            let row_scale = crate::vector::norm_inf(a.row(r)).max(1.0);
            assert!(
                (axi - bi).abs() / row_scale < 1e-8,
                "row {r}: resid {}",
                (axi - bi).abs()
            );
        }
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn refactor_reuses_storage_and_matches_factor() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut f = Lu::empty();
        let mut x = Vec::new();
        // Repeats a dimension (buffer reuse) and changes it (regrowth).
        for n in [4, 4, 7, 3] {
            let a = random_matrix(&mut rng, n);
            f.refactor(&a).unwrap();
            let fresh = Lu::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            f.solve_into(&b, &mut x).unwrap();
            assert_eq!(x, fresh.solve(&b).unwrap());
            assert_eq!(f.det().to_bits(), fresh.det().to_bits());
        }
    }

    #[test]
    fn empty_factor_rejects_solves() {
        assert!(Lu::empty().solve(&[1.0]).is_err());
    }

    #[test]
    fn failed_refactor_resets_to_empty() {
        // Regression: a refactor that hit a singular pivot used to leave
        // the partially-eliminated factor in place with dim() == n, so a
        // later solve silently returned garbage instead of an error.
        let mut rng = StdRng::seed_from_u64(29);
        let good = random_matrix(&mut rng, 4);
        let singular = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[2.0, 4.0, 6.0, 8.0],
            &[0.5, 1.0, 2.0, 3.0],
            &[1.5, 3.0, 5.0, 7.0],
        ]);
        let mut f = Lu::empty();
        f.refactor(&good).unwrap();
        let err = f.refactor(&singular).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
        assert_eq!(f.dim(), 0, "failed refactor must reset the factor");
        let res = f.solve(&[1.0; 4]);
        assert!(
            matches!(res, Err(LinalgError::ShapeMismatch { .. })),
            "solve after failed refactor must error, got {res:?}"
        );
        // Recovery: the next successful refactor restores full service.
        f.refactor(&good).unwrap();
        assert!(f.solve(&[1.0; 4]).unwrap().iter().all(|v| v.is_finite()));
    }

    /// Asserts the blocked and scalar eliminations agree **bitwise**:
    /// factors, permutation, sign, and (on singular input) the failing
    /// pivot index and the reset-to-empty state.
    fn assert_blocked_matches_scalar_bitwise(a: &Matrix, block: usize) {
        let mut blocked = Lu::empty();
        let mut scalar = Lu::empty();
        let rb = blocked.refactor_with_block(a, block);
        let rs = scalar.refactor_scalar(a);
        match (rb, rs) {
            (Ok(()), Ok(())) => {
                let lb: Vec<u64> = blocked.lu.as_slice().iter().map(|v| v.to_bits()).collect();
                let ls: Vec<u64> = scalar.lu.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    lb,
                    ls,
                    "factor bits diverge (n={}, block={block})",
                    a.rows()
                );
                assert_eq!(blocked.perm, scalar.perm);
                assert_eq!(blocked.perm_sign.to_bits(), scalar.perm_sign.to_bits());
            }
            (
                Err(LinalgError::Singular { pivot: pb }),
                Err(LinalgError::Singular { pivot: ps }),
            ) => {
                assert_eq!(pb, ps, "singular pivot index diverges");
                assert_eq!(blocked.dim(), 0);
                assert_eq!(scalar.dim(), 0);
            }
            (rb, rs) => panic!("verdicts diverge: blocked={rb:?} scalar={rs:?}"),
        }
    }

    #[test]
    fn blocked_matches_scalar_across_block_boundaries() {
        // Non-block-multiple sizes straddling the default panel width, plus
        // tiny panels that force many U12/trailing stages.
        let mut rng = StdRng::seed_from_u64(31);
        for n in [1, 2, 5, 63, 64, 65, 127, 130] {
            let a = random_matrix(&mut rng, n);
            for block in [1, 3, 7, 64, 200] {
                assert_blocked_matches_scalar_bitwise(&a, block);
            }
        }
    }

    #[test]
    fn blocked_singular_verdict_matches_scalar() {
        // Rank deficiency planted at different pivot positions: first
        // column, inside the first panel, and inside a later panel.
        let mut rng = StdRng::seed_from_u64(37);
        for (n, dup) in [(4, 0), (9, 3), (20, 17)] {
            let mut a = random_matrix(&mut rng, n);
            // Make row `dup+1` a multiple of row `dup`: elimination dies at
            // some pivot <= dup + 1.
            for c in 0..n {
                let v = a[(dup, c)];
                a[(dup + 1, c)] = 2.0 * v;
            }
            for block in [1, 2, 5, 64] {
                assert_blocked_matches_scalar_bitwise(&a, block);
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_blocked_matches_scalar_bitwise(
            n in 1usize..34,
            block in 1usize..12,
            seed in 0u64..200,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, n);
            assert_blocked_matches_scalar_bitwise(&a, block);
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_solve_identity_permutations(n in 1usize..10, seed in 0u64..500) {
            // A = P D with random diagonal and permutation is well conditioned.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = Matrix::zeros(n, n);
            let mut cols: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                cols.swap(i, j);
            }
            for (r, &c) in cols.iter().enumerate() {
                a[(r, c)] = rng.gen_range(0.5..2.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve(&a, &b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                proptest::prop_assert!((axi - bi).abs() < 1e-9);
            }
        }
    }
}
