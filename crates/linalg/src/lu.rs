//! LU factorization with partial pivoting.
//!
//! This is the workhorse behind MFCP-AD: the implicit differentiation of
//! the matching layer (paper Eq. 15) requires solving a dense linear system
//! whose matrix is the Jacobian of the KKT stationarity map. That matrix is
//! square, generally non-symmetric, and of moderate size (`3MN + N`), so
//! partial-pivoted LU is the right tool.

use crate::{LinalgError, Matrix, Result};

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_EPS: f64 = 1e-12;

/// An LU factorization `P * A = L * U` with partial (row) pivoting.
///
/// ```
/// use mfcp_linalg::{lu::Lu, Matrix};
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = Lu::factor(&a).unwrap();
/// let x = lu.solve(&[10.0, 12.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (strict lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), for determinants.
    perm_sign: f64,
}

impl Default for Lu {
    fn default() -> Self {
        Lu::empty()
    }
}

impl Lu {
    /// An empty (0×0) factorization intended as reusable storage for
    /// [`Lu::refactor`]. Solving with it fails with a shape mismatch
    /// until a refactor succeeds.
    pub fn empty() -> Lu {
        Lu {
            lu: Matrix::zeros(0, 0),
            perm: Vec::new(),
            perm_sign: 1.0,
        }
    }

    /// Factors a square matrix. Fails on non-square or singular input.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        let mut f = Lu::empty();
        f.refactor(a)?;
        Ok(f)
    }

    /// Re-factors `a` into this factorization's storage, reallocating only
    /// when the dimension changes. After an error the factorization is
    /// unusable until the next successful refactor.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        if a.rows() != a.cols() {
            self.lu = Matrix::zeros(0, 0);
            self.perm.clear();
            self.perm_sign = 1.0;
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if self.lu.shape() == (n, n) {
            self.lu.as_mut_slice().copy_from_slice(a.as_slice());
        } else {
            self.lu = a.clone();
        }
        self.perm.clear();
        self.perm.extend(0..n);
        self.perm_sign = 1.0;
        let lu = &mut self.lu;
        let perm = &mut self.perm;
        let scale = lu.max_abs().max(1.0);
        let mut singular_pivot = None;

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= SINGULARITY_EPS * scale {
                singular_pivot = Some(k);
                break;
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                self.perm_sign = -self.perm_sign;
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
            }
            // Eliminate below the pivot.
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let u = lu[(k, c)];
                    lu[(r, c)] -= factor * u;
                }
            }
        }
        if let Some(pivot) = singular_pivot {
            // Reset to the empty state: a partially-eliminated factor
            // still reports dim() == n, and solving with it silently
            // returns garbage (or divides by a ~0 pivot).
            self.lu = Matrix::zeros(0, 0);
            self.perm.clear();
            self.perm_sign = 1.0;
            return Err(LinalgError::Singular { pivot });
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for one right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b`, writing the solution into `x`. After `x` has
    /// grown to capacity `n` once, repeated solves perform no heap
    /// allocation.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation: y = P b.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience: solves `A x = b` by factoring `A` once.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

/// Solves `A x = b` with one step of iterative refinement, which buys back
/// roughly a digit of accuracy on the ill-conditioned KKT systems produced
/// by sharp smoothing parameters.
pub fn solve_refined(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let lu = Lu::factor(a)?;
    let mut x = lu.solve(b)?;
    // residual r = b - A x
    let ax = a.matvec(&x)?;
    let r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
    let dx = lu.solve(&r)?;
    for (xi, di) in x.iter_mut().zip(&dx) {
        *xi += di;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, n: usize) -> Matrix {
        Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_is_small_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 2, 5, 20, 60] {
            let a = random_matrix(&mut rng, n);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve(&a, &b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                assert!((axi - bi).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-10);
        // Pivoting case: determinant sign must account for the row swap.
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::factor(&b).unwrap().det() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 10);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(10), 1e-8));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 8);
        let b = Matrix::from_fn(8, 3, |_, _| rng.gen_range(-1.0..1.0));
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        assert!(ax.approx_eq(&b, 1e-8));
    }

    #[test]
    fn refined_solve_at_least_as_accurate() {
        let mut rng = StdRng::seed_from_u64(17);
        // Moderately ill-conditioned: scale rows very differently. A
        // 1e4 spread keeps the small row safely above the relative
        // singularity threshold (1e-12 * max_abs) for any draw; at 1e6
        // the margin is zero and the test hinges on the RNG stream.
        let mut a = random_matrix(&mut rng, 12);
        for c in 0..12 {
            a[(0, c)] *= 1e4;
            a[(11, c)] *= 1e-4;
        }
        let b: Vec<f64> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = solve_refined(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        // Relative residual per row: the 1e6-scaled rows dominate any
        // absolute measure, so normalize by the row magnitude.
        for (r, (axi, bi)) in ax.iter().zip(&b).enumerate() {
            let row_scale = crate::vector::norm_inf(a.row(r)).max(1.0);
            assert!(
                (axi - bi).abs() / row_scale < 1e-8,
                "row {r}: resid {}",
                (axi - bi).abs()
            );
        }
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn refactor_reuses_storage_and_matches_factor() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut f = Lu::empty();
        let mut x = Vec::new();
        // Repeats a dimension (buffer reuse) and changes it (regrowth).
        for n in [4, 4, 7, 3] {
            let a = random_matrix(&mut rng, n);
            f.refactor(&a).unwrap();
            let fresh = Lu::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            f.solve_into(&b, &mut x).unwrap();
            assert_eq!(x, fresh.solve(&b).unwrap());
            assert_eq!(f.det().to_bits(), fresh.det().to_bits());
        }
    }

    #[test]
    fn empty_factor_rejects_solves() {
        assert!(Lu::empty().solve(&[1.0]).is_err());
    }

    #[test]
    fn failed_refactor_resets_to_empty() {
        // Regression: a refactor that hit a singular pivot used to leave
        // the partially-eliminated factor in place with dim() == n, so a
        // later solve silently returned garbage instead of an error.
        let mut rng = StdRng::seed_from_u64(29);
        let good = random_matrix(&mut rng, 4);
        let singular = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[2.0, 4.0, 6.0, 8.0],
            &[0.5, 1.0, 2.0, 3.0],
            &[1.5, 3.0, 5.0, 7.0],
        ]);
        let mut f = Lu::empty();
        f.refactor(&good).unwrap();
        let err = f.refactor(&singular).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
        assert_eq!(f.dim(), 0, "failed refactor must reset the factor");
        let res = f.solve(&[1.0; 4]);
        assert!(
            matches!(res, Err(LinalgError::ShapeMismatch { .. })),
            "solve after failed refactor must error, got {res:?}"
        );
        // Recovery: the next successful refactor restores full service.
        f.refactor(&good).unwrap();
        assert!(f.solve(&[1.0; 4]).unwrap().iter().all(|v| v.is_finite()));
    }

    proptest::proptest! {
        #[test]
        fn prop_solve_identity_permutations(n in 1usize..10, seed in 0u64..500) {
            // A = P D with random diagonal and permutation is well conditioned.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = Matrix::zeros(n, n);
            let mut cols: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                cols.swap(i, j);
            }
            for (r, &c) in cols.iter().enumerate() {
                a[(r, c)] = rng.gen_range(0.5..2.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve(&a, &b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                proptest::prop_assert!((axi - bi).abs() < 1e-9);
            }
        }
    }
}
