//! Runtime-dispatched SIMD kernels for the blocked factorizations.
//!
//! The blocked Cholesky/QR kernels shape their inner loops around three
//! primitives — a split-accumulator dot product, an axpy-style panel
//! update, and the four-row syrk-shaped trailing update. This module pins
//! those primitives to AVX2/FMA intrinsics on `x86_64` (selected once per
//! process via `is_x86_feature_detected!`) with a **bitwise-matching**
//! scalar fallback: the scalar arm uses `f64::mul_add`, which IEEE 754
//! defines as the exactly-rounded fused multiply-add — the same operation
//! `vfmadd231pd` performs per lane — and both arms fix the identical
//! four-lane association `(l0 + l1) + (l2 + l3) + tail`. A result
//! computed on the AVX2 arm is therefore bit-identical to the scalar arm,
//! which is what lets the differential suites compare the two dispatch
//! arms directly.
//!
//! Dispatch policy (see DESIGN.md "SIMD kernels and the sharded KKT
//! path"):
//!
//! * the `strict-determinism` feature pins the scalar arm unconditionally,
//!   so every bitwise differential suite runs on one arithmetic path;
//! * `MFCP_SIMD=scalar` in the environment disables the intrinsic arm at
//!   startup (the CI force-disabled leg);
//! * [`force_scalar`] toggles the scalar arm at runtime (benchmarks use it
//!   to measure the dispatch delta head-to-head);
//! * otherwise the AVX2 arm is used whenever the CPU reports both `avx2`
//!   and `fma`.
//!
//! Every blocked-kernel invocation records which arm it resolved to on the
//! `linalg.simd.avx2` / `linalg.simd.scalar` observability counters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Which arithmetic arm the dispatcher resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdKernel {
    /// `f64::mul_add` scalar loops (bitwise-identical to the AVX2 arm).
    Scalar,
    /// AVX2/FMA intrinsics (`x86_64` only).
    Avx2,
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Detection result, computed once per process: the environment override
/// is read a single time so dispatch cannot change mid-run (within-process
/// determinism of repeated factorizations does not depend on when the
/// caller first touched this module).
fn detected() -> SimdKernel {
    static DETECTED: OnceLock<SimdKernel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if std::env::var_os("MFCP_SIMD").is_some_and(|v| v == "scalar") {
            return SimdKernel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdKernel::Avx2;
            }
        }
        SimdKernel::Scalar
    })
}

/// Resolves the active kernel under the current dispatch policy.
pub fn active_kernel() -> SimdKernel {
    if cfg!(feature = "strict-determinism") || FORCE_SCALAR.load(Ordering::Relaxed) {
        SimdKernel::Scalar
    } else {
        detected()
    }
}

/// Forces the scalar arm at runtime (`true`) or restores auto-detection
/// (`false`). Benchmarks use this to time both arms in one process; the
/// two arms produce bit-identical results, so flipping it mid-run cannot
/// change any computed value — only throughput.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Records one kernel dispatch on the observability counters
/// (`linalg.simd.avx2` / `linalg.simd.scalar`). Called once per blocked
/// refactor, not per primitive, so the counters track factorization volume
/// per arm.
pub fn record_dispatch(kernel: SimdKernel) {
    match kernel {
        SimdKernel::Avx2 => mfcp_obs::counter("linalg.simd.avx2").inc(),
        SimdKernel::Scalar => mfcp_obs::counter("linalg.simd.scalar").inc(),
    }
}

impl SimdKernel {
    /// Split-accumulator dot product: four independent FMA lanes combined
    /// as `(l0 + l1) + (l2 + l3)`, then a sequential FMA tail. Both arms
    /// produce bit-identical results.
    #[inline]
    #[allow(unsafe_code)]
    pub fn dot(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            SimdKernel::Scalar => dot_scalar(a, b),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Avx2` is only ever produced by `detected()` after
            // `is_x86_feature_detected!` confirmed avx2+fma support.
            SimdKernel::Avx2 => unsafe { dot_avx2(a, b) },
            #[cfg(not(target_arch = "x86_64"))]
            SimdKernel::Avx2 => dot_scalar(a, b),
        }
    }

    /// Panel update `y[i] ← y[i] + alpha·x[i]`, one FMA per element.
    /// Element-wise independent, so both arms are trivially bit-identical.
    #[inline]
    #[allow(unsafe_code)]
    pub fn axpy(self, alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        match self {
            SimdKernel::Scalar => axpy_scalar(alpha, x, y),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: see `dot`.
            SimdKernel::Avx2 => unsafe { axpy_avx2(alpha, x, y) },
            #[cfg(not(target_arch = "x86_64"))]
            SimdKernel::Avx2 => axpy_scalar(alpha, x, y),
        }
    }

    /// GEMM-shaped 4×8 register tile: for step `k = 0..kl` (ascending),
    /// `o_r[j] ← fma(−lpack[4k+r], upanel[k·ustride + j], o_r[j])` for
    /// the four output rows `r` and eight columns `j`. The AVX2 arm keeps
    /// all eight accumulators in registers across the `k` loop (the
    /// blocked LU trailing update's hot kernel); per element both arms
    /// run the identical ascending-`k` fused chain, so they are
    /// bit-identical.
    #[inline]
    #[allow(unsafe_code)]
    // Four separate `&mut` output rows: the rows come from disjoint
    // `split_at_mut` regions of one matrix, so they cannot be a single
    // slice-of-slices without allocation in the hot loop.
    #[allow(clippy::too_many_arguments)]
    pub fn fnma_tile8(
        self,
        kl: usize,
        lpack: &[f64],
        upanel: &[f64],
        ustride: usize,
        o0: &mut [f64],
        o1: &mut [f64],
        o2: &mut [f64],
        o3: &mut [f64],
    ) {
        assert!(lpack.len() >= 4 * kl);
        assert!(kl == 0 || upanel.len() >= (kl - 1) * ustride + 8);
        assert!(o0.len() >= 8 && o1.len() >= 8 && o2.len() >= 8 && o3.len() >= 8);
        match self {
            SimdKernel::Scalar => fnma_tile8_scalar(kl, lpack, upanel, ustride, o0, o1, o2, o3),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: see `dot`; slice bounds asserted above.
            SimdKernel::Avx2 => unsafe {
                fnma_tile8_avx2(kl, lpack, upanel, ustride, o0, o1, o2, o3)
            },
            #[cfg(not(target_arch = "x86_64"))]
            SimdKernel::Avx2 => fnma_tile8_scalar(kl, lpack, upanel, ustride, o0, o1, o2, o3),
        }
    }

    /// Four-row trailing update `out_r[i] ← out_r[i] − a_r·b[i]` for four
    /// output rows sharing one multiplier row `b` (the syrk-shaped kernel
    /// of the blocked Cholesky). All four outputs must match `b` in
    /// length. `fnma(a,x,y) ≡ fma(−a,x,y)` exactly (negation is a sign
    /// flip), so both arms are bit-identical.
    #[inline]
    #[allow(unsafe_code)]
    pub fn fnma4(
        self,
        b: &[f64],
        a: [f64; 4],
        o0: &mut [f64],
        o1: &mut [f64],
        o2: &mut [f64],
        o3: &mut [f64],
    ) {
        debug_assert!(
            o0.len() == b.len()
                && o1.len() == b.len()
                && o2.len() == b.len()
                && o3.len() == b.len()
        );
        match self {
            SimdKernel::Scalar => fnma4_scalar(b, a, o0, o1, o2, o3),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: see `dot`.
            SimdKernel::Avx2 => unsafe { fnma4_avx2(b, a, o0, o1, o2, o3) },
            #[cfg(not(target_arch = "x86_64"))]
            SimdKernel::Avx2 => fnma4_scalar(b, a, o0, o1, o2, o3),
        }
    }
}

fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        lanes[0] = xa[0].mul_add(xb[0], lanes[0]);
        lanes[1] = xa[1].mul_add(xb[1], lanes[1]);
        lanes[2] = xa[2].mul_add(xb[2], lanes[2]);
        lanes[3] = xa[3].mul_add(xb[3], lanes[3]);
    }
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        s = xa.mul_add(*xb, s);
    }
    s
}

fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

#[allow(clippy::too_many_arguments)]
fn fnma_tile8_scalar(
    kl: usize,
    lpack: &[f64],
    upanel: &[f64],
    ustride: usize,
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
) {
    let mut acc0: [f64; 8] = o0[..8].try_into().unwrap();
    let mut acc1: [f64; 8] = o1[..8].try_into().unwrap();
    let mut acc2: [f64; 8] = o2[..8].try_into().unwrap();
    let mut acc3: [f64; 8] = o3[..8].try_into().unwrap();
    for k in 0..kl {
        let u = &upanel[k * ustride..k * ustride + 8];
        let l = &lpack[4 * k..4 * k + 4];
        for t in 0..8 {
            acc0[t] = (-l[0]).mul_add(u[t], acc0[t]);
            acc1[t] = (-l[1]).mul_add(u[t], acc1[t]);
            acc2[t] = (-l[2]).mul_add(u[t], acc2[t]);
            acc3[t] = (-l[3]).mul_add(u[t], acc3[t]);
        }
    }
    o0[..8].copy_from_slice(&acc0);
    o1[..8].copy_from_slice(&acc1);
    o2[..8].copy_from_slice(&acc2);
    o3[..8].copy_from_slice(&acc3);
}

fn fnma4_scalar(
    b: &[f64],
    a: [f64; 4],
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
) {
    let [a0, a1, a2, a3] = a;
    for (i, &bv) in b.iter().enumerate() {
        o0[i] = (-a0).mul_add(bv, o0[i]);
        o1[i] = (-a1).mul_add(bv, o1[i]);
        o2[i] = (-a2).mul_add(bv, o2[i]);
        o3[i] = (-a3).mul_add(bv, o3[i]);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified avx2+fma CPU support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            acc = _mm256_fmadd_pd(va, vb, acc);
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        while i < n {
            s = a[i].mul_add(b[i], s);
            i += 1;
        }
        s
    }

    /// # Safety
    /// Caller must have verified avx2+fma CPU support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let va = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i + 4 <= n {
            let vx = _mm256_loadu_pd(x.as_ptr().add(i));
            let vy = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_fmadd_pd(va, vx, vy));
            i += 4;
        }
        while i < n {
            y[i] = alpha.mul_add(x[i], y[i]);
            i += 1;
        }
    }

    /// # Safety
    /// Caller must have verified avx2+fma CPU support; slice bounds
    /// (`lpack ≥ 4·kl`, `upanel ≥ (kl−1)·ustride + 8`, outputs ≥ 8) are
    /// asserted by the safe caller.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn fnma_tile8_avx2(
        kl: usize,
        lpack: &[f64],
        upanel: &[f64],
        ustride: usize,
        o0: &mut [f64],
        o1: &mut [f64],
        o2: &mut [f64],
        o3: &mut [f64],
    ) {
        let mut a00 = _mm256_loadu_pd(o0.as_ptr());
        let mut a01 = _mm256_loadu_pd(o0.as_ptr().add(4));
        let mut a10 = _mm256_loadu_pd(o1.as_ptr());
        let mut a11 = _mm256_loadu_pd(o1.as_ptr().add(4));
        let mut a20 = _mm256_loadu_pd(o2.as_ptr());
        let mut a21 = _mm256_loadu_pd(o2.as_ptr().add(4));
        let mut a30 = _mm256_loadu_pd(o3.as_ptr());
        let mut a31 = _mm256_loadu_pd(o3.as_ptr().add(4));
        for k in 0..kl {
            let up = upanel.as_ptr().add(k * ustride);
            let u0 = _mm256_loadu_pd(up);
            let u1 = _mm256_loadu_pd(up.add(4));
            let lp = lpack.as_ptr().add(4 * k);
            let l0 = _mm256_set1_pd(*lp);
            a00 = _mm256_fnmadd_pd(l0, u0, a00);
            a01 = _mm256_fnmadd_pd(l0, u1, a01);
            let l1 = _mm256_set1_pd(*lp.add(1));
            a10 = _mm256_fnmadd_pd(l1, u0, a10);
            a11 = _mm256_fnmadd_pd(l1, u1, a11);
            let l2 = _mm256_set1_pd(*lp.add(2));
            a20 = _mm256_fnmadd_pd(l2, u0, a20);
            a21 = _mm256_fnmadd_pd(l2, u1, a21);
            let l3 = _mm256_set1_pd(*lp.add(3));
            a30 = _mm256_fnmadd_pd(l3, u0, a30);
            a31 = _mm256_fnmadd_pd(l3, u1, a31);
        }
        _mm256_storeu_pd(o0.as_mut_ptr(), a00);
        _mm256_storeu_pd(o0.as_mut_ptr().add(4), a01);
        _mm256_storeu_pd(o1.as_mut_ptr(), a10);
        _mm256_storeu_pd(o1.as_mut_ptr().add(4), a11);
        _mm256_storeu_pd(o2.as_mut_ptr(), a20);
        _mm256_storeu_pd(o2.as_mut_ptr().add(4), a21);
        _mm256_storeu_pd(o3.as_mut_ptr(), a30);
        _mm256_storeu_pd(o3.as_mut_ptr().add(4), a31);
    }

    /// # Safety
    /// Caller must have verified avx2+fma CPU support; all four output
    /// slices must be at least `b.len()` long (checked by the safe caller).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::missing_safety_doc)]
    pub(super) unsafe fn fnma4_avx2(
        b: &[f64],
        a: [f64; 4],
        o0: &mut [f64],
        o1: &mut [f64],
        o2: &mut [f64],
        o3: &mut [f64],
    ) {
        let n = b.len();
        let va0 = _mm256_set1_pd(a[0]);
        let va1 = _mm256_set1_pd(a[1]);
        let va2 = _mm256_set1_pd(a[2]);
        let va3 = _mm256_set1_pd(a[3]);
        let mut i = 0;
        while i + 4 <= n {
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            let v0 = _mm256_loadu_pd(o0.as_ptr().add(i));
            _mm256_storeu_pd(o0.as_mut_ptr().add(i), _mm256_fnmadd_pd(va0, vb, v0));
            let v1 = _mm256_loadu_pd(o1.as_ptr().add(i));
            _mm256_storeu_pd(o1.as_mut_ptr().add(i), _mm256_fnmadd_pd(va1, vb, v1));
            let v2 = _mm256_loadu_pd(o2.as_ptr().add(i));
            _mm256_storeu_pd(o2.as_mut_ptr().add(i), _mm256_fnmadd_pd(va2, vb, v2));
            let v3 = _mm256_loadu_pd(o3.as_ptr().add(i));
            _mm256_storeu_pd(o3.as_mut_ptr().add(i), _mm256_fnmadd_pd(va3, vb, v3));
            i += 4;
        }
        while i < n {
            let bv = b[i];
            o0[i] = (-a[0]).mul_add(bv, o0[i]);
            o1[i] = (-a[1]).mul_add(bv, o1[i]);
            o2[i] = (-a[2]).mul_add(bv, o2[i]);
            o3[i] = (-a[3]).mul_add(bv, o3[i]);
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{axpy_avx2, dot_avx2, fnma4_avx2, fnma_tile8_avx2};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vecs(rng: &mut StdRng, n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        (a, b)
    }

    /// On a machine where the AVX2 arm is available, every primitive must
    /// match the scalar arm bit for bit — that equality is what the
    /// dispatch policy's determinism story rests on.
    #[test]
    fn arms_are_bitwise_identical() {
        if detected() != SimdKernel::Avx2 {
            return; // nothing to compare on this host
        }
        let mut rng = StdRng::seed_from_u64(42);
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 100, 257] {
            let (a, b) = vecs(&mut rng, n);
            let ds = SimdKernel::Scalar.dot(&a, &b);
            let dv = SimdKernel::Avx2.dot(&a, &b);
            assert_eq!(ds.to_bits(), dv.to_bits(), "dot n={n}");

            let alpha = rng.gen_range(-3.0..3.0);
            let mut ys = b.clone();
            let mut yv = b.clone();
            SimdKernel::Scalar.axpy(alpha, &a, &mut ys);
            SimdKernel::Avx2.axpy(alpha, &a, &mut yv);
            assert_eq!(ys, yv, "axpy n={n}");

            let coeffs = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
            let mut rows_s: Vec<Vec<f64>> = (0..4).map(|_| vecs(&mut rng, n).0).collect();
            let mut rows_v = rows_s.clone();
            {
                let (s0, rest) = rows_s.split_at_mut(1);
                let (s1, rest) = rest.split_at_mut(1);
                let (s2, s3) = rest.split_at_mut(1);
                SimdKernel::Scalar
                    .fnma4(&a, coeffs, &mut s0[0], &mut s1[0], &mut s2[0], &mut s3[0]);
            }
            {
                let (v0, rest) = rows_v.split_at_mut(1);
                let (v1, rest) = rest.split_at_mut(1);
                let (v2, v3) = rest.split_at_mut(1);
                SimdKernel::Avx2.fnma4(&a, coeffs, &mut v0[0], &mut v1[0], &mut v2[0], &mut v3[0]);
            }
            assert_eq!(rows_s, rows_v, "fnma4 n={n}");
        }
    }

    #[test]
    fn force_scalar_pins_dispatch() {
        force_scalar(true);
        assert_eq!(active_kernel(), SimdKernel::Scalar);
        force_scalar(false);
        // Under strict-determinism the scalar arm is pinned regardless.
        if cfg!(feature = "strict-determinism") {
            assert_eq!(active_kernel(), SimdKernel::Scalar);
        }
    }

    #[test]
    fn dot_matches_plain_sum_tolerance() {
        let mut rng = StdRng::seed_from_u64(7);
        let (a, b) = vecs(&mut rng, 103);
        let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = active_kernel().dot(&a, &b);
        assert!((got - reference).abs() < 1e-10 * (1.0 + reference.abs()));
    }
}
