//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Used for the Gauss–Newton style preconditioning experiments and for
//! covariance sampling in the workload generator (correlated task features).

use crate::{LinalgError, Matrix, Result};

/// A lower-triangular Cholesky factor `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility.
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Log-determinant of `A` (sum of `2 log L_ii`), handy for Gaussian
    /// likelihoods.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_spd(rng: &mut StdRng, n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64; // guarantee positive definiteness
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_spd(&mut rng, 8);
        let ch = Cholesky::factor(&a).unwrap();
        let llt = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-9));
    }

    #[test]
    fn solve_matches_lu() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_spd(&mut rng, 10);
        let b: Vec<f64> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x_ch = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_spd(&mut rng, 6);
        let ch = Cholesky::factor(&a).unwrap();
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((ch.log_det() - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b).unwrap(), b.to_vec());
    }
}
