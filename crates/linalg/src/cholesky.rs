//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Used for the Gauss–Newton style preconditioning experiments and for
//! covariance sampling in the workload generator (correlated task features).

use crate::{LinalgError, Matrix, Result};

/// A lower-triangular Cholesky factor `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Default for Cholesky {
    fn default() -> Self {
        Cholesky::empty()
    }
}

impl Cholesky {
    /// An empty (0×0) factorization intended as reusable storage for
    /// [`Cholesky::refactor`]. Solving with it fails with a shape
    /// mismatch until a refactor succeeds.
    pub fn empty() -> Cholesky {
        Cholesky {
            l: Matrix::zeros(0, 0),
        }
    }

    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility.
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        let mut f = Cholesky::empty();
        f.refactor(a)?;
        Ok(f)
    }

    /// Re-factors `a` into this factorization's storage, reallocating only
    /// when the dimension changes. After an error the factorization is
    /// unusable until the next successful refactor.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if self.l.shape() == (n, n) {
            self.l.as_mut_slice().fill(0.0);
        } else {
            self.l = Matrix::zeros(n, n);
        }
        let l = &mut self.l;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(())
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut y = b.to_vec();
        self.solve_in_place(&mut y)?;
        Ok(y)
    }

    /// Solves `A x = b` in place, overwriting `b` with the solution.
    /// Performs no heap allocation.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * b[j];
            }
            b[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * b[j];
            }
            b[i] = acc / self.l[(i, i)];
        }
        Ok(())
    }

    /// Log-determinant of `A` (sum of `2 log L_ii`), handy for Gaussian
    /// likelihoods.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_spd(rng: &mut StdRng, n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64; // guarantee positive definiteness
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_spd(&mut rng, 8);
        let ch = Cholesky::factor(&a).unwrap();
        let llt = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-9));
    }

    #[test]
    fn solve_matches_lu() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_spd(&mut rng, 10);
        let b: Vec<f64> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x_ch = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_spd(&mut rng, 6);
        let ch = Cholesky::factor(&a).unwrap();
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((ch.log_det() - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn refactor_reuses_storage_and_matches_factor() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut f = Cholesky::empty();
        // Repeats a dimension (buffer reuse, must clear stale entries)
        // and changes it (regrowth).
        for n in [5, 5, 8, 3] {
            let a = random_spd(&mut rng, n);
            f.refactor(&a).unwrap();
            let fresh = Cholesky::factor(&a).unwrap();
            assert_eq!(f.l().as_slice(), fresh.l().as_slice());
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut x = b.clone();
            f.solve_in_place(&mut x).unwrap();
            assert_eq!(x, fresh.solve(&b).unwrap());
        }
    }
}
