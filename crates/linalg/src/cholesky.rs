//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Used for the Gauss–Newton style preconditioning experiments, for
//! covariance sampling in the workload generator (correlated task features),
//! and as the Schur-complement solver inside the structured KKT gradient
//! path. The factorization kernel is cache-blocked and right-looking: the
//! panel solve and trailing update are fused into one pass per row whose
//! inner loops are contiguous block-length dot products, so the compiler
//! can vectorize them (same tiling idiom as `matmul_with` in `ops`).

use crate::{simd, LinalgError, Matrix, Result};
use mfcp_parallel::{par_chunks_mut, ParallelConfig};

/// Default panel width of the blocked kernel. 64 columns of f64 is 512
/// bytes per row stripe — the same tile footprint `MatmulOptions` uses.
pub const DEFAULT_BLOCK: usize = 64;

/// Dot product with four independent accumulators, used by the *solve*
/// path (`solve_in_place` forward substitution).
///
/// A single-accumulator `f64` reduction cannot be vectorized (floating-point
/// addition is not associative, and we forbid fast-math); fixing the
/// association into four lanes lets LLVM keep the loop in SIMD registers
/// while staying bit-reproducible run to run. The *factorization* kernel
/// routes its dots through [`crate::simd`] instead, which adds FMA on top
/// of the same four-lane association.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        acc[0] += xa[0] * xb[0];
        acc[1] += xa[1] * xb[1];
        acc[2] += xa[2] * xb[2];
        acc[3] += xa[3] * xb[3];
    }
    let mut tail = 0.0;
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        tail += xa * xb;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Cache-blocked right-looking factorization of the lower triangle held in
/// `data` (row-major, `n × n`). Three stages per `bw`-wide panel:
///
/// 1. factor the diagonal block with contiguous panel-length dots;
/// 2. panel-solve every row below against the diagonal block;
/// 3. pack the finished panel transposed into `scratch`, then apply the
///    trailing syrk-like update as matmul-style contiguous axpys — the
///    innermost loop writes a streaming output row with no reduction, the
///    same shape `matmul_with` uses.
///
/// All three stages run on the [`crate::simd`] primitives (runtime
/// AVX2/FMA dispatch with a bitwise-matching `mul_add` scalar arm), so the
/// factor does not depend on which arm executed it — only throughput does.
fn blocked_kernel(data: &mut [f64], scratch: &mut Vec<f64>, n: usize, block: usize) -> Result<()> {
    if scratch.len() < block * n {
        scratch.resize(block * n, 0.0);
    }
    let kern = simd::active_kernel();
    simd::record_dispatch(kern);
    let mut jb = 0;
    while jb < n {
        let je = (jb + block).min(n);
        let bw = je - jb;
        // Stage 1: diagonal block. Entries in columns jb..je already carry
        // the trailing updates from every previous panel, so only
        // intra-block contributions remain.
        for i in jb..je {
            let (head, tail) = data.split_at_mut(i * n);
            let row_i = &mut tail[..n];
            for j in jb..i {
                let row_j = &head[j * n..j * n + n];
                let s = row_i[j] - kern.dot(&row_i[jb..j], &row_j[jb..j]);
                row_i[j] = s / row_j[j];
            }
            let d = row_i[i] - kern.dot(&row_i[jb..i], &row_i[jb..i]);
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: i });
            }
            row_i[i] = d.sqrt();
        }
        // Stage 2: panel solve for every row below the block.
        for r in je..n {
            let (head, tail) = data.split_at_mut(r * n);
            let row_r = &mut tail[..n];
            for j in jb..je {
                let row_j = &head[j * n..j * n + n];
                let s = row_r[j] - kern.dot(&row_r[jb..j], &row_j[jb..j]);
                row_r[j] = s / row_j[j];
            }
        }
        // Stage 3: trailing update `L22 -= P Pᵀ` with the panel packed
        // transposed (`t[kk][c] = L[je+c][jb+kk]`) so both the multiplier
        // row and the output row stream contiguously. Target rows are
        // register-blocked four at a time: one pass over `t` feeds four
        // output rows, quartering the packed-panel traffic. Per output
        // element the accumulation order over `kk` is identical in the
        // quad and remainder paths, so the result does not depend on
        // where the quad boundary falls.
        let tcols = n - je;
        if tcols > 0 {
            let t = &mut scratch[..bw * tcols];
            for (c, row_c) in data[je * n..].chunks(n).enumerate() {
                for (kk, tk) in row_c[jb..je].iter().enumerate() {
                    t[kk * tcols + c] = *tk;
                }
            }
            let mut r = je;
            while r + 4 <= n {
                let chunk = &mut data[r * n..(r + 4) * n];
                let (r0w, rest) = chunk.split_at_mut(n);
                let (r1w, rest) = rest.split_at_mut(n);
                let (r2w, r3w) = rest.split_at_mut(n);
                let (p0, o0) = split_panel(r0w, jb, je);
                let (p1, o1) = split_panel(r1w, jb, je);
                let (p2, o2) = split_panel(r2w, jb, je);
                let (p3, o3) = split_panel(r3w, jb, je);
                // Columns je..r are common to all four rows; the last
                // four columns form the ragged triangle tail.
                let common = r - je;
                let oc0 = &mut o0[..common + 1];
                let oc1 = &mut o1[..common + 2];
                let oc2 = &mut o2[..common + 3];
                let oc3 = &mut o3[..common + 4];
                for kk in 0..bw {
                    let (a0, a1, a2, a3) = (p0[kk], p1[kk], p2[kk], p3[kk]);
                    let brow = &t[kk * tcols..kk * tcols + common + 4];
                    let (bc, bt) = brow.split_at(common);
                    kern.fnma4(
                        bc,
                        [a0, a1, a2, a3],
                        &mut oc0[..common],
                        &mut oc1[..common],
                        &mut oc2[..common],
                        &mut oc3[..common],
                    );
                    // Ragged triangle tail: row je+i additionally owns
                    // columns r..=r+i (t indices common..=common+i). Same
                    // fused arithmetic as the common path.
                    oc0[common] = (-a0).mul_add(bt[0], oc0[common]);
                    oc1[common] = (-a1).mul_add(bt[0], oc1[common]);
                    oc1[common + 1] = (-a1).mul_add(bt[1], oc1[common + 1]);
                    oc2[common] = (-a2).mul_add(bt[0], oc2[common]);
                    oc2[common + 1] = (-a2).mul_add(bt[1], oc2[common + 1]);
                    oc2[common + 2] = (-a2).mul_add(bt[2], oc2[common + 2]);
                    oc3[common] = (-a3).mul_add(bt[0], oc3[common]);
                    oc3[common + 1] = (-a3).mul_add(bt[1], oc3[common + 1]);
                    oc3[common + 2] = (-a3).mul_add(bt[2], oc3[common + 2]);
                    oc3[common + 3] = (-a3).mul_add(bt[3], oc3[common + 3]);
                }
                r += 4;
            }
            while r < n {
                let row_r = &mut data[r * n..(r + 1) * n];
                let (left, right) = row_r.split_at_mut(je);
                let panel_r = &left[jb..je];
                let len = r - je + 1;
                let out = &mut right[..len];
                for (kk, &a) in panel_r.iter().enumerate() {
                    let b_row = &t[kk * tcols..kk * tcols + len];
                    kern.axpy(-a, b_row, out);
                }
                r += 1;
            }
        }
        jb = je;
    }
    Ok(())
}

/// Splits a factor row into its read-only panel (columns `jb..je`) and the
/// mutable trailing section (columns `je..`).
fn split_panel(row: &mut [f64], jb: usize, je: usize) -> (&[f64], &mut [f64]) {
    let (left, right) = row.split_at_mut(je);
    (&left[jb..je], right)
}

/// A lower-triangular Cholesky factor `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Packed transpose of the current panel, `bw × (n - je)`: the trailing
    /// update streams it row-contiguously (matmul-style axpy, no per-element
    /// reductions). Sized once per shape, reused across refactors.
    scratch: Vec<f64>,
}

impl Default for Cholesky {
    fn default() -> Self {
        Cholesky::empty()
    }
}

impl Cholesky {
    /// An empty (0×0) factorization intended as reusable storage for
    /// [`Cholesky::refactor`]. Solving with it fails with a shape
    /// mismatch until a refactor succeeds.
    pub fn empty() -> Cholesky {
        Cholesky {
            l: Matrix::zeros(0, 0),
            scratch: Vec::new(),
        }
    }

    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility.
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        let mut f = Cholesky::empty();
        f.refactor(a)?;
        Ok(f)
    }

    /// Re-factors `a` into this factorization's storage, reallocating only
    /// when the dimension changes.
    ///
    /// On any error the factorization is reset to the empty (0×0) state, so
    /// subsequent solves fail with a shape mismatch instead of silently
    /// dividing by a stale or zero pivot.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        self.refactor_with_block(a, DEFAULT_BLOCK)
    }

    /// [`Cholesky::refactor`] with an explicit panel width (benchmarks and
    /// block-boundary tests; `refactor` uses [`DEFAULT_BLOCK`]).
    pub fn refactor_with_block(&mut self, a: &Matrix, block: usize) -> Result<()> {
        let n = self.load_lower_triangle(a)?;
        let block = block.max(1);
        if let Err(e) = blocked_kernel(self.l.as_mut_slice(), &mut self.scratch, n, block) {
            self.l = Matrix::zeros(0, 0);
            return Err(e);
        }
        Ok(())
    }

    /// The scalar i-j-k reference kernel (pre-blocking), kept for the
    /// `chol_blocked` perfgate head-to-head and differential tests.
    ///
    /// Same contract as [`Cholesky::refactor`], including the
    /// reset-to-empty-on-error behaviour.
    pub fn refactor_scalar(&mut self, a: &Matrix) -> Result<()> {
        let n = self.load_lower_triangle(a)?;
        let l = &mut self.l;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = l[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        self.l = Matrix::zeros(0, 0);
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(())
    }

    /// Copies the lower triangle of `a` into the factor storage (zeroing
    /// the strict upper triangle), reallocating only on a dimension change.
    fn load_lower_triangle(&mut self, a: &Matrix) -> Result<usize> {
        if a.rows() != a.cols() {
            self.l = Matrix::zeros(0, 0);
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if self.l.shape() != (n, n) {
            self.l = Matrix::zeros(n, n);
        }
        for i in 0..n {
            let src = a.row(i);
            let dst = self.l.row_mut(i);
            dst[..=i].copy_from_slice(&src[..=i]);
            dst[i + 1..].fill(0.0);
        }
        Ok(n)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut y = b.to_vec();
        self.solve_in_place(&mut y)?;
        Ok(y)
    }

    /// Solves `A x = b` in place, overwriting `b` with the solution.
    /// Performs no heap allocation.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        for i in 0..n {
            let row_i = self.l.row(i);
            let acc = b[i] - dot(&row_i[..i], &b[..i]);
            b[i] = acc / row_i[i];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * b[j];
            }
            b[i] = acc / self.l[(i, i)];
        }
        Ok(())
    }

    /// Log-determinant of `A` (sum of `2 log L_ii`), handy for Gaussian
    /// likelihoods.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

/// A batch of Cholesky factorizations sharing one blocking plan and
/// reusing per-factor storage across calls.
///
/// The zeroth-order estimator re-solves `S` perturbed instances whose
/// matrices all have the same shape; factoring them through one batch
/// amortizes the panel-width setup and keeps every factor's storage warm
/// between rounds (no reallocation once shapes stabilize). Factors run in
/// parallel via `mfcp_parallel::par_chunks_mut`; each factorization is
/// internally sequential, so results are bitwise independent of the
/// thread count.
#[derive(Debug, Default)]
pub struct CholeskyBatch {
    factors: Vec<Cholesky>,
    block: usize,
}

impl CholeskyBatch {
    /// An empty batch using [`DEFAULT_BLOCK`].
    pub fn new() -> CholeskyBatch {
        CholeskyBatch::with_block(DEFAULT_BLOCK)
    }

    /// An empty batch with an explicit panel width shared by every factor.
    pub fn with_block(block: usize) -> CholeskyBatch {
        CholeskyBatch {
            factors: Vec::new(),
            block: block.max(1),
        }
    }

    /// Re-factors every matrix in `mats`, reusing each slot's storage from
    /// the previous call. Returns one result per input, in input order; a
    /// slot whose refactor failed is reset to the empty state (its solves
    /// error until the next successful refactor).
    pub fn refactor_all(&mut self, mats: &[Matrix], parallel: &ParallelConfig) -> Vec<Result<()>> {
        self.factors.truncate(mats.len());
        self.factors.resize_with(mats.len(), Cholesky::empty);
        let block = self.block;
        struct Slot<'a> {
            factor: &'a mut Cholesky,
            a: &'a Matrix,
            out: Result<()>,
        }
        let mut slots: Vec<Slot> = self
            .factors
            .iter_mut()
            .zip(mats)
            .map(|(factor, a)| Slot {
                factor,
                a,
                out: Ok(()),
            })
            .collect();
        par_chunks_mut(parallel, &mut slots, 1, |_, chunk| {
            let slot = &mut chunk[0];
            slot.out = slot.factor.refactor_with_block(slot.a, block);
        });
        slots.into_iter().map(|s| s.out).collect()
    }

    /// The factors from the last [`CholeskyBatch::refactor_all`] call.
    pub fn factors(&self) -> &[Cholesky] {
        &self.factors
    }

    /// Number of factors currently held.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether the batch holds no factors.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_spd(rng: &mut StdRng, n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64; // guarantee positive definiteness
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_spd(&mut rng, 8);
        let ch = Cholesky::factor(&a).unwrap();
        let llt = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-9));
    }

    #[test]
    fn solve_matches_lu() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_spd(&mut rng, 10);
        let b: Vec<f64> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x_ch = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_spd(&mut rng, 6);
        let ch = Cholesky::factor(&a).unwrap();
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        assert!((ch.log_det() - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn refactor_reuses_storage_and_matches_factor() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut f = Cholesky::empty();
        // Repeats a dimension (buffer reuse, must clear stale entries)
        // and changes it (regrowth).
        for n in [5, 5, 8, 3] {
            let a = random_spd(&mut rng, n);
            f.refactor(&a).unwrap();
            let fresh = Cholesky::factor(&a).unwrap();
            assert_eq!(f.l().as_slice(), fresh.l().as_slice());
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut x = b.clone();
            f.solve_in_place(&mut x).unwrap();
            assert_eq!(x, fresh.solve(&b).unwrap());
        }
    }

    #[test]
    fn blocked_matches_scalar_across_block_boundaries() {
        // Sizes straddling the panel width: n=1, block-1, block, block+1,
        // a non-multiple, and a multi-block odd size.
        let mut rng = StdRng::seed_from_u64(8);
        for block in [1usize, 2, 4, 8] {
            for n in [
                1usize,
                block.saturating_sub(1).max(1),
                block,
                block + 1,
                3 * block + 2,
            ] {
                let a = random_spd(&mut rng, n);
                let mut blocked = Cholesky::empty();
                blocked.refactor_with_block(&a, block).unwrap();
                let mut scalar = Cholesky::empty();
                scalar.refactor_scalar(&a).unwrap();
                assert!(
                    blocked.l().max_abs_diff(scalar.l()).unwrap() < 1e-10 * n as f64,
                    "block={block} n={n}"
                );
            }
        }
    }

    #[test]
    fn blocked_default_reconstructs_large() {
        // Larger than one default panel, not a multiple of it.
        let mut rng = StdRng::seed_from_u64(9);
        let n = DEFAULT_BLOCK + 37;
        let a = random_spd(&mut rng, n);
        let ch = Cholesky::factor(&a).unwrap();
        let llt = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-7));
    }

    #[test]
    fn failed_refactor_resets_to_empty() {
        // Regression: a failed refactor used to leave a partially-written
        // factor with dim() == n, so solve divided by zero pivots and
        // silently returned inf/NaN.
        let mut rng = StdRng::seed_from_u64(10);
        let good = random_spd(&mut rng, 6);
        let indefinite = Matrix::from_fn(6, 6, |i, j| if i == j { -1.0 } else { 0.5 });
        for scalar in [false, true] {
            let mut f = Cholesky::empty();
            f.refactor(&good).unwrap();
            let err = if scalar {
                f.refactor_scalar(&indefinite).unwrap_err()
            } else {
                f.refactor(&indefinite).unwrap_err()
            };
            assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
            assert_eq!(f.dim(), 0, "failed refactor must reset the factor");
            let b = vec![1.0; 6];
            let res = f.solve(&b);
            assert!(
                matches!(res, Err(LinalgError::ShapeMismatch { .. })),
                "solve after failed refactor must error, got {res:?}"
            );
            // Recovery: the next successful refactor restores full service.
            f.refactor(&good).unwrap();
            let x = f.solve(&b).unwrap();
            assert!(x.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn batch_matches_individual_factors() {
        let mut rng = StdRng::seed_from_u64(11);
        let mats: Vec<Matrix> = [3usize, 17, 9, 1]
            .iter()
            .map(|&n| random_spd(&mut rng, n))
            .collect();
        let mut batch = CholeskyBatch::new();
        let results = batch.refactor_all(&mats, &ParallelConfig::with_threads(4));
        assert_eq!(results.len(), mats.len());
        for ((res, factor), a) in results.iter().zip(batch.factors()).zip(&mats) {
            res.as_ref().unwrap();
            let fresh = Cholesky::factor(a).unwrap();
            assert_eq!(factor.l().as_slice(), fresh.l().as_slice());
        }
        // A second round with same shapes reuses storage and stays correct.
        let mats2: Vec<Matrix> = [3usize, 17, 9, 1]
            .iter()
            .map(|&n| random_spd(&mut rng, n))
            .collect();
        for (res, a) in batch
            .refactor_all(&mats2, &ParallelConfig::sequential())
            .iter()
            .zip(&mats2)
        {
            res.as_ref().unwrap();
            let _ = a;
        }
    }

    #[test]
    fn batch_isolates_per_item_failures() {
        let mut rng = StdRng::seed_from_u64(12);
        let good = random_spd(&mut rng, 5);
        let bad = Matrix::from_fn(5, 5, |i, j| if i == j { -2.0 } else { 0.1 });
        let mut batch = CholeskyBatch::new();
        let results = batch.refactor_all(
            &[good.clone(), bad, good.clone()],
            &ParallelConfig::with_threads(2),
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert_eq!(batch.factors()[1].dim(), 0);
        assert_eq!(batch.factors()[0].dim(), 5);
        assert!(batch.factors()[2]
            .solve(&[1.0; 5])
            .unwrap()
            .iter()
            .all(|v| v.is_finite()));
    }

    proptest::proptest! {
        #[test]
        fn prop_blocked_matches_scalar(n in 1usize..20, block in 1usize..8, seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_spd(&mut rng, n);
            let mut blocked = Cholesky::empty();
            blocked.refactor_with_block(&a, block).unwrap();
            let mut scalar = Cholesky::empty();
            scalar.refactor_scalar(&a).unwrap();
            proptest::prop_assert!(blocked.l().max_abs_diff(scalar.l()).unwrap() < 1e-9);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let xb = blocked.solve(&b).unwrap();
            let xs = scalar.solve(&b).unwrap();
            for (u, v) in xb.iter().zip(&xs) {
                proptest::prop_assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
