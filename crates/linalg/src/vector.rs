//! Free functions on `&[f64]` slices shared across the workspace.
//!
//! The matching optimizer and the neural nets both work with flat slices
//! for their hot inner loops; these helpers keep the numerics (notably the
//! numerically-stable softmax / log-sum-exp used by the smoothed max of
//! paper Eq. 8) in one audited place.

/// Dot product. Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm (0 for an empty slice).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |acc, x| acc.max(x.abs()))
}

/// In-place `y += alpha * x`. Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Numerically stable log-sum-exp: `log(Σ exp(x_i))`.
///
/// Returns `-inf` for an empty slice (the sum of zero exponentials).
pub fn logsumexp(x: &[f64]) -> f64 {
    let m = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m; // empty slice or all -inf
    }
    let s: f64 = x.iter().map(|&v| (v - m).exp()).sum();
    m + s.ln()
}

/// Numerically stable softmax, written into a fresh `Vec`.
///
/// An empty input yields an empty output.
pub fn softmax(x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// In-place numerically stable softmax.
pub fn softmax_inplace(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let m = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Mean of the entries (0 for an empty slice).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance of the entries (0 for fewer than two values).
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let mu = mean(x);
    x.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Index of the maximum entry; `None` for an empty slice. Ties pick the
/// first occurrence.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum entry; `None` for an empty slice.
pub fn argmin(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Clamps every entry into `[lo, hi]` in place.
pub fn clamp_inplace(x: &mut [f64], lo: f64, hi: f64) {
    for v in x {
        *v = v.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[-5.0, 2.0]), 5.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, -0.5]);
    }

    #[test]
    fn logsumexp_stability() {
        // Would overflow a naive implementation.
        let v = logsumexp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        // Large negative values must not underflow to -inf incorrectly.
        let v = logsumexp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn logsumexp_upper_bounds_max() {
        let xs = [0.3, -1.2, 2.5, 2.4];
        let lse = logsumexp(&xs);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lse >= max);
        assert!(lse <= max + (xs.len() as f64).ln());
    }

    #[test]
    fn softmax_properties() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        // Shift invariance.
        let s2 = softmax(&[101.0, 102.0, 103.0]);
        for (a, b) in s.iter().zip(&s2) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn argminmax() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, 3.0, 2.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        // Ties resolve to the first occurrence.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn clamp() {
        let mut v = vec![-1.0, 0.5, 2.0];
        clamp_inplace(&mut v, 0.0, 1.0);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    proptest::proptest! {
        #[test]
        fn prop_softmax_simplex(v in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
            let s = softmax(&v);
            let sum: f64 = s.iter().sum();
            proptest::prop_assert!((sum - 1.0).abs() < 1e-9);
            proptest::prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn prop_logsumexp_bounds(v in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
            let lse = logsumexp(&v);
            let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            proptest::prop_assert!(lse >= max - 1e-12);
            proptest::prop_assert!(lse <= max + (v.len() as f64).ln() + 1e-12);
        }
    }
}
