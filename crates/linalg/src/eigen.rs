//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! Used for conditioning diagnostics of the matching layer: the KKT
//! Hessian's spectrum determines both how fast Newton converges and how
//! trustworthy the implicit gradients are (paper §3.3's linear system).
//! Jacobi is slow (`O(n³)` per sweep) but simple, unconditionally stable,
//! and accurate to machine precision on the small symmetric matrices MFCP
//! produces.

use crate::{LinalgError, Matrix, Result};

/// The eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, aligned with `values`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix with cyclic
/// Jacobi rotations.
///
/// Only the lower triangle is read; symmetry is the caller's
/// responsibility. Fails on non-square input.
///
/// ```
/// use mfcp_linalg::{eigen::symmetric_eigen, Matrix};
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = symmetric_eigen(&a).unwrap();
/// assert!((eig.values[0] - 3.0).abs() < 1e-12);
/// assert!((eig.values[1] - 1.0).abs() < 1e-12);
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    // Work on a symmetrized copy.
    let mut m = Matrix::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] });
    let mut v = Matrix::identity(n);
    let scale = m.max_abs().max(1e-300);
    let tol = 1e-14 * scale;
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Largest off-diagonal magnitude this sweep.
        let mut off: f64 = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(m[(p, q)].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Rotation angle zeroing (p, q).
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].total_cmp(&diag[i]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    Ok(SymmetricEigen { values, vectors })
}

/// Spectral condition number `λ_max / λ_min` of a symmetric
/// positive-definite matrix (∞ when `λ_min ≤ 0`).
pub fn spd_condition_number(a: &Matrix) -> Result<f64> {
    let eig = symmetric_eigen(a)?;
    let max = *eig.values.first().expect("non-empty");
    let min = *eig.values.last().expect("non-empty");
    if min <= 0.0 {
        Ok(f64::INFINITY)
    } else {
        Ok(max / min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(rng: &mut StdRng, n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        Matrix::from_fn(n, n, |r, c| 0.5 * (b[(r, c)] + b[(c, r)]))
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let eig = symmetric_eigen(&a).unwrap();
        assert_eq!(eig.values.len(), 3);
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
        assert!((eig.values[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = symmetric_eigen(&a).unwrap();
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is ±(1,1)/√2.
        let v0 = eig.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 12] {
            let a = random_symmetric(&mut rng, n);
            let eig = symmetric_eigen(&a).unwrap();
            // V diag(λ) Vᵀ == A.
            let lam = Matrix::from_diag(&eig.values);
            let rec = eig
                .vectors
                .matmul(&lam)
                .unwrap()
                .matmul(&eig.vectors.transpose())
                .unwrap();
            assert!(rec.approx_eq(&a, 1e-9), "n={n}");
            // VᵀV == I.
            let vtv = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
            assert!(vtv.approx_eq(&Matrix::identity(n), 1e-9), "n={n}");
            // Descending order.
            for w in eig.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn trace_and_det_invariants() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_symmetric(&mut rng, 7);
        let eig = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..7).map(|i| a[(i, i)]).sum();
        let eig_sum: f64 = eig.values.iter().sum();
        assert!((trace - eig_sum).abs() < 1e-9);
        let det = crate::lu::Lu::factor(&a).map(|lu| lu.det());
        if let Ok(det) = det {
            let eig_prod: f64 = eig.values.iter().product();
            assert!((det - eig_prod).abs() < 1e-8 * (1.0 + det.abs()));
        }
    }

    #[test]
    fn condition_number() {
        let a = Matrix::from_diag(&[100.0, 1.0]);
        assert!((spd_condition_number(&a).unwrap() - 100.0).abs() < 1e-9);
        let indefinite = Matrix::from_diag(&[1.0, -1.0]);
        assert!(spd_condition_number(&indefinite).unwrap().is_infinite());
    }

    #[test]
    fn rejects_non_square() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }
}
