//! The dense row-major matrix type.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// ```
/// use mfcp_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on its diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Entry accessor with bounds checking (`None` when out of range).
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Entrywise combination of two equal-shaped matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Maximum entry; `None` for an empty matrix.
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::max)
    }

    /// Minimum entry; `None` for an empty matrix.
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::min)
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `max |a_ij - b_ij|`; shapes must match.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0, |acc, (&a, &b)| acc.max((a - b).abs())))
    }

    /// True when all entries agree within `tol` (shapes must match too).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Horizontal stack `[self | other]`.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Vertical stack `[self; other]`.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Copies `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for r in 0..block.rows {
            let dst = &mut self.row_mut(r0 + r)[c0..c0 + block.cols];
            dst.copy_from_slice(block.row(r));
        }
    }

    /// Extracts the `rows x cols` block with top-left corner `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        Matrix::from_fn(rows, cols, |r, c| self[(r0 + r, c0 + c)])
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);

        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(2, 2)], 3.0);
        assert_eq!(d[(0, 2)], 0.0);

        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(f[(1, 1)], 11.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        assert_eq!(m.get(0, 2), Some(3.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (5, 3));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h[(0, 1)], 3.0);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v[(3, 0)], 4.0);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn blocks() {
        let mut m = Matrix::zeros(4, 4);
        let b = Matrix::filled(2, 2, 7.0);
        m.set_block(1, 2, &b);
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m[(2, 3)], 7.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.block(1, 2, 2, 2), b);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(m.sum(), -2.0);
        assert_eq!(m.mean(), -0.5);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.max(), Some(3.0));
        assert_eq!(m.min(), Some(-4.0));
        assert!((m.frobenius_norm() - 30.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn map_and_zip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let doubled = m.map(|x| 2.0 * x);
        assert_eq!(doubled.as_slice(), &[2.0, 4.0]);
        let summed = m.zip_map(&doubled, |a, b| a + b).unwrap();
        assert_eq!(summed.as_slice(), &[3.0, 6.0]);
        assert!(m.zip_map(&Matrix::zeros(2, 2), |a, _| a).is_err());
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-9;
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!((a.max_abs_diff(&b).unwrap() - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max(), None);
    }
}
