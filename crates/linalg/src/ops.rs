//! Matrix arithmetic: operator overloads and the blocked, parallel matmul.

use crate::{LinalgError, Matrix, Result};
use mfcp_parallel::{par_chunks_mut, ParallelConfig};
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Tuning options for [`Matrix::matmul_with`].
#[derive(Debug, Clone, Copy)]
pub struct MatmulOptions {
    /// Cache-block edge length (rows/cols per tile of the k-loop).
    pub block: usize,
    /// Parallelism configuration; row panels are distributed over threads.
    pub parallel: ParallelConfig,
    /// Matrices with fewer output rows than this run single-threaded.
    pub parallel_row_cutoff: usize,
}

impl Default for MatmulOptions {
    fn default() -> Self {
        MatmulOptions {
            block: 64,
            parallel: ParallelConfig::default(),
            parallel_row_cutoff: 64,
        }
    }
}

impl Matrix {
    /// Matrix product `self * rhs` with default options.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with(rhs, &MatmulOptions::default())
    }

    /// Matrix product with explicit blocking/parallelism options.
    ///
    /// Uses an i-k-j loop order over cache blocks so the innermost loop
    /// streams contiguous rows of both the output and `rhs`. Row panels of
    /// the output are processed in parallel when the problem is large
    /// enough to amortize thread-fork overhead.
    pub fn matmul_with(&self, rhs: &Matrix, opts: &MatmulOptions) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), rhs.cols());
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 || k == 0 {
            return Ok(out);
        }
        let block = opts.block.max(8);
        let lhs_data = self.as_slice();
        let rhs_data = rhs.as_slice();

        let kernel = |row0: usize, panel: &mut [f64]| {
            let panel_rows = panel.len() / n;
            for kb in (0..k).step_by(block) {
                let kend = (kb + block).min(k);
                for (pr, out_row) in panel.chunks_mut(n).enumerate() {
                    let i = row0 + pr;
                    let a_row = &lhs_data[i * k..(i + 1) * k];
                    for kk in kb..kend {
                        let a = a_row[kk];
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &rhs_data[kk * n..(kk + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
            let _ = panel_rows;
        };

        if m < opts.parallel_row_cutoff || opts.parallel.threads <= 1 {
            kernel(0, out.as_mut_slice());
        } else {
            let rows_per_panel = m.div_ceil(opts.parallel.threads).max(1);
            par_chunks_mut(
                &opts.parallel,
                out.as_mut_slice(),
                rows_per_panel * n,
                |flat_base, panel| kernel(flat_base / n, panel),
            );
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols() != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows())
            .map(|r| crate::vector::dot(self.row(r), v))
            .collect())
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| s * x)
    }

    /// Entrywise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a * b)
    }

    /// `self + s * other` (AXPY), fallible on shape mismatch.
    pub fn axpy(&self, s: f64, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a + s * b)
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b).expect("matrix add shape")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b).expect("matrix sub shape")
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.map(|x| -x)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matmul shape")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix add-assign shape");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub-assign shape");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 17, 17);
        let i = Matrix::identity(17);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_blocked_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (33, 65, 19), (128, 70, 90)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let expected = naive_matmul(&a, &b);
            for block in [8, 16, 64] {
                let opts = MatmulOptions {
                    block,
                    ..Default::default()
                };
                let got = a.matmul_with(&b, &opts).unwrap();
                assert!(
                    got.approx_eq(&expected, 1e-10),
                    "mismatch at {m}x{k}x{n} block {block}"
                );
            }
        }
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 200, 120);
        let b = random_matrix(&mut rng, 120, 150);
        let serial = a
            .matmul_with(
                &b,
                &MatmulOptions {
                    parallel: ParallelConfig::sequential(),
                    ..Default::default()
                },
            )
            .unwrap();
        let parallel = a
            .matmul_with(
                &b,
                &MatmulOptions {
                    parallel: ParallelConfig::with_threads(4),
                    parallel_row_cutoff: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(serial.approx_eq(&parallel, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 6, 4);
        let v: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got = a.matvec(&v).unwrap();
        let expected = a.matmul(&Matrix::column(&v)).unwrap();
        for (g, e) in got.iter().zip(expected.as_slice()) {
            assert!((g - e).abs() < 1e-12);
        }
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn operator_overloads() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn hadamard_and_axpy() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 10.0]);
        assert_eq!(a.axpy(2.0, &b).unwrap().as_slice(), &[7.0, 12.0]);
    }

    proptest::proptest! {
        #[test]
        fn prop_matmul_associative_shapes(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let got = a.matmul(&b).unwrap();
            let expected = naive_matmul(&a, &b);
            proptest::prop_assert!(got.approx_eq(&expected, 1e-10));
        }

        #[test]
        fn prop_matmul_non_block_multiple_shapes(
            extra in 0usize..3, block_idx in 0usize..3, seed in 0u64..300
        ) {
            // Shapes straddling the tile boundary: the effective block is
            // max(block, 8), so sizes of block-1, block, block+1 plus
            // tall/skinny and width-1 strips all hit partial tiles.
            let block = [8usize, 16, 64][block_idx];
            let mut rng = StdRng::seed_from_u64(seed);
            let shapes = [
                (1, block + extra, 1),                    // degenerate strip
                (block - 1, block, block + 1),            // straddle on every axis
                (2 * block + 1, 3, block - 1),            // tall/skinny
                (3, 2 * block + 1, 2),                    // wide k, narrow out
            ];
            for &(m, k, n) in &shapes {
                let a = random_matrix(&mut rng, m, k);
                let b = random_matrix(&mut rng, k, n);
                let opts = MatmulOptions { block, ..Default::default() };
                let got = a.matmul_with(&b, &opts).unwrap();
                let expected = naive_matmul(&a, &b);
                proptest::prop_assert!(
                    got.approx_eq(&expected, 1e-10),
                    "mismatch at {}x{}x{} block {}", m, k, n, block
                );
            }
        }

        #[test]
        fn prop_transpose_of_product(
            m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000
        ) {
            // (AB)^T == B^T A^T
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            proptest::prop_assert!(lhs.approx_eq(&rhs, 1e-10));
        }
    }
}
