//! Error type shared by the linear-algebra routines.

use std::fmt;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The matrix must be square for this operation.
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
    },
    /// A factorization encountered an (numerically) singular matrix.
    Singular {
        /// Pivot column/row where the breakdown occurred.
        pivot: usize,
    },
    /// Cholesky required a positive-definite matrix but found a
    /// non-positive diagonal pivot.
    NotPositiveDefinite {
        /// Pivot index where positive definiteness failed.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at {pivot})")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
