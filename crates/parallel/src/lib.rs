//! Lightweight data-parallel primitives for the MFCP workspace.
//!
//! The MFCP training pipeline contains several embarrassingly parallel
//! stages: per-cluster predictor training, the `S`-sample zeroth-order
//! perturbation loop of Algorithm 2, Monte-Carlo evaluation over seeds, and
//! blocked dense matrix multiplication. This crate provides the two
//! primitives those stages need:
//!
//! * [`ThreadPool`] — a fixed-size pool executing `'static` jobs submitted
//!   through a crossbeam channel, with panic propagation and graceful
//!   shutdown on drop.
//! * Scoped helpers ([`par_map`], [`par_for_each`], [`par_chunks_mut`],
//!   [`par_reduce`]) — borrow-friendly fork/join over slices built on
//!   `crossbeam::thread::scope`, so callers can parallelize over borrowed
//!   data without `Arc`-wrapping everything.
//! * [`solve_batch`] / [`solve_batch_on_pool`] — batched fan-out with
//!   deterministic result ordering and per-slot panic isolation
//!   ([`SlotPanic`]), used by training to keep one poisoned solve from
//!   taking down a whole round.
//!
//! All helpers fall back to sequential execution for tiny inputs where
//! thread spawn overhead would dominate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod pool;
mod scoped;

pub use batch::{solve_batch, solve_batch_on_pool, SlotPanic};
pub use pool::{PoolError, ShutdownMode, ThreadPool};
pub use scoped::{par_chunks_mut, par_for_each, par_map, par_reduce, ParallelConfig};

/// Returns the number of worker threads to use by default.
///
/// This is the machine's available parallelism, clamped to at least 1. The
/// value is computed once per call; callers that need a stable value should
/// capture it in a [`ParallelConfig`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
