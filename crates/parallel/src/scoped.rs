//! Borrow-friendly fork/join helpers built on `crossbeam::thread::scope`.

use std::sync::OnceLock;

/// Cached observability handles so the fork/join helpers pay a registry
/// lookup once per process, not once per call.
struct ScopedMetrics {
    calls: mfcp_obs::Counter,
    items: mfcp_obs::Histogram,
}

fn metrics() -> &'static ScopedMetrics {
    static METRICS: OnceLock<ScopedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ScopedMetrics {
        calls: mfcp_obs::counter("parallel.scoped.calls"),
        items: mfcp_obs::histogram("parallel.scoped.items"),
    })
}

fn record_scoped_call(len: usize) {
    let m = metrics();
    m.calls.inc();
    m.items.record(len as f64);
}

/// Tuning knobs for the scoped parallel helpers.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Maximum number of worker threads to fork.
    pub threads: usize,
    /// Inputs shorter than this run sequentially on the calling thread.
    pub sequential_cutoff: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: crate::default_threads(),
            sequential_cutoff: 2,
        }
    }
}

impl ParallelConfig {
    /// A configuration with an explicit thread count and the default cutoff.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            ..Default::default()
        }
    }

    /// Forces sequential execution (useful for deterministic debugging).
    pub fn sequential() -> Self {
        ParallelConfig {
            threads: 1,
            sequential_cutoff: usize::MAX,
        }
    }

    pub(crate) fn effective_threads(&self, len: usize) -> usize {
        if len < self.sequential_cutoff {
            1
        } else {
            self.threads.max(1).min(len.max(1))
        }
    }
}

/// Applies `f` to every element of `items`, returning outputs in input order.
///
/// `f` runs on up to `config.threads` forked threads. Panics in `f` are
/// propagated to the caller after all threads have been joined.
///
/// ```
/// use mfcp_parallel::{par_map, ParallelConfig};
/// let squares = par_map(&ParallelConfig::default(), &[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(config: &ParallelConfig, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    record_scoped_call(items.len());
    let threads = config.effective_threads(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let mut rest = out.as_mut_slice();
        for (ci, in_chunk) in items.chunks(chunk).enumerate() {
            let (head, tail) = rest.split_at_mut(in_chunk.len());
            rest = tail;
            let base = ci * chunk;
            scope.spawn(move |_| {
                for (slot, (off, item)) in head.iter_mut().zip(in_chunk.iter().enumerate()) {
                    let _ = base + off; // index retained for clarity in panics
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("par_map worker panicked");
    out.into_iter().map(|v| v.expect("slot filled")).collect()
}

/// Applies `f` to every element of `items` for its side effects.
pub fn par_for_each<T, F>(config: &ParallelConfig, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    record_scoped_call(items.len());
    let threads = config.effective_threads(items.len());
    if threads <= 1 {
        items.iter().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        for in_chunk in items.chunks(chunk) {
            scope.spawn(move |_| in_chunk.iter().for_each(f));
        }
    })
    .expect("par_for_each worker panicked");
}

/// Splits `items` into contiguous mutable chunks and hands each chunk (with
/// the index of its first element) to `f` on a forked thread.
///
/// This is the building block for parallel in-place updates such as blocked
/// matmul row panels.
pub fn par_chunks_mut<T, F>(config: &ParallelConfig, items: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let threads = config.effective_threads(items.len().div_ceil(chunk_len));
    if threads <= 1 {
        for (ci, chunk) in items.chunks_mut(chunk_len).enumerate() {
            f(ci * chunk_len, chunk);
        }
        return;
    }
    crossbeam::thread::scope(|scope| {
        let f = &f;
        for (ci, chunk) in items.chunks_mut(chunk_len).enumerate() {
            scope.spawn(move |_| f(ci * chunk_len, chunk));
        }
    })
    .expect("par_chunks_mut worker panicked");
}

/// Parallel map-reduce: maps each element with `map`, then folds the mapped
/// values with the associative operation `reduce`, starting from `identity`.
///
/// `reduce` must be associative and `identity` its neutral element, otherwise
/// the result depends on the chunking.
///
/// ```
/// use mfcp_parallel::{par_reduce, ParallelConfig};
/// let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
/// let sum = par_reduce(&ParallelConfig::default(), &data, 0.0, |&x| x, |a, b| a + b);
/// assert_eq!(sum, 5050.0);
/// ```
pub fn par_reduce<T, U, M, R>(
    config: &ParallelConfig,
    items: &[T],
    identity: U,
    map: M,
    reduce: R,
) -> U
where
    T: Sync,
    U: Send + Clone,
    M: Fn(&T) -> U + Sync,
    R: Fn(U, U) -> U + Sync,
{
    record_scoped_call(items.len());
    let threads = config.effective_threads(items.len());
    if threads <= 1 {
        return items.iter().map(map).fold(identity, &reduce);
    }
    let chunk = items.len().div_ceil(threads);
    let partials: Vec<U> = crossbeam::thread::scope(|scope| {
        let map = &map;
        let reduce = &reduce;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|in_chunk| {
                let id = identity.clone();
                scope.spawn(move |_| in_chunk.iter().map(map).fold(id, reduce))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("par_reduce worker panicked");
    partials.into_iter().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&ParallelConfig::with_threads(7), &items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty_input() {
        let items: Vec<u32> = vec![];
        let out = par_map(&ParallelConfig::default(), &items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn map_sequential_config_matches_parallel() {
        let items: Vec<i64> = (0..257).collect();
        let seq = par_map(&ParallelConfig::sequential(), &items, |&x| x * x - 3);
        let par = par_map(&ParallelConfig::with_threads(8), &items, |&x| x * x - 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_touches_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..500).collect();
        let sum = AtomicUsize::new(0);
        par_for_each(&ParallelConfig::with_threads(4), &items, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500 * 499 / 2);
    }

    #[test]
    fn chunks_mut_writes_disjoint_ranges() {
        let mut data = vec![0usize; 103];
        par_chunks_mut(
            &ParallelConfig::with_threads(4),
            &mut data,
            10,
            |base, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = base + i;
                }
            },
        );
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential() {
        let data: Vec<f64> = (0..1234).map(|i| (i as f64).sin()).collect();
        let seq: f64 = data.iter().map(|x| x * x).sum();
        let par = par_reduce(
            &ParallelConfig::with_threads(6),
            &data,
            0.0,
            |&x| x * x,
            |a, b| a + b,
        );
        assert!((seq - par).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn map_propagates_panics() {
        let items: Vec<usize> = (0..100).collect();
        par_map(&ParallelConfig::with_threads(4), &items, |&x| {
            if x == 57 {
                panic!("expected");
            }
            x
        });
    }

    proptest::proptest! {
        #[test]
        fn prop_par_map_equals_serial(v in proptest::collection::vec(-1e6f64..1e6, 0..200),
                                      threads in 1usize..9) {
            let par = par_map(&ParallelConfig::with_threads(threads), &v, |&x| x.abs() + 1.0);
            let ser: Vec<f64> = v.iter().map(|&x| x.abs() + 1.0).collect();
            proptest::prop_assert_eq!(par, ser);
        }

        #[test]
        fn prop_par_reduce_sum(v in proptest::collection::vec(-100i64..100, 0..300),
                               threads in 1usize..9) {
            let par = par_reduce(&ParallelConfig::with_threads(threads), &v, 0i64, |&x| x, |a, b| a + b);
            let ser: i64 = v.iter().sum();
            proptest::prop_assert_eq!(par, ser);
        }
    }
}
