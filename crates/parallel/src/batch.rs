//! Batched execution with deterministic ordering and per-slot panic
//! isolation.
//!
//! [`solve_batch`] fans a slice of independent problems across forked
//! threads (the same chunked `crossbeam::thread::scope` layout as
//! [`crate::par_map`]) but differs in failure semantics: each slot runs
//! under `catch_unwind`, so a panicking solve poisons only its own slot
//! — sibling results are returned intact, the scope join never sees a
//! panicked worker, and the output order always matches the input order
//! regardless of thread count. [`solve_batch_on_pool`] offers the same
//! contract for `'static` jobs on a shared [`crate::ThreadPool`]
//! (extending the pool's own panic accounting: jobs wrapped here never
//! trip [`crate::PoolError::WorkerPanicked`]).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

use crate::pool::ThreadPool;
use crate::scoped::ParallelConfig;

/// Cached observability handles for the batch entry points.
struct BatchMetrics {
    calls: mfcp_obs::Counter,
    items: mfcp_obs::Histogram,
    panics: mfcp_obs::Counter,
}

fn metrics() -> &'static BatchMetrics {
    static METRICS: OnceLock<BatchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| BatchMetrics {
        calls: mfcp_obs::counter("parallel.batch.calls"),
        items: mfcp_obs::histogram("parallel.batch.items"),
        panics: mfcp_obs::counter("parallel.batch.panics"),
    })
}

/// A panic captured from one batch slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPanic {
    /// Input index of the slot whose closure panicked.
    pub index: usize,
    /// Stringified panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl fmt::Display for SlotPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch slot {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for SlotPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_slot<T, R, F>(index: usize, item: &T, solve: &F) -> Result<R, SlotPanic>
where
    F: Fn(usize, &T) -> R + Sync,
{
    catch_unwind(AssertUnwindSafe(|| solve(index, item))).map_err(|payload| {
        mfcp_obs::trace::instant("batch.slot_panic", Some(index as u64));
        SlotPanic {
            index,
            message: panic_message(payload),
        }
    })
}

/// Solves every element of `items` with `solve`, returning one result
/// per slot **in input order** regardless of how the work was scheduled.
///
/// `solve` receives the input index alongside the item. A panic inside
/// `solve` is captured as [`SlotPanic`] for that slot only; all sibling
/// slots still return their results and the internal join can never
/// deadlock on the panicked worker. The sequential path (forced by
/// [`ParallelConfig::sequential`] or small inputs) has identical
/// semantics, which is what makes batched-vs-sequential runs comparable
/// bit for bit.
///
/// ```
/// use mfcp_parallel::{solve_batch, ParallelConfig};
/// let out = solve_batch(&ParallelConfig::with_threads(4), &[1u64, 2, 3], |_, &x| x * x);
/// assert_eq!(out.len(), 3);
/// assert_eq!(*out[2].as_ref().unwrap(), 9);
/// ```
pub fn solve_batch<T, R, F>(
    config: &ParallelConfig,
    items: &[T],
    solve: F,
) -> Vec<Result<R, SlotPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let m = metrics();
    m.calls.inc();
    m.items.record(items.len() as f64);
    let threads = config.effective_threads(items.len());
    let out: Vec<Result<R, SlotPanic>> = if threads <= 1 {
        items
            .iter()
            .enumerate()
            .map(|(i, item)| run_slot(i, item, &solve))
            .collect()
    } else {
        let chunk = items.len().div_ceil(threads);
        let mut out: Vec<Option<Result<R, SlotPanic>>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        crossbeam::thread::scope(|scope| {
            let solve = &solve;
            let mut rest = out.as_mut_slice();
            for (ci, in_chunk) in items.chunks(chunk).enumerate() {
                let (head, tail) = rest.split_at_mut(in_chunk.len());
                rest = tail;
                let base = ci * chunk;
                scope.spawn(move |_| {
                    for (slot, (off, item)) in head.iter_mut().zip(in_chunk.iter().enumerate()) {
                        *slot = Some(run_slot(base + off, item, solve));
                    }
                });
            }
        })
        .expect("solve_batch workers catch their own panics");
        out.into_iter().map(|v| v.expect("slot filled")).collect()
    };
    for slot in &out {
        if slot.is_err() {
            m.panics.inc();
        }
    }
    out
}

/// Runs `jobs` on a shared [`ThreadPool`], returning results in job
/// order with the same per-slot panic isolation as [`solve_batch`].
///
/// Jobs must be `'static` (the pool outlives the call); prefer
/// [`solve_batch`] for borrowed data. Because every job is wrapped in
/// `catch_unwind`, a panicking job neither deadlocks
/// [`ThreadPool::join`] nor flips the pool's panicked-worker accounting
/// for the remaining jobs in this batch.
pub fn solve_batch_on_pool<R, F>(pool: &ThreadPool, jobs: Vec<F>) -> Vec<Result<R, SlotPanic>>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    use std::sync::Arc;

    type Slots<R> = Arc<Mutex<Vec<Option<Result<R, SlotPanic>>>>>;

    let m = metrics();
    m.calls.inc();
    m.items.record(jobs.len() as f64);
    let slots: Slots<R> = Arc::new(Mutex::new(
        std::iter::repeat_with(|| None).take(jobs.len()).collect(),
    ));
    for (index, job) in jobs.into_iter().enumerate() {
        let slots = Arc::clone(&slots);
        pool.execute(move || {
            let result = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| {
                mfcp_obs::trace::instant("batch.slot_panic", Some(index as u64));
                SlotPanic {
                    index,
                    message: panic_message(payload),
                }
            });
            slots.lock().expect("batch jobs catch their own panics")[index] = Some(result);
        });
    }
    // Join waits for in-flight work; our jobs cannot trip the pool's
    // panic accounting, but a concurrent caller's unwrapped job might,
    // so tolerate WorkerPanicked here rather than unwrapping.
    let _ = pool.join();
    let taken = std::mem::take(&mut *slots.lock().expect("batch jobs catch their own panics"));
    let out: Vec<Result<R, SlotPanic>> = taken
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or_else(|| {
                Err(SlotPanic {
                    index,
                    message: "job was dropped before running".to_string(),
                })
            })
        })
        .collect();
    for slot in &out {
        if slot.is_err() {
            m.panics.inc();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_matches_sequential_bit_for_bit() {
        let items: Vec<f64> = (0..97).map(|i| i as f64 * 0.37 - 5.0).collect();
        let f = |i: usize, x: &f64| (x.sin() * x.cos() + i as f64).to_bits();
        let seq = solve_batch(&ParallelConfig::sequential(), &items, f);
        let par = solve_batch(&ParallelConfig::with_threads(8), &items, f);
        assert_eq!(seq, par);
        assert!(seq.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn panicking_slot_does_not_corrupt_siblings() {
        let items: Vec<usize> = (0..64).collect();
        let out = solve_batch(&ParallelConfig::with_threads(4), &items, |_, &x| {
            if x == 13 {
                panic!("slot 13 exploded");
            }
            x * 2
        });
        assert_eq!(out.len(), 64);
        for (i, slot) in out.iter().enumerate() {
            if i == 13 {
                let err = slot.as_ref().unwrap_err();
                assert_eq!(err.index, 13);
                assert!(err.message.contains("slot 13 exploded"));
            } else {
                assert_eq!(*slot.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn every_slot_panicking_still_returns_in_order() {
        let items: Vec<usize> = (0..16).collect();
        let out = solve_batch(&ParallelConfig::with_threads(4), &items, |i, _: &usize| {
            panic!("boom {i}");
        });
        let indices: Vec<usize> = out
            .iter()
            .map(|r| match r {
                Ok(()) => unreachable!("every slot panics"),
                Err(p) => p.index,
            })
            .collect();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let items: Vec<u8> = vec![];
        let out = solve_batch(&ParallelConfig::default(), &items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_batch_preserves_order_and_isolates_panics() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..20)
            .map(|i| {
                move || {
                    if i == 7 {
                        panic!("pool slot 7");
                    }
                    i * i
                }
            })
            .collect();
        let out = solve_batch_on_pool(&pool, jobs);
        assert_eq!(out.len(), 20);
        for (i, slot) in out.iter().enumerate() {
            if i == 7 {
                assert_eq!(slot.as_ref().unwrap_err().index, 7);
            } else {
                assert_eq!(*slot.as_ref().unwrap(), i * i);
            }
        }
        // The pool is still usable and join does not report our panics.
        pool.execute(|| {});
        assert!(pool.join().is_ok());
    }
}
