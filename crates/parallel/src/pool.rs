//! A fixed-size worker pool for `'static` jobs.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned when interacting with a [`ThreadPool`] that has shut down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The pool's job channel is closed (the pool was dropped or poisoned).
    Closed,
    /// A worker panicked while executing a job.
    WorkerPanicked,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Closed => write!(f, "thread pool has shut down"),
            PoolError::WorkerPanicked => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for PoolError {}

struct Shared {
    /// Number of jobs submitted but not yet completed.
    in_flight: AtomicUsize,
    /// Number of jobs that ended in a panic.
    panicked: AtomicUsize,
}

/// A fixed-size thread pool executing boxed `'static` jobs.
///
/// Jobs are distributed to workers through a single multi-consumer crossbeam
/// channel, which provides natural load balancing for the coarse-grained
/// jobs MFCP submits (whole training epochs, whole perturbation solves).
///
/// ```
/// use mfcp_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let c = Arc::clone(&counter);
///     pool.execute(move || {
///         c.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// pool.join();
/// assert_eq!(counter.load(Ordering::SeqCst), 100);
/// ```
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    /// Guards `join` so concurrent joins don't race on the busy-wait.
    join_lock: Mutex<()>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let shared = Arc::new(Shared {
            in_flight: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mfcp-pool-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
            join_lock: Mutex::new(()),
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for execution. Panics if the pool has shut down
    /// (which cannot happen while the pool value is alive).
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.try_execute(job).expect("pool is alive while owned");
    }

    /// Fallible variant of [`ThreadPool::execute`].
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolError>
    where
        F: FnOnce() + Send + 'static,
    {
        let sender = self.sender.as_ref().ok_or(PoolError::Closed)?;
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        sender.send(Box::new(job)).map_err(|_| PoolError::Closed)?;
        Ok(())
    }

    /// Blocks until every submitted job has completed.
    ///
    /// Returns an error if any job panicked since the last call to `join`.
    pub fn join(&self) -> Result<(), PoolError> {
        let _guard = self.join_lock.lock();
        while self.shared.in_flight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        let panics = self.shared.panicked.swap(0, Ordering::SeqCst);
        if panics > 0 {
            Err(PoolError::WorkerPanicked)
        } else {
            Ok(())
        }
    }

    /// Number of jobs submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's `recv` fail once the
        // queue drains, so queued jobs still run before shutdown.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

fn worker_loop(rx: Receiver<Job>, shared: Arc<Shared>) {
    while let Ok(job) = rx.recv() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        if result.is_err() {
            shared.panicked.fetch_add(1, Ordering::SeqCst);
        }
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn join_reports_panics() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("boom"));
        assert_eq!(pool.join(), Err(PoolError::WorkerPanicked));
        // Pool remains usable afterwards.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_runs_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn threads_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn nested_submission() {
        let pool = Arc::new(ThreadPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&pool);
        let c2 = Arc::clone(&counter);
        pool.execute(move || {
            for _ in 0..10 {
                let c = Arc::clone(&c2);
                p2.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        // Wait for the outer job plus the 10 inner jobs.
        while counter.load(Ordering::SeqCst) != 10 {
            std::thread::yield_now();
        }
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
