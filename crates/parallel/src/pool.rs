//! A fixed-size worker pool for `'static` jobs.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned when interacting with a [`ThreadPool`] that has shut down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The pool's job channel is closed (the pool was dropped or poisoned).
    Closed,
    /// A worker panicked while executing a job.
    WorkerPanicked,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Closed => write!(f, "thread pool has shut down"),
            PoolError::WorkerPanicked => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for PoolError {}

/// How a dropped [`ThreadPool`] treats jobs still sitting in its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShutdownMode {
    /// Run every queued job to completion before the workers exit
    /// (the default, matching the pool's historical behavior).
    #[default]
    Drain,
    /// Discard queued jobs without running them; the job currently
    /// executing on each worker still finishes (cancellation is
    /// cooperative, nothing is interrupted mid-job).
    Cancel,
}

#[derive(Default)]
struct State {
    /// Number of jobs submitted but not yet completed.
    in_flight: usize,
    /// Number of jobs that ended in a panic since the last `join`.
    panicked: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled by workers whenever `in_flight` reaches zero.
    all_done: Condvar,
    /// Observability handles, resolved once at pool construction so the
    /// per-job cost is a couple of atomic ops rather than a registry lookup.
    jobs_counter: mfcp_obs::Counter,
    queue_wait: mfcp_obs::Histogram,
    job_secs: mfcp_obs::Histogram,
    /// Pre-interned flight-recorder event names. The enqueue instant fires
    /// on the submitting thread and the job begin/end pair on the worker;
    /// matching job ids (the event arg) make queue wait visible as the gap
    /// between the instant and the begin.
    ev_enqueue: u32,
    ev_job: u32,
    /// Monotonic job id shared by the enqueue instant and the job span.
    next_job: AtomicU64,
    /// Once set, workers discard queued jobs instead of running them
    /// (accounting still settles, so joiners and `in_flight` stay
    /// consistent).
    cancelled: AtomicBool,
    /// Whether [`ThreadPool::drop`] should flip `cancelled` before
    /// closing the channel ([`ShutdownMode::Cancel`]).
    cancel_on_drop: AtomicBool,
    /// Jobs discarded by cancellation.
    cancelled_counter: mfcp_obs::Counter,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // Worker panics are caught before they can poison this mutex, but
        // recover anyway rather than propagate a spurious poison.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A fixed-size thread pool executing boxed `'static` jobs.
///
/// Jobs are distributed to workers through a single multi-consumer crossbeam
/// channel, which provides natural load balancing for the coarse-grained
/// jobs MFCP submits (whole training epochs, whole perturbation solves).
///
/// ```
/// use mfcp_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let c = Arc::clone(&counter);
///     pool.execute(move || {
///         c.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// pool.join();
/// assert_eq!(counter.load(Ordering::SeqCst), 100);
/// ```
pub struct ThreadPool {
    sender: Option<Sender<TimedJob>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

struct TimedJob {
    job: Job,
    submitted: Instant,
    job_id: u64,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<TimedJob>, Receiver<TimedJob>) = unbounded();
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            all_done: Condvar::new(),
            jobs_counter: mfcp_obs::counter("parallel.pool.jobs"),
            queue_wait: mfcp_obs::histogram("parallel.pool.queue_wait_secs"),
            job_secs: mfcp_obs::histogram("parallel.pool.job_secs"),
            ev_enqueue: mfcp_obs::trace::intern("pool.enqueue"),
            ev_job: mfcp_obs::trace::intern("pool.job"),
            next_job: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            cancel_on_drop: AtomicBool::new(false),
            cancelled_counter: mfcp_obs::counter("parallel.pool.cancelled"),
        });
        let workers = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mfcp-pool-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for execution. Panics if the pool has shut down
    /// (which cannot happen while the pool value is alive).
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.try_execute(job).expect("pool is alive while owned");
    }

    /// Fallible variant of [`ThreadPool::execute`].
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolError>
    where
        F: FnOnce() + Send + 'static,
    {
        let sender = self.sender.as_ref().ok_or(PoolError::Closed)?;
        self.shared.lock().in_flight += 1;
        let job_id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        mfcp_obs::trace::instant_id(self.shared.ev_enqueue, Some(job_id));
        let timed = TimedJob {
            job: Box::new(job),
            submitted: Instant::now(),
            job_id,
        };
        if sender.send(timed).is_err() {
            // Channel closed under us: the accounting increment must be
            // rolled back or join would wait forever.
            let mut state = self.shared.lock();
            state.in_flight -= 1;
            if state.in_flight == 0 {
                self.shared.all_done.notify_all();
            }
            return Err(PoolError::Closed);
        }
        Ok(())
    }

    /// Blocks until every submitted job has completed.
    ///
    /// The wait parks on a condition variable signalled by the workers, so
    /// a joiner consumes no CPU while jobs run. Returns an error if any job
    /// panicked since the last call to `join`.
    pub fn join(&self) -> Result<(), PoolError> {
        let mut state = self.shared.lock();
        while state.in_flight != 0 {
            state = self
                .shared
                .all_done
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        let panics = std::mem::take(&mut state.panicked);
        if panics > 0 {
            Err(PoolError::WorkerPanicked)
        } else {
            Ok(())
        }
    }

    /// Number of jobs submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }

    /// Selects what happens to queued jobs when the pool is dropped.
    /// Takes `&self` so the mode can be set through an `Arc`.
    pub fn set_shutdown_mode(&self, mode: ShutdownMode) {
        self.shared
            .cancel_on_drop
            .store(mode == ShutdownMode::Cancel, Ordering::Release);
    }

    /// Discards queued jobs from this point on: workers drain the queue
    /// without running the jobs (each discard still decrements the
    /// in-flight count, so [`ThreadPool::join`] returns promptly).
    /// The job currently executing on each worker runs to completion.
    /// Cancellation is one-way; a cancelled pool stays cancelled.
    pub fn cancel_queued(&self) {
        self.shared.cancelled.store(true, Ordering::Release);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if self.shared.cancel_on_drop.load(Ordering::Acquire) {
            self.shared.cancelled.store(true, Ordering::Release);
        }
        // Closing the channel makes every worker's `recv` fail once the
        // queue drains, so queued jobs still run (Drain) or are discarded
        // with their accounting settled (Cancel) before shutdown.
        drop(self.sender.take());
        let me = std::thread::current().id();
        for handle in self.workers.drain(..) {
            if handle.thread().id() == me {
                // The last owner of the pool was dropped from inside one
                // of its own jobs. Joining our own thread would deadlock;
                // skip it — this thread exits on its own as soon as the
                // current job returns and it observes the closed channel.
                continue;
            }
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

fn worker_loop(rx: Receiver<TimedJob>, shared: Arc<Shared>) {
    while let Ok(timed) = rx.recv() {
        if shared.cancelled.load(Ordering::Acquire) {
            // Discard without running; in-flight accounting must still
            // settle or joiners would park forever.
            shared.cancelled_counter.inc();
            drop(timed.job);
            let mut state = shared.lock();
            state.in_flight -= 1;
            if state.in_flight == 0 {
                shared.all_done.notify_all();
            }
            continue;
        }
        let started = Instant::now();
        shared
            .queue_wait
            .record_duration(started.duration_since(timed.submitted));
        mfcp_obs::trace::begin_id(shared.ev_job, Some(timed.job_id));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(timed.job));
        mfcp_obs::trace::end_id(shared.ev_job, Some(timed.job_id));
        shared.job_secs.record_duration(started.elapsed());
        shared.jobs_counter.inc();
        let mut state = shared.lock();
        if result.is_err() {
            state.panicked += 1;
        }
        state.in_flight -= 1;
        if state.in_flight == 0 {
            shared.all_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn join_reports_panics() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("boom"));
        assert_eq!(pool.join(), Err(PoolError::WorkerPanicked));
        // Pool remains usable afterwards.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_runs_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn threads_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn nested_submission() {
        let pool = Arc::new(ThreadPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&pool);
        let c2 = Arc::clone(&counter);
        pool.execute(move || {
            for _ in 0..10 {
                let c = Arc::clone(&c2);
                p2.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        // Wait for the outer job plus the 10 inner jobs.
        while counter.load(Ordering::SeqCst) != 10 {
            std::thread::yield_now();
        }
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_joins_all_wake() {
        let pool = Arc::new(ThreadPool::new(1));
        pool.execute(|| std::thread::sleep(Duration::from_millis(50)));
        let joiners: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&pool);
                std::thread::spawn(move || p.join())
            })
            .collect();
        for j in joiners {
            j.join().unwrap().unwrap();
        }
    }

    /// Every job leaves an enqueue instant plus a begin/end pair carrying
    /// the same job id on the flight recorder, and the enqueue precedes
    /// the begin in the global sequence order (the gap between them is
    /// the queue wait). Counts are lower bounds because other tests in
    /// this binary share the global recorder.
    #[test]
    fn jobs_emit_trace_lifecycle() {
        let pool = ThreadPool::new(2);
        let k = 8u64;
        for _ in 0..k {
            pool.execute(|| std::thread::sleep(Duration::from_millis(1)));
        }
        pool.join().unwrap();
        let trace = mfcp_obs::trace::drain();
        let enqueues: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.name == "pool.enqueue" && e.kind == mfcp_obs::trace::EventKind::Instant)
            .collect();
        let begins: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.name == "pool.job" && e.kind == mfcp_obs::trace::EventKind::Begin)
            .collect();
        let ends = trace
            .events
            .iter()
            .filter(|e| e.name == "pool.job" && e.kind == mfcp_obs::trace::EventKind::End)
            .count();
        assert!(
            enqueues.len() >= k as usize,
            "got {} enqueues",
            enqueues.len()
        );
        assert!(begins.len() >= k as usize, "got {} begins", begins.len());
        assert!(ends >= k as usize, "got {ends} ends");
        // This pool's k jobs were fully buffered before the drain (join
        // returned), so at least k begins must pair with an earlier
        // enqueue instant carrying the same job id. Begins from tests
        // running concurrently can be torn across the drain, hence the
        // lower bound rather than a per-begin assertion.
        let paired = begins
            .iter()
            .filter(|b| b.arg.is_some() && enqueues.iter().any(|e| e.arg == b.arg && e.seq < b.seq))
            .count();
        assert!(
            paired >= k as usize,
            "only {paired} begins paired with enqueues"
        );
    }

    /// Regression test: dropping the last owner of a pool *from inside
    /// one of its own jobs* used to self-join the worker thread and
    /// deadlock forever. The scenario must now complete promptly.
    #[test]
    fn drop_from_worker_thread_does_not_deadlock() {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let pool = Arc::new(ThreadPool::new(2));
            let inner = Arc::clone(&pool);
            pool.execute(move || {
                // Give main a moment to drop its handle so this clone is
                // the last owner and Drop runs here, on a worker.
                std::thread::sleep(Duration::from_millis(30));
                drop(inner);
            });
            drop(pool);
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("pool drop from a worker thread deadlocked");
    }

    #[test]
    fn cancel_shutdown_discards_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let dropped = Instant::now();
        {
            let pool = ThreadPool::new(1);
            pool.set_shutdown_mode(ShutdownMode::Cancel);
            // Occupy the single worker so everything below stays queued.
            pool.execute(|| std::thread::sleep(Duration::from_millis(100)));
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(100));
                });
            }
        }
        // Every queued job was discarded, not run; drop waited only for
        // the in-progress sleep, not 51 sequential ones.
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        assert!(
            dropped.elapsed() < Duration::from_secs(4),
            "cancel shutdown took {:?}",
            dropped.elapsed()
        );
    }

    #[test]
    fn cancel_queued_unblocks_join() {
        let pool = Arc::new(ThreadPool::new(1));
        pool.execute(|| std::thread::sleep(Duration::from_millis(50)));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.cancel_queued();
        pool.join().unwrap();
        assert_eq!(pool.in_flight(), 0, "cancelled jobs settle accounting");
        assert_eq!(counter.load(Ordering::SeqCst), 0);
    }

    /// CPU time (user + system) consumed so far by the calling thread, in
    /// clock ticks, read from /proc/thread-self/stat. Thread-scoped so
    /// other tests running concurrently in this process don't pollute the
    /// measurement.
    #[cfg(target_os = "linux")]
    fn this_thread_cpu_ticks() -> u64 {
        let stat = std::fs::read_to_string("/proc/thread-self/stat").unwrap();
        // comm can contain spaces; fields are positional after the ')'.
        let after = stat.rsplit(')').next().unwrap();
        let fields: Vec<&str> = after.split_whitespace().collect();
        // After the closing paren, utime and stime are fields 12 and 13
        // (0-indexed) of the remainder.
        fields[11].parse::<u64>().unwrap() + fields[12].parse::<u64>().unwrap()
    }

    /// Regression test for the old busy-wait join: a joiner blocked on a
    /// slow job must park, not spin. With the yield_now loop this burned a
    /// full core for the duration of the sleep (~40+ ticks at 100 Hz);
    /// parked on the condvar it is near zero.
    #[test]
    #[cfg(target_os = "linux")]
    fn join_does_not_busy_wait() {
        let pool = ThreadPool::new(1);
        pool.execute(|| std::thread::sleep(Duration::from_millis(400)));
        let wall = Instant::now();
        let cpu_before = this_thread_cpu_ticks();
        pool.join().unwrap();
        let cpu_ticks = this_thread_cpu_ticks() - cpu_before;
        assert!(wall.elapsed() >= Duration::from_millis(350));
        // 400 ms of spinning is ~40 ticks; allow generous scheduler noise.
        assert!(
            cpu_ticks < 10,
            "join consumed {cpu_ticks} CPU ticks while waiting"
        );
    }
}
