//! Dependency-free text serialization for trained networks.
//!
//! A deployed exchange platform trains predictors once and matches many
//! rounds; persisting the networks is table stakes. The format is a
//! line-oriented, human-inspectable text document:
//!
//! ```text
//! mfcp-mlp v1
//! layers 2
//! layer 18 32 relu
//! <32 lines of 18 weights each? no — one line per weight row>
//! bias <32 floats>
//! layer 32 1 identity
//! ...
//! ```
//!
//! Floats are written with `{:e}` round-trip precision.

use crate::{Activation, Mlp};
use mfcp_linalg::Matrix;
use std::fmt;
use std::path::Path;

/// Errors from parsing a persisted model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelFormatError {
    /// Human-readable description including the offending line.
    pub message: String,
}

impl fmt::Display for ModelFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model format error: {}", self.message)
    }
}

impl std::error::Error for ModelFormatError {}

/// Errors from loading or saving a persisted model file: either the I/O
/// failed or the content failed to parse. Replaces the former
/// `Box<dyn Error>` / bare `io::Result` returns so callers can branch on
/// the failure kind (retry I/O, discard corrupt checkpoints).
#[derive(Debug)]
pub enum PersistError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file was read but its content is not a valid model document
    /// (truncated, corrupted, or wrong format).
    Format(ModelFormatError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file I/O error: {e}"),
            PersistError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<ModelFormatError> for PersistError {
    fn from(e: ModelFormatError) -> Self {
        PersistError::Format(e)
    }
}

/// Parsing limits for untrusted checkpoint files. A corrupted size field
/// must produce a typed error, not a multi-gigabyte allocation (or the
/// capacity-overflow panic inside `Vec::with_capacity`/`Matrix::zeros`).
const MAX_LAYERS: usize = 512;
const MAX_DIM: usize = 65_536;
const MAX_LAYER_ELEMS: usize = 1 << 24;

fn err(message: impl Into<String>) -> ModelFormatError {
    ModelFormatError {
        message: message.into(),
    }
}

fn activation_tag(a: Activation) -> String {
    match a {
        Activation::Identity => "identity".into(),
        Activation::Relu => "relu".into(),
        Activation::LeakyRelu(alpha) => format!("leaky_relu {alpha:e}"),
        Activation::Tanh => "tanh".into(),
        Activation::Sigmoid => "sigmoid".into(),
        Activation::SoftplusScaled(beta) => format!("softplus {beta:e}"),
    }
}

fn parse_activation(tokens: &[&str]) -> Result<Activation, ModelFormatError> {
    let parse_param = |tokens: &[&str]| -> Result<f64, ModelFormatError> {
        let v: f64 = tokens
            .get(1)
            .ok_or_else(|| err("missing activation parameter"))?
            .parse()
            .map_err(|_| err("bad activation parameter"))?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(err("non-finite activation parameter"))
        }
    };
    match tokens.first().copied() {
        Some("identity") => Ok(Activation::Identity),
        Some("relu") => Ok(Activation::Relu),
        Some("tanh") => Ok(Activation::Tanh),
        Some("sigmoid") => Ok(Activation::Sigmoid),
        Some("leaky_relu") => Ok(Activation::LeakyRelu(parse_param(tokens)?)),
        Some("softplus") => Ok(Activation::SoftplusScaled(parse_param(tokens)?)),
        other => Err(err(format!("unknown activation {other:?}"))),
    }
}

/// Serializes an MLP to the text format.
pub fn mlp_to_string(mlp: &Mlp) -> String {
    let specs = mlp.layer_specs();
    let mut out = String::new();
    out.push_str("mfcp-mlp v1\n");
    out.push_str(&format!("layers {}\n", specs.len()));
    for (weight, bias, activation) in specs {
        out.push_str(&format!(
            "layer {} {} {}\n",
            weight.rows(),
            weight.cols(),
            activation_tag(activation)
        ));
        for r in 0..weight.rows() {
            let row: Vec<String> = weight.row(r).iter().map(|v| format!("{v:e}")).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        let brow: Vec<String> = bias.row(0).iter().map(|v| format!("{v:e}")).collect();
        out.push_str("bias ");
        out.push_str(&brow.join(" "));
        out.push('\n');
    }
    out
}

/// Parses an MLP from the text format.
pub fn mlp_from_string(text: &str) -> Result<Mlp, ModelFormatError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| err("empty document"))?;
    if header.trim() != "mfcp-mlp v1" {
        return Err(err(format!("bad header {header:?}")));
    }
    let count_line = lines.next().ok_or_else(|| err("missing layer count"))?;
    let count: usize = count_line
        .trim()
        .strip_prefix("layers ")
        .ok_or_else(|| err("expected `layers <k>`"))?
        .parse()
        .map_err(|_| err("bad layer count"))?;
    if count == 0 {
        return Err(err("zero layers"));
    }
    if count > MAX_LAYERS {
        return Err(err(format!(
            "layer count {count} exceeds the limit of {MAX_LAYERS}"
        )));
    }
    let parse_floats = |line: &str| -> Result<Vec<f64>, ModelFormatError> {
        line.split_whitespace()
            .map(|t| {
                let v: f64 = t.parse().map_err(|_| err(format!("bad float {t:?}")))?;
                if v.is_finite() {
                    Ok(v)
                } else {
                    Err(err(format!("non-finite parameter {t:?}")))
                }
            })
            .collect()
    };
    let mut specs = Vec::with_capacity(count);
    for li in 0..count {
        let layer_line = lines
            .next()
            .ok_or_else(|| err(format!("missing layer header {li}")))?;
        let tokens: Vec<&str> = layer_line.split_whitespace().collect();
        if tokens.len() < 4 || tokens[0] != "layer" {
            return Err(err(format!("bad layer header {layer_line:?}")));
        }
        let rows: usize = tokens[1].parse().map_err(|_| err("bad layer rows"))?;
        let cols: usize = tokens[2].parse().map_err(|_| err("bad layer cols"))?;
        if rows == 0 || cols == 0 {
            return Err(err(format!("layer {li}: degenerate shape {rows}x{cols}")));
        }
        if rows > MAX_DIM || cols > MAX_DIM || rows.saturating_mul(cols) > MAX_LAYER_ELEMS {
            return Err(err(format!(
                "layer {li}: shape {rows}x{cols} exceeds the size limits"
            )));
        }
        let activation = parse_activation(&tokens[3..])?;
        let mut weight = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let row_line = lines
                .next()
                .ok_or_else(|| err(format!("missing weight row {r} of layer {li}")))?;
            let values = parse_floats(row_line)?;
            if values.len() != cols {
                return Err(err(format!(
                    "layer {li} row {r}: expected {cols} values, got {}",
                    values.len()
                )));
            }
            weight.row_mut(r).copy_from_slice(&values);
        }
        let bias_line = lines
            .next()
            .ok_or_else(|| err(format!("missing bias of layer {li}")))?;
        let bias_body = bias_line
            .trim()
            .strip_prefix("bias ")
            .ok_or_else(|| err("expected `bias <floats>`"))?;
        let bvalues = parse_floats(bias_body)?;
        if bvalues.len() != cols {
            return Err(err(format!(
                "layer {li}: bias expected {cols} values, got {}",
                bvalues.len()
            )));
        }
        specs.push((weight, Matrix::row_vector(&bvalues), activation));
    }
    // Shape consistency across layers.
    for w in specs.windows(2) {
        if w[0].0.cols() != w[1].0.rows() {
            return Err(err("incompatible consecutive layer shapes"));
        }
    }
    Ok(Mlp::from_layer_specs(specs))
}

/// Atomically replaces the file at `path` with `contents`.
///
/// The write goes to a `<name>.tmp` sibling first, is fsynced, and only
/// then renamed over `path`; on POSIX filesystems the rename is atomic,
/// so a reader (or a crash at any instant) sees either the complete old
/// file or the complete new file — never a partial document. The parent
/// directory is fsynced afterwards so the rename itself survives a power
/// loss. Checkpoint and snapshot writers throughout the workspace route
/// through this helper.
///
/// # Errors
/// [`PersistError::Io`] when any step fails; a failed rename cleans up
/// the temporary file.
pub fn atomic_write(path: impl AsRef<Path>, contents: &str) -> Result<(), PersistError> {
    use std::io::Write;
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("path {} has no file name", path.display()),
            )
        })?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(handle) = std::fs::File::open(dir) {
            // Directory fsync is best-effort: not every platform or
            // filesystem permits it, and the data rename already landed.
            handle.sync_all().ok();
        }
    }
    Ok(())
}

/// Saves an MLP to a file via [`atomic_write`], so a crash mid-save
/// never leaves a corrupt checkpoint where a good one was.
///
/// # Errors
/// [`PersistError::Io`] when the file cannot be written.
pub fn save_mlp(mlp: &Mlp, path: impl AsRef<Path>) -> Result<(), PersistError> {
    atomic_write(path, &mlp_to_string(mlp))
}

/// Loads an MLP from a file.
///
/// # Errors
/// [`PersistError::Io`] when the file cannot be read;
/// [`PersistError::Format`] when its content is truncated or corrupt.
pub fn load_mlp(path: impl AsRef<Path>) -> Result<Mlp, PersistError> {
    let text = std::fs::read_to_string(path)?;
    Ok(mlp_from_string(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(
            &[4, 7, 3, 1],
            Activation::LeakyRelu(0.02),
            Activation::SoftplusScaled(1.5),
            &mut rng,
        )
    }

    #[test]
    fn round_trip_is_exact() {
        let mlp = sample_mlp(1);
        let text = mlp_to_string(&mlp);
        let back = mlp_from_string(&text).unwrap();
        // {:e} formatting round-trips f64 exactly.
        let mut rng = StdRng::seed_from_u64(2);
        let x = mfcp_linalg::Matrix::from_fn(5, 4, |_, _| rng.gen_range(-1.0..1.0));
        assert!(mlp.predict(&x).approx_eq(&back.predict(&x), 0.0));
        for (a, b) in mlp.params().iter().zip(back.params()) {
            assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn all_activations_round_trip() {
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::LeakyRelu(0.1),
            Activation::SoftplusScaled(2.0),
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let mlp = Mlp::new(&[2, 3, 1], act, act, &mut rng);
            let back = mlp_from_string(&mlp_to_string(&mlp)).unwrap();
            assert_eq!(back.layer_specs()[0].2, act);
        }
    }

    #[test]
    fn file_round_trip() {
        let mlp = sample_mlp(5);
        let dir = std::env::temp_dir().join("mfcp_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save_mlp(&mlp, &path).unwrap();
        let back = load_mlp(&path).unwrap();
        assert_eq!(back.num_params(), mlp.num_params());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let mlp = sample_mlp(7);
        let good = mlp_to_string(&mlp);
        assert!(mlp_from_string("").is_err());
        assert!(mlp_from_string("wrong header\nlayers 1").is_err());
        assert!(mlp_from_string(&good.replace("mfcp-mlp v1", "mfcp-mlp v9")).is_err());
        // Truncate the document mid-layer.
        let truncated: String = good.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(mlp_from_string(&truncated).is_err());
        // Corrupt a float.
        let corrupted = good.replacen("e-", "x-", 1);
        assert!(mlp_from_string(&corrupted).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let text = "mfcp-mlp v1\nlayers 2\nlayer 2 3 relu\n1 2 3\n4 5 6\nbias 1 2 3\nlayer 4 1 identity\n1\n2\n3\n4\nbias 1\n";
        assert!(mlp_from_string(text).is_err());
    }

    #[test]
    fn rejects_hostile_sizes_without_allocating() {
        // A corrupted size field must come back as a typed error, not an
        // abort inside Vec::with_capacity / Matrix::zeros.
        let huge_layers = format!("mfcp-mlp v1\nlayers {}\n", usize::MAX);
        assert!(mlp_from_string(&huge_layers).is_err());
        let huge_dims = format!(
            "mfcp-mlp v1\nlayers 1\nlayer {} {} relu\n",
            usize::MAX,
            usize::MAX
        );
        assert!(mlp_from_string(&huge_dims).is_err());
        let big_product = "mfcp-mlp v1\nlayers 1\nlayer 60000 60000 relu\n";
        assert!(mlp_from_string(big_product).is_err());
        let zero_dim = "mfcp-mlp v1\nlayers 1\nlayer 0 3 relu\nbias 1 2 3\n";
        assert!(mlp_from_string(zero_dim).is_err());
    }

    #[test]
    fn rejects_non_finite_parameters() {
        let mlp = sample_mlp(9);
        let good = mlp_to_string(&mlp);
        // Swap one weight for NaN / inf; both must be typed errors rather
        // than silently loading a poisoned network.
        let first_weight = good
            .lines()
            .nth(3)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap();
        for bad in ["NaN", "inf", "-inf"] {
            let corrupted = good.replacen(first_weight, bad, 1);
            let e = mlp_from_string(&corrupted).unwrap_err();
            assert!(e.message.contains("non-finite"), "{e}");
        }
        assert!(
            mlp_from_string("mfcp-mlp v1\nlayers 1\nlayer 1 1 leaky_relu NaN\n1\nbias 1\n")
                .is_err()
        );
    }

    /// Env var that flips `kill_during_write_writer_loop` from a no-op
    /// test into an endless checkpoint writer (the victim process of
    /// `kill_during_write_never_corrupts`).
    const KILL_WRITER_ENV: &str = "MFCP_PERSIST_KILL_WRITER_PATH";

    /// No-op under normal test runs. When [`KILL_WRITER_ENV`] is set, this
    /// body becomes the victim of the kill test: it overwrites the same
    /// checkpoint path in a tight loop until the parent SIGKILLs it.
    #[test]
    fn kill_during_write_writer_loop() {
        let Ok(path) = std::env::var(KILL_WRITER_ENV) else {
            return;
        };
        // A model large enough (~1 MB of text) that kills land mid-write.
        let mut rng = StdRng::seed_from_u64(13);
        let big = Mlp::new(
            &[64, 192, 192, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let text = mlp_to_string(&big);
        loop {
            atomic_write(&path, &text).unwrap();
        }
    }

    #[test]
    fn kill_during_write_never_corrupts() {
        use std::process::{Command, Stdio};

        let dir = std::env::temp_dir().join(format!("mfcp_kill_write_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.mfcp");

        // Seed a known-good checkpoint so "old file survives" is testable.
        let mut rng = StdRng::seed_from_u64(17);
        let seed_mlp = Mlp::new(
            &[64, 192, 192, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        save_mlp(&seed_mlp, &path).unwrap();

        let exe = std::env::current_exe().unwrap();
        for cycle in 0..6 {
            let mut child = Command::new(&exe)
                .args(["kill_during_write_writer_loop", "--exact", "--nocapture"])
                .env(KILL_WRITER_ENV, &path)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn writer child");
            // Stagger the kill point across cycles so it lands at
            // different offsets inside the write+fsync+rename sequence.
            std::thread::sleep(std::time::Duration::from_millis(40 + 17 * cycle));
            child.kill().expect("SIGKILL the writer");
            child.wait().expect("reap the writer");

            // Whatever instant the kill landed at, the checkpoint path
            // must hold a complete, parseable document.
            let restored = load_mlp(&path)
                .unwrap_or_else(|e| panic!("cycle {cycle}: checkpoint corrupt after SIGKILL: {e}"));
            assert_eq!(restored.num_params(), seed_mlp.num_params());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("mfcp_atomic_write_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.txt");
        atomic_write(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(
            !dir.join("doc.txt.tmp").exists(),
            "temporary must not outlive a successful write"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_round_trip_surfaces_typed_errors() {
        let mlp = sample_mlp(11);
        let dir = std::env::temp_dir().join("mfcp_persist_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save_mlp(&mlp, &path).unwrap();

        // Truncate the checkpoint mid-document (a crashed writer).
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        match load_mlp(&path) {
            Err(PersistError::Format(e)) => assert!(!e.message.is_empty()),
            other => panic!("expected Format error, got {other:?}"),
        }

        // Missing file: an I/O error, distinguishable from corruption.
        std::fs::remove_file(&path).unwrap();
        match load_mlp(&path) {
            Err(PersistError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::NotFound)
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_dir(&dir).ok();
    }
}
