//! Activation functions applied between layers.

use mfcp_autodiff::{Graph, NodeId};

/// Elementwise activation applied by [`crate::Mlp`] layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// No activation.
    Identity,
    /// `max(0, x)`.
    Relu,
    /// `x` for `x > 0`, `alpha * x` otherwise.
    LeakyRelu(f64),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid — the reliability head, whose outputs are
    /// probabilities in `(0, 1)`.
    Sigmoid,
    /// `log(1 + exp(beta x)) / beta` — the execution-time head, whose
    /// outputs must stay strictly positive for the matching objective.
    SoftplusScaled(f64),
}

impl Activation {
    /// Records the activation on the graph.
    pub fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Identity => x,
            Activation::Relu => g.relu(x),
            Activation::LeakyRelu(alpha) => g.leaky_relu(x, alpha),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::SoftplusScaled(beta) => g.softplus_scaled(x, beta),
        }
    }

    /// Evaluates the activation on a plain scalar (no graph), used by
    /// inference-only paths.
    pub fn eval(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(alpha) => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::SoftplusScaled(beta) => {
                let bx = beta * x;
                if bx > 30.0 {
                    x
                } else {
                    bx.exp().ln_1p() / beta
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_linalg::Matrix;

    #[test]
    fn graph_and_eval_agree() {
        let xs = [-2.0, -0.5, 0.0, 0.7, 3.0];
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu(0.01),
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::SoftplusScaled(2.0),
        ] {
            let mut g = Graph::new();
            let x = g.input(Matrix::row_vector(&xs));
            let y = act.apply(&mut g, x);
            for (i, &xv) in xs.iter().enumerate() {
                let expected = act.eval(xv);
                assert!(
                    (g.value(y)[(0, i)] - expected).abs() < 1e-12,
                    "{act:?} at {xv}"
                );
            }
        }
    }

    #[test]
    fn sigmoid_in_unit_interval() {
        for x in [-50.0, -1.0, 0.0, 1.0, 50.0] {
            let v = Activation::Sigmoid.eval(x);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn softplus_positive_and_asymptotic() {
        let sp = Activation::SoftplusScaled(1.0);
        assert!(sp.eval(-10.0) > 0.0);
        // For large x, softplus(x) ≈ x.
        assert!((sp.eval(50.0) - 50.0).abs() < 1e-9);
    }
}
