//! Minimal neural-network library on top of `mfcp-autodiff`.
//!
//! MFCP's predictors `m_ω` (execution time) and `m_φ` (reliability) are
//! small fully-connected networks over fixed task features (the paper's
//! §4.1.1: a GNN embeds tasks, "in the subsequent predictor training, we
//! only utilized fully connected layers"). This crate provides everything
//! those predictors need:
//!
//! * [`Mlp`] — a multi-layer perceptron whose forward pass is recorded on
//!   an autodiff [`Graph`](mfcp_autodiff::Graph), so gradients can come
//!   either from a standard loss node (TSM's MSE training) or from an
//!   externally seeded adjoint (MFCP's decision-focused regret gradient).
//! * [`Activation`] — ReLU / LeakyReLU / Tanh / Sigmoid / scaled softplus
//!   (smooth positive outputs for execution times) / identity.
//! * [`init`] — Xavier and He initialization.
//! * [`Sgd`] / [`Adam`] behind the [`Optimizer`] trait, with
//!   [`LrSchedule`]s.
//! * [`DualHead`] — a small Adam-trained regression head (MSE, full-batch
//!   steps, non-finite rejection) backing the learned-duals warm-start
//!   path in `mfcp-optim`.
//! * [`data`] — deterministic shuffling, train/test splits, mini-batches.
//! * [`persist`] — dependency-free text serialization of trained models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
pub mod data;
mod dual_head;
pub mod init;
mod loss;
mod mlp;
mod optimizer;
pub mod persist;

pub use activation::Activation;
pub use dual_head::DualHead;
pub use loss::Loss;
pub use mlp::{Mlp, MlpPass};
pub use optimizer::{Adam, LrSchedule, Optimizer, Sgd};
