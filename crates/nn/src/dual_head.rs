//! A small regression head for predicting solver state from problem
//! features ("learned duals").
//!
//! [`DualHead`] is a thin training harness around [`Mlp`]: identity
//! output, full-batch Adam steps on an MSE loss, and a non-finite guard
//! that drops poisoned updates instead of corrupting the weights. The
//! head is deliberately generic — rows are samples, columns are
//! features/targets — so `mfcp-optim` can own the feature extraction
//! (problem → per-column features) without this crate depending on it.

use crate::{Activation, Adam, Mlp, Optimizer};
use mfcp_autodiff::Graph;
use mfcp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trainable regression head: `features (rows = samples) → targets`.
///
/// Wraps an [`Mlp`] with Tanh hidden layers and an identity output, plus
/// an [`Adam`] optimizer. [`DualHead::fit_step`] performs one full-batch
/// gradient step and rejects non-finite losses/gradients so a single bad
/// sample cannot destroy the model.
#[derive(Debug, Clone)]
pub struct DualHead {
    mlp: Mlp,
    opt: Adam,
    steps: u64,
}

impl DualHead {
    /// Builds a head mapping `input_dim` features to `output_dim` targets
    /// through the given hidden widths, trained with Adam at `lr`.
    /// Initialization is deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if `input_dim` or `output_dim` is zero.
    pub fn new(input_dim: usize, output_dim: usize, hidden: &[usize], lr: f64, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(output_dim > 0, "output_dim must be positive");
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(input_dim);
        dims.extend_from_slice(hidden);
        dims.push(output_dim);
        let mut rng = StdRng::seed_from_u64(seed);
        DualHead {
            mlp: Mlp::new(&dims, Activation::Tanh, Activation::Identity, &mut rng),
            opt: Adam::new(lr),
            steps: 0,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.mlp.input_dim()
    }

    /// Output (target) dimension.
    pub fn output_dim(&self) -> usize {
        self.mlp.output_dim()
    }

    /// Number of successful gradient steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs the head on a feature batch (`rows × input_dim`), returning
    /// `rows × output_dim` predictions.
    pub fn predict(&self, features: &Matrix) -> Matrix {
        self.mlp.predict(features)
    }

    /// One full-batch Adam step on the MSE between `predict(features)`
    /// and `targets`. Returns the pre-step loss, or `None` if the batch
    /// was rejected (shape mismatch, non-finite inputs, loss, or
    /// gradients) — rejected batches leave the weights untouched.
    pub fn fit_step(&mut self, features: &Matrix, targets: &Matrix) -> Option<f64> {
        if features.rows() == 0
            || features.rows() != targets.rows()
            || features.cols() != self.mlp.input_dim()
            || targets.cols() != self.mlp.output_dim()
        {
            return None;
        }
        let finite = |m: &Matrix| m.as_slice().iter().all(|v| v.is_finite());
        if !finite(features) || !finite(targets) {
            return None;
        }
        let mut g = Graph::new();
        let xi = g.input(features.clone());
        let pass = self.mlp.forward(&mut g, xi);
        let ti = g.input(targets.clone());
        let loss = g.mse(pass.output, ti);
        g.backward(loss);
        let loss_value = g.value(loss).as_slice()[0];
        let grads = self.mlp.grads(&g, &pass);
        if !loss_value.is_finite() || !grads.iter().all(finite) {
            return None;
        }
        let mut params = self.mlp.params_mut();
        self.opt.step(&mut params, &grads);
        self.steps += 1;
        Some(loss_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let a = DualHead::new(3, 2, &[8], 1e-2, 7);
        let b = DualHead::new(3, 2, &[8], 1e-2, 7);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3]]);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn fit_reduces_loss_on_linear_map() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs = Matrix::from_fn(48, 2, |_, _| rng.gen_range(-1.0..1.0));
        let ys = Matrix::from_fn(48, 2, |r, c| match c {
            0 => 0.5 * xs[(r, 0)] - xs[(r, 1)],
            _ => xs[(r, 0)] + 0.25 * xs[(r, 1)],
        });
        let mut head = DualHead::new(2, 2, &[16], 5e-3, 3);
        let first = head.fit_step(&xs, &ys).expect("clean batch accepted");
        let mut last = first;
        for _ in 0..300 {
            last = head.fit_step(&xs, &ys).expect("clean batch accepted");
        }
        assert!(
            last < first * 0.2,
            "training failed to reduce loss: {first} -> {last}"
        );
        assert_eq!(head.steps(), 301);
    }

    #[test]
    fn rejects_non_finite_batches_without_touching_weights() {
        let mut head = DualHead::new(2, 1, &[4], 1e-2, 5);
        let probe = Matrix::from_rows(&[&[0.4, -0.2]]);
        let before = head.predict(&probe);
        let bad_x = Matrix::from_rows(&[&[f64::NAN, 0.0]]);
        let y = Matrix::from_rows(&[&[1.0]]);
        assert!(head.fit_step(&bad_x, &y).is_none());
        let x = Matrix::from_rows(&[&[0.3, 0.1]]);
        let bad_y = Matrix::from_rows(&[&[f64::INFINITY]]);
        assert!(head.fit_step(&x, &bad_y).is_none());
        assert_eq!(head.steps(), 0);
        assert_eq!(head.predict(&probe), before);
    }

    #[test]
    fn rejects_shape_mismatches() {
        let mut head = DualHead::new(3, 1, &[4], 1e-2, 5);
        let x = Matrix::from_rows(&[&[0.1, 0.2]]); // wrong input width
        let y = Matrix::from_rows(&[&[1.0]]);
        assert!(head.fit_step(&x, &y).is_none());
        let x3 = Matrix::from_rows(&[&[0.1, 0.2, 0.3]]);
        let y2 = Matrix::from_rows(&[&[1.0, 2.0]]); // wrong target width
        assert!(head.fit_step(&x3, &y2).is_none());
    }
}
