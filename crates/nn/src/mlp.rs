//! The multi-layer perceptron.

use crate::init::{weight_matrix, Init};
use crate::Activation;
use mfcp_autodiff::{Graph, NodeId};
use mfcp_linalg::Matrix;
use rand::Rng;

/// One fully-connected layer: `y = act(x W + b)`.
#[derive(Debug, Clone)]
struct Linear {
    weight: Matrix, // in x out
    bias: Matrix,   // 1 x out
    activation: Activation,
}

/// A multi-layer perceptron over row-major batches.
///
/// Parameters live in the `Mlp` itself; each [`Mlp::forward`] call records
/// them as fresh graph inputs and returns an [`MlpPass`] remembering their
/// node ids so gradients can be pulled out after any backward sweep.
///
/// ```
/// use mfcp_autodiff::Graph;
/// use mfcp_linalg::Matrix;
/// use mfcp_nn::{Activation, Mlp};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[3, 8, 1], Activation::Relu, Activation::Identity, &mut rng);
/// let mut g = Graph::new();
/// let x = g.input(Matrix::from_rows(&[&[0.1, 0.2, 0.3]]));
/// let pass = mlp.forward(&mut g, x);
/// assert_eq!(g.value(pass.output).shape(), (1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// The record of one forward pass: the output node plus the graph nodes of
/// every parameter, in [`Mlp::params`] order.
#[derive(Debug, Clone)]
pub struct MlpPass {
    /// Network output node.
    pub output: NodeId,
    /// Parameter nodes in `params()` order (weight, bias per layer).
    pub param_nodes: Vec<NodeId>,
    /// The input node the pass was built from.
    pub input: NodeId,
}

impl Mlp {
    /// Builds an MLP with layer widths `dims` (at least two entries:
    /// input and output), `hidden` activation on every layer but the last
    /// and `output` activation on the last.
    ///
    /// Hidden weights use He initialization (paired with ReLU-family
    /// activations); the output layer uses Xavier.
    ///
    /// # Panics
    /// Panics if `dims.len() < 2`.
    pub fn new(dims: &[usize], hidden: Activation, output: Activation, rng: &mut impl Rng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let last = i == dims.len() - 2;
            let init = if last {
                Init::XavierUniform
            } else {
                Init::HeUniform
            };
            layers.push(Linear {
                weight: weight_matrix(init, dims[i], dims[i + 1], rng),
                bias: Matrix::zeros(1, dims[i + 1]),
                activation: if last { output } else { hidden },
            });
        }
        Mlp { layers }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].weight.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().weight.cols()
    }

    /// Number of parameter tensors (2 per layer).
    pub fn num_param_tensors(&self) -> usize {
        self.layers.len() * 2
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weight.len() + l.bias.len())
            .sum()
    }

    /// Immutable views of all parameter tensors (weight, bias per layer).
    pub fn params(&self) -> Vec<&Matrix> {
        self.layers
            .iter()
            .flat_map(|l| [&l.weight, &l.bias])
            .collect()
    }

    /// Mutable views of all parameter tensors, in [`Mlp::params`] order.
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.weight, &mut l.bias])
            .collect()
    }

    /// Records a forward pass for the batch at node `x` (`batch x in_dim`).
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> MlpPass {
        let mut param_nodes = Vec::with_capacity(self.num_param_tensors());
        let mut h = x;
        for layer in &self.layers {
            let w = g.input(layer.weight.clone());
            let b = g.input(layer.bias.clone());
            param_nodes.push(w);
            param_nodes.push(b);
            let z = g.matmul(h, w);
            let zb = g.add_row_broadcast(z, b);
            h = layer.activation.apply(g, zb);
        }
        MlpPass {
            output: h,
            param_nodes,
            input: x,
        }
    }

    /// Convenience: runs the network on a plain matrix without keeping the
    /// graph (inference only).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut g = Graph::new();
        let xi = g.input(x.clone());
        let pass = self.forward(&mut g, xi);
        g.value(pass.output).clone()
    }

    /// Extracts parameter gradients recorded on `g` for `pass`, in
    /// [`Mlp::params`] order. Parameters the sweep never reached get zero
    /// gradients of the right shape.
    pub fn grads(&self, g: &Graph, pass: &MlpPass) -> Vec<Matrix> {
        let params = self.params();
        pass.param_nodes
            .iter()
            .zip(params)
            .map(|(&node, p)| {
                g.grad(node)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols()))
            })
            .collect()
    }

    /// Layer specifications `(weight, bias, activation)` in forward order
    /// (used by the [`crate::persist`] serializer).
    pub fn layer_specs(&self) -> Vec<(&Matrix, &Matrix, Activation)> {
        self.layers
            .iter()
            .map(|l| (&l.weight, &l.bias, l.activation))
            .collect()
    }

    /// Reassembles an MLP from raw layer tensors (the inverse of
    /// [`Mlp::layer_specs`]).
    ///
    /// # Panics
    /// Panics if the list is empty or consecutive layer shapes are
    /// incompatible.
    pub fn from_layer_specs(specs: Vec<(Matrix, Matrix, Activation)>) -> Self {
        assert!(!specs.is_empty(), "need at least one layer");
        for window in specs.windows(2) {
            assert_eq!(
                window[0].0.cols(),
                window[1].0.rows(),
                "incompatible consecutive layer shapes"
            );
        }
        let layers = specs
            .into_iter()
            .map(|(weight, bias, activation)| {
                assert_eq!(bias.rows(), 1, "bias must be a row vector");
                assert_eq!(bias.cols(), weight.cols(), "bias width mismatch");
                Linear {
                    weight,
                    bias,
                    activation,
                }
            })
            .collect();
        Mlp { layers }
    }

    /// Applies `update[i]` additively to parameter tensor `i` (used by
    /// optimizers; most callers want [`crate::Optimizer::step`] instead).
    pub fn apply_update(&mut self, update: &[Matrix]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), update.len(), "update count mismatch");
        for (p, u) in params.iter_mut().zip(update) {
            **p += u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_autodiff::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, &mut rng)
    }

    #[test]
    fn shapes() {
        let mlp = tiny_mlp(0);
        assert_eq!(mlp.input_dim(), 2);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.num_param_tensors(), 4);
        assert_eq!(mlp.num_params(), 2 * 4 + 4 + 4 + 1);
        let y = mlp.predict(&Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]));
        assert_eq!(y.shape(), (2, 1));
    }

    #[test]
    fn forward_deterministic() {
        let mlp = tiny_mlp(1);
        let x = Matrix::from_rows(&[&[0.5, -0.5]]);
        assert_eq!(mlp.predict(&x), mlp.predict(&x));
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let mlp = tiny_mlp(2);
        let x = Matrix::from_rows(&[&[0.3, 0.8], &[-0.2, 0.4], &[0.9, -0.6]]);
        let target = Matrix::from_rows(&[&[0.5], &[-0.1], &[0.3]]);

        let mut g = Graph::new();
        let xi = g.input(x.clone());
        let pass = mlp.forward(&mut g, xi);
        let ti = g.input(target.clone());
        let loss = g.mse(pass.output, ti);
        g.backward(loss);
        let grads = mlp.grads(&g, &pass);

        // Check every parameter tensor against central differences.
        for (pi, analytic) in grads.iter().enumerate() {
            let numeric = {
                let base = mlp.clone();
                gradcheck::finite_diff(
                    mlp.params()[pi],
                    |perturbed| {
                        let mut m = base.clone();
                        *m.params_mut()[pi] = perturbed.clone();
                        let pred = m.predict(&x);
                        let d = &pred - &target;
                        d.as_slice().iter().map(|v| v * v).sum::<f64>() / pred.len() as f64
                    },
                    1e-6,
                )
            };
            let err = gradcheck::relative_error(analytic, &numeric);
            assert!(err < 1e-6, "param {pi}: relative error {err}");
        }
    }

    #[test]
    fn input_gradient_flows() {
        let mlp = tiny_mlp(3);
        let x = Matrix::from_rows(&[&[0.3, 0.8]]);
        let mut g = Graph::new();
        let xi = g.input(x);
        let pass = mlp.forward(&mut g, xi);
        let s = g.sum(pass.output);
        g.backward(s);
        assert!(g.grad(pass.input).is_some());
    }

    #[test]
    fn external_seed_produces_same_grads_as_equivalent_loss() {
        // Seeding the output with dL/dy must equal backprop through an
        // explicit loss with that gradient: here L = <c, y> so dL/dy = c.
        let mlp = tiny_mlp(4);
        let x = Matrix::from_rows(&[&[0.2, -0.4], &[0.6, 0.1]]);
        let c = Matrix::from_rows(&[&[2.0], &[-3.0]]);

        let mut g1 = Graph::new();
        let xi1 = g1.input(x.clone());
        let pass1 = mlp.forward(&mut g1, xi1);
        g1.backward_with_seed(pass1.output, c.clone());
        let seeded = mlp.grads(&g1, &pass1);

        let mut g2 = Graph::new();
        let xi2 = g2.input(x.clone());
        let pass2 = mlp.forward(&mut g2, xi2);
        let ci = g2.input(c);
        let weighted = g2.mul(pass2.output, ci);
        let loss = g2.sum(weighted);
        g2.backward(loss);
        let explicit = mlp.grads(&g2, &pass2);

        for (a, b) in seeded.iter().zip(&explicit) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        // Fit y = x0 - 2 x1 with plain gradient descent.
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(
            &[2, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        use rand::Rng;
        let xs = Matrix::from_fn(64, 2, |_, _| rng.gen_range(-1.0..1.0));
        let ys = Matrix::from_fn(64, 1, |r, _| xs[(r, 0)] - 2.0 * xs[(r, 1)]);

        let loss_at = |m: &Mlp| {
            let pred = m.predict(&xs);
            let d = &pred - &ys;
            d.frobenius_norm().powi(2) / 64.0
        };
        let initial = loss_at(&mlp);
        for _ in 0..200 {
            let mut g = Graph::new();
            let xi = g.input(xs.clone());
            let pass = mlp.forward(&mut g, xi);
            let ti = g.input(ys.clone());
            let loss = g.mse(pass.output, ti);
            g.backward(loss);
            let grads = mlp.grads(&g, &pass);
            let update: Vec<Matrix> = grads.iter().map(|gm| gm.scale(-0.05)).collect();
            mlp.apply_update(&update);
        }
        let fin = loss_at(&mlp);
        assert!(
            fin < initial * 0.2,
            "training failed to reduce loss: {initial} -> {fin}"
        );
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        Mlp::new(&[3], Activation::Relu, Activation::Identity, &mut rng);
    }
}
