//! Regression losses as graph builders.

use mfcp_autodiff::{Graph, NodeId};

/// Which regression loss to record on the graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Loss {
    /// Mean squared error.
    #[default]
    Mse,
    /// Mean Huber penalty with threshold `delta` — robust to the
    /// heavy-tailed residuals that memory-wall tasks produce.
    Huber {
        /// Residual magnitude where the penalty switches from quadratic
        /// to linear.
        delta: f64,
    },
}

impl Loss {
    /// Records `loss(pred, target)` on the graph as a `1 x 1` node.
    pub fn build(self, g: &mut Graph, pred: NodeId, target: NodeId) -> NodeId {
        match self {
            Loss::Mse => g.mse(pred, target),
            Loss::Huber { delta } => {
                let d = g.sub(pred, target);
                let h = g.huber(d, delta);
                g.mean(h)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_linalg::Matrix;

    #[test]
    fn mse_and_huber_agree_on_small_residuals() {
        // Inside the Huber threshold, huber = d²/2, so 2·huber == mse.
        let pred_m = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let target_m = Matrix::zeros(1, 3);
        let value = |loss: Loss| {
            let mut g = Graph::new();
            let p = g.input(pred_m.clone());
            let t = g.input(target_m.clone());
            let l = loss.build(&mut g, p, t);
            g.value(l)[(0, 0)]
        };
        let mse = value(Loss::Mse);
        let huber = value(Loss::Huber { delta: 1.0 });
        assert!((mse - 2.0 * huber).abs() < 1e-12);
    }

    #[test]
    fn huber_downweights_outliers() {
        // One large residual: Huber grows linearly, MSE quadratically.
        let small = Matrix::from_rows(&[&[10.0]]);
        let big = Matrix::from_rows(&[&[20.0]]);
        let target = Matrix::zeros(1, 1);
        let value = |loss: Loss, pred: &Matrix| {
            let mut g = Graph::new();
            let p = g.input(pred.clone());
            let t = g.input(target.clone());
            let l = loss.build(&mut g, p, t);
            g.value(l)[(0, 0)]
        };
        let mse_ratio = value(Loss::Mse, &big) / value(Loss::Mse, &small);
        let huber_ratio =
            value(Loss::Huber { delta: 1.0 }, &big) / value(Loss::Huber { delta: 1.0 }, &small);
        assert!((mse_ratio - 4.0).abs() < 1e-12);
        assert!(
            huber_ratio < 2.2,
            "Huber must grow ~linearly, got {huber_ratio}"
        );
    }

    #[test]
    fn gradients_flow_for_both() {
        for loss in [Loss::Mse, Loss::Huber { delta: 0.5 }] {
            let mut g = Graph::new();
            let p = g.input(Matrix::from_rows(&[&[1.0, -2.0]]));
            let t = g.input(Matrix::zeros(1, 2));
            let l = loss.build(&mut g, p, t);
            g.backward(l);
            let grad = g.grad(p).unwrap();
            assert!(grad.max_abs() > 0.0, "{loss:?}");
        }
    }
}
