//! Weight initialization schemes.

use mfcp_linalg::Matrix;
use rand::Rng;

/// Initialization scheme for a weight matrix of shape `fan_in x fan_out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Xavier/Glorot uniform: `U(-√(6/(fan_in+fan_out)), +√(...))`.
    XavierUniform,
    /// He/Kaiming uniform: `U(-√(6/fan_in), +√(6/fan_in))`; pairs with ReLU.
    HeUniform,
    /// All zeros (used for biases).
    Zeros,
}

/// Samples a `fan_in x fan_out` weight matrix.
pub fn weight_matrix(init: Init, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    match init {
        Init::XavierUniform => {
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-bound..bound))
        }
        Init::HeUniform => {
            let bound = (6.0 / fan_in.max(1) as f64).sqrt();
            Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-bound..bound))
        }
        Init::Zeros => Matrix::zeros(fan_in, fan_out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = weight_matrix(Init::XavierUniform, 10, 20, &mut rng);
        let bound = (6.0 / 30.0_f64).sqrt();
        assert!(w.max_abs() <= bound);
        assert_eq!(w.shape(), (10, 20));
        // Not degenerate: some spread.
        assert!(w.max_abs() > bound * 0.1);
    }

    #[test]
    fn he_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = weight_matrix(Init::HeUniform, 16, 4, &mut rng);
        assert!(w.max_abs() <= (6.0 / 16.0_f64).sqrt());
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = weight_matrix(Init::Zeros, 3, 3, &mut rng);
        assert_eq!(w.max_abs(), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let w1 = weight_matrix(Init::XavierUniform, 5, 5, &mut r1);
        let w2 = weight_matrix(Init::XavierUniform, 5, 5, &mut r2);
        assert_eq!(w1, w2);
    }
}
