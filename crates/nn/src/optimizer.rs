//! First-order optimizers and learning-rate schedules.

use mfcp_linalg::Matrix;

/// Learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f64),
    /// `base * decay^(epoch / step)` (integer division).
    StepDecay {
        /// Initial learning rate.
        base: f64,
        /// Multiplicative factor applied every `step` epochs.
        decay: f64,
        /// Epoch interval between decays.
        step: usize,
    },
    /// Cosine annealing from `base` down to `floor` over `total` epochs.
    Cosine {
        /// Initial learning rate.
        base: f64,
        /// Final learning rate.
        floor: f64,
        /// Annealing horizon in epochs.
        total: usize,
    },
}

impl LrSchedule {
    /// The learning rate at `epoch` (0-based).
    pub fn at(&self, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay { base, decay, step } => {
                base * decay.powi((epoch / step.max(1)) as i32)
            }
            LrSchedule::Cosine { base, floor, total } => {
                let t = (epoch.min(total)) as f64 / total.max(1) as f64;
                floor + 0.5 * (base - floor) * (1.0 + (std::f64::consts::PI * t).cos())
            }
        }
    }
}

/// A first-order optimizer updating a list of parameter tensors in place.
pub trait Optimizer {
    /// Applies one update step given gradients aligned with `params`.
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]);

    /// Resets any internal state (moments, velocity, step counters).
    fn reset(&mut self);

    /// Updates the learning rate (for schedules driven by the caller).
    fn set_lr(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum coefficient `momentum`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                **p += &g.scale(-self.lr);
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = v.scale(self.momentum).axpy(-self.lr, g).expect("shape");
            **p += v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction, optionally with
/// decoupled weight decay (AdamW; Loshchilov & Hutter, 2019).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with explicit moment coefficients.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        Adam {
            beta1,
            beta2,
            ..Adam::new(lr)
        }
    }

    /// AdamW: decoupled weight decay applied multiplicatively to the
    /// parameters each step (`p ← p · (1 − lr·wd)` before the Adam
    /// update), independent of the gradient moments.
    pub fn with_weight_decay(lr: f64, weight_decay: f64) -> Self {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.len() != params.len() {
            self.m = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        if self.weight_decay > 0.0 {
            let shrink = 1.0 - self.lr * self.weight_decay;
            for p in params.iter_mut() {
                **p = p.scale(shrink);
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = m
                .scale(self.beta1)
                .axpy(1.0 - self.beta1, g)
                .expect("shape");
            let g2 = g.hadamard(g).expect("shape");
            *v = v
                .scale(self.beta2)
                .axpy(1.0 - self.beta2, &g2)
                .expect("shape");
            let update = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                let mhat = m[(r, c)] / bc1;
                let vhat = v[(r, c)] / bc2;
                -self.lr * mhat / (vhat.sqrt() + self.eps)
            });
            **p += &update;
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² from x = 0 with the given optimizer.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = Matrix::from_vec(1, 1, vec![0.0]);
        for _ in 0..steps {
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (x[(0, 0)] - 3.0)]);
            let mut params = [&mut x];
            opt.step(&mut params, &[grad]);
        }
        x[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_quadratic(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = run_quadratic(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = run_quadratic(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // Zero gradients: AdamW still shrinks weights geometrically.
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        let mut x = Matrix::from_vec(1, 1, vec![1.0]);
        for _ in 0..10 {
            let grad = Matrix::zeros(1, 1);
            let mut params = [&mut x];
            opt.step(&mut params, &[grad]);
        }
        let expected = 0.95f64.powi(10);
        assert!((x[(0, 0)] - expected).abs() < 1e-9);
        // Plain Adam with zero gradient leaves parameters untouched.
        let mut opt = Adam::new(0.1);
        let mut y = Matrix::from_vec(1, 1, vec![1.0]);
        let mut params = [&mut y];
        opt.step(&mut params, &[Matrix::zeros(1, 1)]);
        assert_eq!(y[(0, 0)], 1.0);
    }

    #[test]
    fn adamw_still_converges_on_quadratic() {
        let mut opt = Adam::with_weight_decay(0.1, 0.01);
        let x = run_quadratic(&mut opt, 500);
        // Weight decay biases slightly toward zero but must stay close.
        assert!((x - 3.0).abs() < 0.2, "got {x}");
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut opt = Adam::new(0.1);
        run_quadratic(&mut opt, 10);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    fn schedules() {
        let c = LrSchedule::Constant(0.5);
        assert_eq!(c.at(0), 0.5);
        assert_eq!(c.at(100), 0.5);

        let s = LrSchedule::StepDecay {
            base: 1.0,
            decay: 0.5,
            step: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);

        let cos = LrSchedule::Cosine {
            base: 1.0,
            floor: 0.1,
            total: 100,
        };
        assert!((cos.at(0) - 1.0).abs() < 1e-12);
        assert!((cos.at(100) - 0.1).abs() < 1e-12);
        assert!(cos.at(50) < 1.0 && cos.at(50) > 0.1);
        // Monotone decreasing.
        assert!(cos.at(10) > cos.at(40));
    }

    #[test]
    #[should_panic(expected = "param/grad count mismatch")]
    fn count_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        let mut x = Matrix::zeros(1, 1);
        let mut params = [&mut x];
        opt.step(&mut params, &[]);
    }
}
