//! Dataset utilities: deterministic shuffles, splits and mini-batches.

use mfcp_linalg::Matrix;
use rand::Rng;

/// A supervised dataset of row-major features and targets.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n x d` feature matrix.
    pub features: Matrix,
    /// `n x k` target matrix.
    pub targets: Matrix,
}

impl Dataset {
    /// Creates a dataset; panics if row counts disagree.
    pub fn new(features: Matrix, targets: Matrix) -> Self {
        assert_eq!(
            features.rows(),
            targets.rows(),
            "feature/target row mismatch"
        );
        Dataset { features, targets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Selects the rows at `indices` into a new dataset.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let f = Matrix::from_fn(indices.len(), self.features.cols(), |r, c| {
            self.features[(indices[r], c)]
        });
        let t = Matrix::from_fn(indices.len(), self.targets.cols(), |r, c| {
            self.targets[(indices[r], c)]
        });
        Dataset {
            features: f,
            targets: t,
        }
    }

    /// Random split into `(train, test)` with `train_fraction` of samples
    /// in the training half (rounded down, but at least one sample in each
    /// half when `len() >= 2`).
    pub fn split(&self, train_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        shuffle(&mut idx, rng);
        let mut n_train = (self.len() as f64 * train_fraction) as usize;
        if self.len() >= 2 {
            n_train = n_train.clamp(1, self.len() - 1);
        }
        let (train_idx, test_idx) = idx.split_at(n_train);
        (self.select(train_idx), self.select(test_idx))
    }

    /// Iterates over shuffled mini-batches of up to `batch_size` rows.
    pub fn batches<'a, R: Rng>(
        &'a self,
        batch_size: usize,
        rng: &mut R,
    ) -> impl Iterator<Item = Dataset> + 'a {
        assert!(batch_size > 0);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        shuffle(&mut idx, rng);
        BatchIter {
            dataset: self,
            indices: idx,
            cursor: 0,
            batch_size,
        }
    }
}

struct BatchIter<'a> {
    dataset: &'a Dataset,
    indices: Vec<usize>,
    cursor: usize,
    batch_size: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = Dataset;

    fn next(&mut self) -> Option<Dataset> {
        if self.cursor >= self.indices.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.indices.len());
        let batch = self.dataset.select(&self.indices[self.cursor..end]);
        self.cursor = end;
        Some(batch)
    }
}

/// Fisher–Yates shuffle driven by the caller's RNG (deterministic under a
/// seeded RNG, which the experiment harness relies on).
pub fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        Dataset::new(
            Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f64),
            Matrix::from_fn(n, 1, |r, _| r as f64),
        )
    }

    #[test]
    fn select_picks_rows() {
        let d = toy(5);
        let s = d.select(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.targets[(0, 0)], 4.0);
        assert_eq!(s.targets[(1, 0)], 0.0);
        assert_eq!(s.features[(0, 1)], 9.0);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy(10);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.split(0.7, &mut rng);
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(train.len(), 7);
        // Together they cover all targets exactly once.
        let mut seen: Vec<f64> = train
            .targets
            .as_slice()
            .iter()
            .chain(test.targets.as_slice())
            .copied()
            .collect();
        seen.sort_by(f64::total_cmp);
        assert_eq!(seen, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_never_empty_for_two_plus() {
        let d = toy(2);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = d.split(0.01, &mut rng);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn batches_cover_dataset() {
        let d = toy(10);
        let mut rng = StdRng::seed_from_u64(3);
        let batches: Vec<Dataset> = d.batches(3, &mut rng).collect();
        assert_eq!(batches.len(), 4); // 3+3+3+1
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 10);
        assert_eq!(batches[3].len(), 1);
    }

    #[test]
    fn batch_size_larger_than_dataset() {
        let d = toy(3);
        let mut rng = StdRng::seed_from_u64(9);
        let batches: Vec<Dataset> = d.batches(10, &mut rng).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    fn shuffle_deterministic_under_seed() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        shuffle(&mut a, &mut StdRng::seed_from_u64(7));
        shuffle(&mut b, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..100).collect();
        shuffle(&mut c, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "feature/target row mismatch")]
    fn mismatched_rows_rejected() {
        Dataset::new(Matrix::zeros(3, 2), Matrix::zeros(4, 1));
    }
}
