//! Trace replay and the chaos harness.
//!
//! [`replay`] drives a daemon through a slice of trace events;
//! [`replay_with_kills`] is the chaos harness: at each kill point it
//! snapshots the daemon, throws the live instance away, restores a
//! fresh one from disk, and keeps going — the in-process equivalent of
//! a SIGKILL + restart (the process-level kill is exercised separately
//! by the `mfcp-nn` kill-during-write test and the `serve_replay`
//! binary). The differential chaos test asserts that both drivers end
//! in bit-identical matchings.
//!
//! Stragglers need no injection of their own: the trace generator
//! drops departures that fall past the end of the trace, so every
//! replay carries tasks that arrive and then never leave — the daemon
//! keeps re-matching around them to the last event.

use std::path::Path;

use crate::daemon::{DaemonConfig, ExchangeDaemon, MatrixSource};
use crate::state::{LastSolution, ServeCounters, SnapshotError};
use mfcp_platform::stream::TraceEvent;

/// What a replay run ended with.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Events applied across the whole run.
    pub events: u64,
    /// The final matching (None when the trace left no active tasks).
    pub last: Option<LastSolution>,
    /// SLO counters accumulated across the run (kills included — the
    /// counters are part of the snapshot).
    pub counters: ServeCounters,
}

/// Applies every event of `trace` past the daemon's cursor, then
/// flushes buffered arrivals with a final resolve.
pub fn replay(daemon: &mut ExchangeDaemon, trace: &[TraceEvent]) -> ReplayOutcome {
    let start = daemon.cursor() as usize;
    for event in &trace[start.min(trace.len())..] {
        daemon.apply(&event.event);
    }
    daemon.finish();
    ReplayOutcome {
        events: daemon.cursor(),
        last: daemon.last_solution().cloned(),
        counters: daemon.counters(),
    }
}

/// Chaos replay: runs the trace but kills and restores the daemon from
/// a fresh snapshot at each cursor position in `kill_points`
/// (out-of-range or duplicate points are ignored). `make_source`
/// rebuilds the static serving configuration for each resurrected
/// daemon, exactly as a restarted process would.
pub fn replay_with_kills(
    trace: &[TraceEvent],
    config: &DaemonConfig,
    make_source: impl Fn() -> MatrixSource,
    snapshot_dir: &Path,
    kill_points: &[usize],
) -> Result<ReplayOutcome, SnapshotError> {
    let mut points: Vec<usize> = kill_points
        .iter()
        .copied()
        .filter(|&p| p > 0 && p < trace.len())
        .collect();
    points.sort_unstable();
    points.dedup();

    let mut daemon = ExchangeDaemon::new(config.clone(), make_source());
    for &point in &points {
        while (daemon.cursor() as usize) < point {
            daemon.apply(&trace[daemon.cursor() as usize].event);
        }
        daemon.snapshot(snapshot_dir)?;
        // Kill: the live daemon (cache, solver state, everything not on
        // disk) is dropped on the floor, exactly like a SIGKILL.
        drop(daemon);
        daemon = ExchangeDaemon::restore(snapshot_dir, config.clone(), make_source())?;
        debug_assert_eq!(daemon.cursor() as usize, point);
        #[cfg(feature = "strict-determinism")]
        {
            // Snapshot round-trip stability: re-snapshotting the daemon
            // we just restored must reproduce the on-disk bytes exactly,
            // or resumed state has silently drifted from persisted state.
            let before = std::fs::read_to_string(snapshot_dir.join(crate::state::SNAPSHOT_FILE))?;
            daemon.snapshot(snapshot_dir)?;
            let after = std::fs::read_to_string(snapshot_dir.join(crate::state::SNAPSHOT_FILE))?;
            assert_eq!(
                before, after,
                "snapshot is not round-trip stable at cursor {point}"
            );
        }
    }
    Ok(replay(&mut daemon, trace))
}
