//! Online serving for the computing resource exchange.
//!
//! Everything else in the workspace is batch: train predictors, solve a
//! matching, report. The paper's platform, though, operates
//! continuously — tasks arrive and depart all day, clusters drop out
//! and rejoin, and the exchange must keep a current matching through
//! all of it. This crate is that serving layer, hardened end to end:
//!
//! * [`daemon`] — the event loop: admission control with a bounded
//!   pending queue and load shedding, incremental warm-started
//!   re-solves through `RobustSolver::solve_with_cache`, per-resolve
//!   deadline budgets with cooperative cancellation, and degraded
//!   greedy-only mode under overload.
//! * [`state`] — crash-consistent snapshot/restore: the full exchange
//!   state round-trips through a versioned text document written
//!   atomically (temp file + fsync + rename), so the daemon can be
//!   SIGKILLed at any instant and resume deterministically.
//! * [`replay`] — the trace-replay driver and the chaos harness
//!   (kill/restore mid-stream); the differential test demands
//!   bit-identical final matchings with and without kills.
//!
//! SLO accounting (`serve.admitted`, `serve.shed`,
//! `serve.deadline_miss`, `serve.match_latency_secs`, `serve.resolve`
//! spans and friends) flows through `mfcp-obs` like the rest of the
//! pipeline. See DESIGN.md, "Online serving and crash recovery".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod replay;
pub mod state;

pub use daemon::{DaemonConfig, ExchangeDaemon, MatrixSource};
pub use replay::{replay, replay_with_kills, ReplayOutcome};
pub use state::{ExchangeState, LastSolution, ServeCounters, SnapshotError};
