//! Crash-consistent serialization of the exchange state.
//!
//! The daemon's entire mutable state — trace cursor, active and pending
//! task sets, cluster outage mask, last assignment, warm-start cache,
//! and SLO counters — round-trips through a line-oriented text document
//! with a versioned header (`mfcp-serve-snapshot v1`), in the same
//! dependency-free style as the `mfcp-nn` checkpoint format. Floats are
//! written with `{:e}` round-trip precision, so a restored daemon
//! resumes with bit-identical numeric state; writes go through
//! [`mfcp_nn::persist::atomic_write`] (temp file + fsync + rename), so
//! a kill at any instant leaves either the previous complete snapshot
//! or the new complete snapshot — never a torn one.
//!
//! Learned predictors are not inlined in the document: they reuse the
//! `mfcp-core` checkpoint format (one `cluster_<i>.mfcp` per cluster,
//! also written atomically) in a `predictors/` directory next to the
//! snapshot, and the document records only their count.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::Path;

use mfcp_linalg::Matrix;
use mfcp_optim::{KktStructure, WarmStartCache, WarmStartEntry};
use mfcp_platform::task::{Corpus, TaskFamily, TaskSpec};

/// Versioned first line of every snapshot document.
pub const SNAPSHOT_HEADER: &str = "mfcp-serve-snapshot v1";

/// File name of the snapshot document inside a snapshot directory.
pub const SNAPSHOT_FILE: &str = "state.snap";

/// Subdirectory holding the learned-predictor checkpoint, when present.
pub const PREDICTOR_DIR: &str = "predictors";

/// Errors from writing or reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing a file failed.
    Io(std::io::Error),
    /// The document was read but is not a valid snapshot (truncated,
    /// corrupted, or an unsupported version).
    Format(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(m) => write!(f, "snapshot format error: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn err(message: impl Into<String>) -> SnapshotError {
    SnapshotError::Format(message.into())
}

/// SLO accounting persisted with the daemon (the counters a restored
/// daemon keeps incrementing, so a day's totals survive a crash).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Arrivals accepted into the pending queue.
    pub admitted: u64,
    /// Arrivals rejected by admission control.
    pub shed: u64,
    /// Resolves whose solve blew the request deadline (and degraded).
    pub deadline_miss: u64,
    /// Matching solves performed.
    pub resolves: u64,
    /// Resolves forced onto the greedy-only ladder by overload.
    pub degraded: u64,
    /// High-water mark of the pending queue.
    pub max_pending_seen: u64,
}

/// The last solved assignment, kept for warm-starting the next resolve
/// and reported as the daemon's current matching.
#[derive(Debug, Clone, PartialEq)]
pub struct LastSolution {
    /// Task ids in column order of `x`.
    pub ids: Vec<u64>,
    /// Column-stochastic assignment over the full cluster pool.
    pub x: Matrix,
    /// Objective at `x`.
    pub objective: f64,
}

/// Everything the daemon must persist to resume deterministically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExchangeState {
    /// Number of trace events already applied.
    pub cursor: u64,
    /// Running tasks by id (ordered, so matrix columns are stable).
    pub active: BTreeMap<u64, TaskSpec>,
    /// Admitted tasks awaiting the next resolve.
    pub pending: VecDeque<(u64, TaskSpec)>,
    /// Clusters currently in outage.
    pub down: BTreeSet<usize>,
    /// Last solved matching, if any.
    pub last: Option<LastSolution>,
    /// SLO counters.
    pub counters: ServeCounters,
}

fn family_tag(f: TaskFamily) -> &'static str {
    match f {
        TaskFamily::Cnn => "cnn",
        TaskFamily::Transformer => "transformer",
        TaskFamily::Rnn => "rnn",
    }
}

fn corpus_tag(c: Corpus) -> &'static str {
    match c {
        Corpus::Cifar10 => "cifar10",
        Corpus::ImageNet => "imagenet",
        Corpus::Europarl => "europarl",
    }
}

fn parse_family(tag: &str) -> Result<TaskFamily, SnapshotError> {
    match tag {
        "cnn" => Ok(TaskFamily::Cnn),
        "transformer" => Ok(TaskFamily::Transformer),
        "rnn" => Ok(TaskFamily::Rnn),
        other => Err(err(format!("unknown task family {other:?}"))),
    }
}

fn parse_corpus(tag: &str) -> Result<Corpus, SnapshotError> {
    match tag {
        "cifar10" => Ok(Corpus::Cifar10),
        "imagenet" => Ok(Corpus::ImageNet),
        "europarl" => Ok(Corpus::Europarl),
        other => Err(err(format!("unknown corpus {other:?}"))),
    }
}

fn push_task(out: &mut String, id: u64, spec: &TaskSpec) {
    out.push_str(&format!(
        "task {id} {} {} {} {} {}\n",
        family_tag(spec.family),
        corpus_tag(spec.corpus),
        spec.depth,
        spec.width,
        spec.batch_size
    ));
}

fn parse_task(line: &str) -> Result<(u64, TaskSpec), SnapshotError> {
    let t: Vec<&str> = line.split_whitespace().collect();
    if t.len() != 7 || t[0] != "task" {
        return Err(err(format!("bad task line {line:?}")));
    }
    let parse_usize = |s: &str| -> Result<usize, SnapshotError> {
        s.parse().map_err(|_| err(format!("bad integer {s:?}")))
    };
    Ok((
        t[1].parse().map_err(|_| err("bad task id"))?,
        TaskSpec {
            family: parse_family(t[2])?,
            corpus: parse_corpus(t[3])?,
            depth: parse_usize(t[4])?,
            width: parse_usize(t[5])?,
            batch_size: parse_usize(t[6])?,
        },
    ))
}

fn push_matrix(out: &mut String, tag: &str, x: &Matrix) {
    for r in 0..x.rows() {
        let row: Vec<String> = x.row(r).iter().map(|v| format!("{v:e}")).collect();
        out.push_str(tag);
        out.push(' ');
        out.push_str(&row.join(" "));
        out.push('\n');
    }
}

fn parse_floats(body: &str) -> Result<Vec<f64>, SnapshotError> {
    body.split_whitespace()
        .map(|t| {
            t.parse::<f64>()
                .map_err(|_| err(format!("bad float {t:?}")))
        })
        .collect()
}

/// Hard caps applied when parsing untrusted snapshot sizes (a corrupted
/// count must produce a typed error, not a huge allocation).
const MAX_TASKS: usize = 1 << 20;
const MAX_DIM: usize = 1 << 16;

fn parse_count(s: &str, cap: usize, what: &str) -> Result<usize, SnapshotError> {
    let v: usize = s.parse().map_err(|_| err(format!("bad {what} count")))?;
    if v > cap {
        return Err(err(format!("{what} count {v} exceeds the limit of {cap}")));
    }
    Ok(v)
}

fn next_field<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    name: &str,
) -> Result<Vec<String>, SnapshotError> {
    let line = lines.next().ok_or_else(|| err(format!("missing {name}")))?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some(name) {
        return Err(err(format!("expected `{name} ...`, got {line:?}")));
    }
    Ok(parts.map(str::to_owned).collect())
}

fn parse_matrix<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    m: usize,
    n: usize,
) -> Result<Matrix, SnapshotError> {
    let mut x = Matrix::zeros(m, n);
    for r in 0..m {
        let line = lines
            .next()
            .ok_or_else(|| err(format!("missing {tag} row {r}")))?;
        let body = line
            .strip_prefix(tag)
            .ok_or_else(|| err(format!("expected `{tag} <floats>`, got {line:?}")))?;
        let values = parse_floats(body)?;
        if values.len() != n {
            return Err(err(format!(
                "{tag} row {r}: expected {n} values, got {}",
                values.len()
            )));
        }
        x.row_mut(r).copy_from_slice(&values);
    }
    Ok(x)
}

/// Serializes the state plus the warm-start cache to the snapshot
/// document. `predictor_count` records how many learned predictors were
/// checkpointed alongside (0 for ground-truth serving).
pub fn to_document(
    state: &ExchangeState,
    cache: &WarmStartCache,
    predictor_count: usize,
) -> String {
    let mut out = String::new();
    out.push_str(SNAPSHOT_HEADER);
    out.push('\n');
    out.push_str(&format!("cursor {}\n", state.cursor));
    let c = &state.counters;
    out.push_str(&format!(
        "counters {} {} {} {} {} {}\n",
        c.admitted, c.shed, c.deadline_miss, c.resolves, c.degraded, c.max_pending_seen
    ));
    let down: Vec<String> = state.down.iter().map(|i| i.to_string()).collect();
    out.push_str(&format!("down {} {}\n", down.len(), down.join(" ")));
    out.push_str(&format!("active {}\n", state.active.len()));
    for (id, spec) in &state.active {
        push_task(&mut out, *id, spec);
    }
    out.push_str(&format!("pending {}\n", state.pending.len()));
    for (id, spec) in &state.pending {
        push_task(&mut out, *id, spec);
    }
    match &state.last {
        None => out.push_str("last none\n"),
        Some(last) => {
            let (m, n) = last.x.shape();
            out.push_str(&format!("last {m} {n} {:e}\n", last.objective));
            let ids: Vec<String> = last.ids.iter().map(|i| i.to_string()).collect();
            out.push_str(&format!("ids {}\n", ids.join(" ")));
            push_matrix(&mut out, "xrow", &last.x);
        }
    }
    let entries = cache.entries_sorted();
    out.push_str(&format!("cache {} {}\n", cache.generation(), entries.len()));
    for (key, entry) in entries {
        let (m, n) = entry.x.shape();
        out.push_str(&format!(
            "entry {key} {} {m} {n} {:e} {}\n",
            entry.stored_at,
            entry.objective,
            if entry.kkt.is_some() { 1 } else { 0 }
        ));
        push_matrix(&mut out, "xrow", &entry.x);
        let duals: Vec<String> = entry.duals.iter().map(|v| format!("{v:e}")).collect();
        out.push_str(&format!("duals {}\n", duals.join(" ")));
    }
    out.push_str(&format!("predictors {predictor_count}\n"));
    out.push_str("end\n");
    out
}

/// Parses a snapshot document back into state, a warm-start cache
/// rebuilt with `cache_template`'s configuration, and the predictor
/// count. Lookups/stat counters of the cache restart from zero — only
/// state that affects solve results (entries, generation) is persisted.
pub fn from_document(
    text: &str,
    cache_template: &WarmStartCache,
) -> Result<(ExchangeState, WarmStartCache, usize), SnapshotError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| err("empty document"))?;
    if header.trim() != SNAPSHOT_HEADER {
        return Err(err(format!("bad header {header:?}")));
    }

    let cursor_parts = next_field(&mut lines, "cursor")?;
    let cursor: u64 = cursor_parts
        .first()
        .ok_or_else(|| err("missing cursor value"))?
        .parse()
        .map_err(|_| err("bad cursor"))?;

    let c = next_field(&mut lines, "counters")?;
    if c.len() != 6 {
        return Err(err("counters line must carry 6 values"));
    }
    let parse_u64 = |s: &String| -> Result<u64, SnapshotError> {
        s.parse().map_err(|_| err(format!("bad counter {s:?}")))
    };
    let counters = ServeCounters {
        admitted: parse_u64(&c[0])?,
        shed: parse_u64(&c[1])?,
        deadline_miss: parse_u64(&c[2])?,
        resolves: parse_u64(&c[3])?,
        degraded: parse_u64(&c[4])?,
        max_pending_seen: parse_u64(&c[5])?,
    };

    let d = next_field(&mut lines, "down")?;
    let down_count = parse_count(
        d.first().ok_or_else(|| err("missing down count"))?,
        MAX_DIM,
        "down",
    )?;
    if d.len() != down_count + 1 {
        return Err(err("down line length mismatch"));
    }
    let down: BTreeSet<usize> = d[1..]
        .iter()
        .map(|s| {
            s.parse()
                .map_err(|_| err(format!("bad cluster index {s:?}")))
        })
        .collect::<Result<_, _>>()?;

    let a = next_field(&mut lines, "active")?;
    let active_count = parse_count(
        a.first().ok_or_else(|| err("missing active count"))?,
        MAX_TASKS,
        "active",
    )?;
    let mut active = BTreeMap::new();
    for _ in 0..active_count {
        let line = lines.next().ok_or_else(|| err("missing active task"))?;
        let (id, spec) = parse_task(line)?;
        active.insert(id, spec);
    }

    let p = next_field(&mut lines, "pending")?;
    let pending_count = parse_count(
        p.first().ok_or_else(|| err("missing pending count"))?,
        MAX_TASKS,
        "pending",
    )?;
    let mut pending = VecDeque::new();
    for _ in 0..pending_count {
        let line = lines.next().ok_or_else(|| err("missing pending task"))?;
        pending.push_back(parse_task(line)?);
    }

    let l = next_field(&mut lines, "last")?;
    let last = match l.first().map(String::as_str) {
        Some("none") => None,
        Some(m_str) => {
            if l.len() != 3 {
                return Err(err("last line must be `last <m> <n> <objective>`"));
            }
            let m = parse_count(m_str, MAX_DIM, "last rows")?;
            let n = parse_count(&l[1], MAX_TASKS, "last cols")?;
            let objective: f64 = l[2].parse().map_err(|_| err("bad objective"))?;
            let ids_line = lines.next().ok_or_else(|| err("missing ids"))?;
            let ids_body = ids_line
                .strip_prefix("ids")
                .ok_or_else(|| err("expected `ids ...`"))?;
            let ids: Vec<u64> = ids_body
                .split_whitespace()
                .map(|s| s.parse().map_err(|_| err(format!("bad id {s:?}"))))
                .collect::<Result<_, _>>()?;
            if ids.len() != n {
                return Err(err("ids length does not match assignment columns"));
            }
            let x = parse_matrix(&mut lines, "xrow", m, n)?;
            Some(LastSolution { ids, x, objective })
        }
        None => return Err(err("missing last value")),
    };

    let cache_line = next_field(&mut lines, "cache")?;
    if cache_line.len() != 2 {
        return Err(err("cache line must be `cache <generation> <entries>`"));
    }
    let generation: u64 = cache_line[0].parse().map_err(|_| err("bad generation"))?;
    let entry_count = parse_count(&cache_line[1], MAX_TASKS, "cache entry")?;
    let mut cache = WarmStartCache::with_config(cache_template.config());
    cache.set_generation(generation);
    for _ in 0..entry_count {
        let e = next_field(&mut lines, "entry")?;
        if e.len() != 6 {
            return Err(err("entry line must carry 6 values"));
        }
        let key: u64 = e[0].parse().map_err(|_| err("bad entry key"))?;
        let stored_at: u64 = e[1].parse().map_err(|_| err("bad entry stamp"))?;
        let m = parse_count(&e[2], MAX_DIM, "entry rows")?;
        let n = parse_count(&e[3], MAX_TASKS, "entry cols")?;
        let objective: f64 = e[4].parse().map_err(|_| err("bad entry objective"))?;
        let has_kkt = e[5] == "1";
        let x = parse_matrix(&mut lines, "xrow", m, n)?;
        let duals_line = lines.next().ok_or_else(|| err("missing duals"))?;
        let duals = parse_floats(
            duals_line
                .strip_prefix("duals")
                .ok_or_else(|| err("expected `duals ...`"))?,
        )?;
        if duals.len() != n {
            return Err(err("duals length does not match entry columns"));
        }
        cache.insert_preserving_age(
            key,
            WarmStartEntry {
                x,
                objective,
                duals,
                kkt: has_kkt.then(|| KktStructure::for_shape(m, n)),
                stored_at,
            },
        );
    }

    let pred = next_field(&mut lines, "predictors")?;
    let predictor_count = parse_count(
        pred.first().ok_or_else(|| err("missing predictor count"))?,
        MAX_DIM,
        "predictor",
    )?;
    if lines.next().map(str::trim) != Some("end") {
        return Err(err("missing end marker (truncated document)"));
    }

    Ok((
        ExchangeState {
            cursor,
            active,
            pending,
            down,
            last,
            counters,
        },
        cache,
        predictor_count,
    ))
}

/// Atomically writes the snapshot document into `dir` (creating it).
pub fn write_snapshot(
    dir: &Path,
    state: &ExchangeState,
    cache: &WarmStartCache,
    predictor_count: usize,
) -> Result<(), SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let doc = to_document(state, cache, predictor_count);
    mfcp_nn::persist::atomic_write(dir.join(SNAPSHOT_FILE), &doc).map_err(|e| match e {
        mfcp_nn::persist::PersistError::Io(io) => SnapshotError::Io(io),
        other => err(other.to_string()),
    })
}

/// Reads the snapshot document from `dir`.
pub fn read_snapshot(
    dir: &Path,
    cache_template: &WarmStartCache,
) -> Result<(ExchangeState, WarmStartCache, usize), SnapshotError> {
    let text = std::fs::read_to_string(dir.join(SNAPSHOT_FILE))?;
    from_document(&text, cache_template)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ExchangeState {
        let spec = TaskSpec {
            family: TaskFamily::Transformer,
            corpus: Corpus::Europarl,
            depth: 12,
            width: 256,
            batch_size: 32,
        };
        let mut active = BTreeMap::new();
        active.insert(3, spec.clone());
        active.insert(
            7,
            TaskSpec {
                family: TaskFamily::Cnn,
                corpus: Corpus::Cifar10,
                depth: 8,
                width: 64,
                batch_size: 128,
            },
        );
        let mut pending = VecDeque::new();
        pending.push_back((9, spec));
        let x = Matrix::from_rows(&[&[0.25, 0.5], &[0.75, 0.5]]);
        ExchangeState {
            cursor: 41,
            active,
            pending,
            down: [1usize].into_iter().collect(),
            last: Some(LastSolution {
                ids: vec![3, 7],
                x,
                objective: 1.5e-3,
            }),
            counters: ServeCounters {
                admitted: 10,
                shed: 2,
                deadline_miss: 1,
                resolves: 5,
                degraded: 1,
                max_pending_seen: 4,
            },
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let state = sample_state();
        let mut cache = WarmStartCache::new();
        cache.set_generation(6);
        cache.insert_preserving_age(
            99,
            WarmStartEntry {
                x: Matrix::from_rows(&[&[0.1, 0.9], &[0.9, 0.1]]),
                objective: -2.5,
                duals: vec![0.5, -0.5],
                kkt: Some(KktStructure::for_shape(2, 2)),
                stored_at: 4,
            },
        );
        let doc = to_document(&state, &cache, 3);
        let (back, back_cache, preds) = from_document(&doc, &WarmStartCache::new()).unwrap();
        assert_eq!(back, state);
        assert_eq!(preds, 3);
        assert_eq!(back_cache.generation(), 6);
        let entries = back_cache.entries_sorted();
        assert_eq!(entries.len(), 1);
        let (key, entry) = &entries[0];
        assert_eq!(*key, 99);
        assert_eq!(entry.stored_at, 4);
        assert_eq!(entry.objective.to_bits(), (-2.5f64).to_bits());
        assert!(entry.kkt.is_some());
        // Serialization is itself deterministic.
        assert_eq!(doc, to_document(&back, &back_cache, preds));
    }

    #[test]
    fn rejects_corruption() {
        let state = sample_state();
        let cache = WarmStartCache::new();
        let doc = to_document(&state, &cache, 0);
        let template = WarmStartCache::new();
        assert!(from_document("", &template).is_err());
        assert!(from_document("mfcp-serve-snapshot v9\n", &template).is_err());
        // Truncation anywhere must fail loudly, not load partial state.
        let lines: Vec<&str> = doc.lines().collect();
        for cut in 1..lines.len() {
            let partial = lines[..cut].join("\n");
            assert!(
                from_document(&partial, &template).is_err(),
                "truncation at line {cut} must be rejected"
            );
        }
        // A corrupted float must be a typed error.
        let corrupted = doc.replacen("e-", "x-", 1);
        assert!(from_document(&corrupted, &template).is_err());
        // A hostile count must not allocate.
        let hostile = doc.replace("active 2", &format!("active {}", u64::MAX));
        assert!(from_document(&hostile, &template).is_err());
    }
}
