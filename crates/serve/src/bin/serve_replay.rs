//! Trace-replay driver and CI smoke check for the exchange daemon.
//!
//! Generates a synthetic arrival/departure/outage trace, replays it
//! through an [`ExchangeDaemon`], and prints an SLO summary (admit /
//! shed / deadline-miss counters plus match-latency percentiles). With
//! `--kills N` it additionally runs the chaos harness — snapshotting,
//! discarding, and restoring the daemon at `N` evenly spaced points —
//! and exits nonzero unless the chaotic run ends bit-for-bit identical
//! to the straight one. CI runs a short trace with one kill/resume as
//! its smoke job.
//!
//! ```text
//! serve_replay [--seed N] [--duration SECS] [--interarrival SECS]
//!              [--service SECS] [--kills N] [--deadline-ms N]
//!              [--dir PATH] [--out PATH] [--metrics-addr HOST:PORT]
//! ```
//!
//! `--metrics-addr` starts the live ops surface (`mfcp_obs::http`) on
//! the daemon for the duration of the run — CI curls `/healthz`,
//! `/metrics`, and `/slo` against a backgrounded replay as its ops
//! smoke test.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use mfcp_platform::prelude::{ClusterPool, Setting};
use mfcp_platform::stream::{generate_trace, TraceConfig};
use mfcp_serve::{replay_with_kills, DaemonConfig, ExchangeDaemon, MatrixSource, ReplayOutcome};

struct Args {
    seed: u64,
    duration_secs: f64,
    interarrival_secs: f64,
    service_secs: f64,
    kills: usize,
    deadline_ms: Option<u64>,
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
    metrics_addr: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 7,
            duration_secs: 86_400.0,
            interarrival_secs: 300.0,
            service_secs: 7_200.0,
            kills: 0,
            deadline_ms: None,
            dir: None,
            out: None,
            metrics_addr: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                args.duration_secs = value("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--interarrival" => {
                args.interarrival_secs = value("--interarrival")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--service" => {
                args.service_secs = value("--service")?.parse().map_err(|e| format!("{e}"))?
            }
            "--kills" => args.kills = value("--kills")?.parse().map_err(|e| format!("{e}"))?,
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--dir" => args.dir = Some(PathBuf::from(value("--dir")?)),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--help" | "-h" => {
                println!(
                    "serve_replay [--seed N] [--duration SECS] [--interarrival SECS] \
                     [--service SECS] [--kills N] [--deadline-ms N] [--dir PATH] [--out PATH] \
                     [--metrics-addr HOST:PORT]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn source() -> MatrixSource {
    MatrixSource::GroundTruth(ClusterPool::standard().setting(Setting::A))
}

/// Empty histograms quantile to NaN; the JSON artifact stays strict by
/// writing `null` instead.
fn num_or_null(v: f64) -> String {
    if v.is_finite() {
        mfcp_obs::json::number(v)
    } else {
        "null".to_string()
    }
}

fn bits(outcome: &ReplayOutcome) -> Option<(Vec<u64>, u64, Vec<u64>)> {
    outcome.last.as_ref().map(|last| {
        (
            last.ids.clone(),
            last.objective.to_bits(),
            last.x.as_slice().iter().map(|v| v.to_bits()).collect(),
        )
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_replay: {e}");
            std::process::exit(2);
        }
    };

    let trace = generate_trace(&TraceConfig {
        seed: args.seed,
        duration_secs: args.duration_secs,
        mean_interarrival_secs: args.interarrival_secs,
        mean_service_secs: args.service_secs,
        ..TraceConfig::default()
    });
    let config = DaemonConfig {
        deadline: args.deadline_ms.map(Duration::from_millis),
        metrics_addr: args.metrics_addr.clone(),
        ..DaemonConfig::default()
    };
    println!(
        "trace: {} events over {:.0}s (seed {})",
        trace.len(),
        args.duration_secs,
        args.seed
    );

    mfcp_obs::reset();
    let started = std::time::Instant::now();
    let mut daemon = ExchangeDaemon::new(config.clone(), source());
    if let Some(addr) = daemon.ops_addr() {
        println!("ops surface: http://{addr}/dashboard");
    }
    // A bin-local rolling window sampled on event strides (deterministic
    // per trace, unlike the daemon's wall-clock sampler): ~256 ticks per
    // run, so the 60-tick rolling window covers the tail of the run.
    let series = mfcp_obs::TimeSeries::new(mfcp_obs::TimeSeriesConfig::default());
    let stride = (trace.len() / 256).max(1);
    for (i, event) in trace.iter().enumerate() {
        daemon.apply(&event.event);
        if (i + 1) % stride == 0 {
            series.sample_now();
        }
    }
    daemon.finish();
    series.sample_now();
    let straight = ReplayOutcome {
        events: daemon.cursor(),
        last: daemon.last_solution().cloned(),
        counters: daemon.counters(),
    };
    let wall = started.elapsed().as_secs_f64();
    let metrics = mfcp_obs::snapshot();
    const ROLLING_WINDOW: usize = 60;
    let rolling_p50 = series.rolling_quantile("serve.match_latency_secs", ROLLING_WINDOW, 0.50);
    let rolling_p95 = series.rolling_quantile("serve.match_latency_secs", ROLLING_WINDOW, 0.95);

    let c = straight.counters;
    let shed_rate = if c.admitted + c.shed > 0 {
        c.shed as f64 / (c.admitted + c.shed) as f64
    } else {
        0.0
    };
    println!(
        "straight: {} events in {:.2}s — admitted {} shed {} ({:.1}% shed) \
         resolves {} degraded {} deadline_miss {} max_pending {}",
        straight.events,
        wall,
        c.admitted,
        c.shed,
        100.0 * shed_rate,
        c.resolves,
        c.degraded,
        c.deadline_miss,
        c.max_pending_seen,
    );
    let (p50, p95, p99) = metrics
        .histograms
        .get("serve.match_latency_secs")
        .map(|h| (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)))
        .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
    println!("match latency: p50 {p50:.6}s p95 {p95:.6}s p99 {p99:.6}s");
    println!("rolling (last {ROLLING_WINDOW} ticks): p50 {rolling_p50:.6}s p95 {rolling_p95:.6}s");

    let mut failed = false;
    if args.kills > 0 {
        let dir = args.dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("mfcp_serve_replay_{}", std::process::id()))
        });
        let step = trace.len() / (args.kills + 1);
        let points: Vec<usize> = (1..=args.kills).map(|k| k * step).collect();
        let chaotic = match replay_with_kills(&trace, &config, source, &dir, &points) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("serve_replay: chaos replay failed: {e}");
                std::process::exit(1);
            }
        };
        if args.dir.is_none() {
            std::fs::remove_dir_all(&dir).ok();
        }
        println!(
            "chaos: {} kill/restore cycles at cursors {points:?}",
            points.len()
        );
        if chaotic.counters != straight.counters {
            eprintln!(
                "MISMATCH: counters diverged after kill/restore\n straight: {:?}\n chaotic:  {:?}",
                straight.counters, chaotic.counters
            );
            failed = true;
        }
        if bits(&straight) != bits(&chaotic) {
            eprintln!("MISMATCH: final matching is not bit-identical after kill/restore");
            failed = true;
        }
        if !failed {
            println!("chaos: final matching bit-identical to straight run");
        }
    }

    if let Some(out) = &args.out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"events\": {},", straight.events);
        let _ = writeln!(json, "  \"wall_secs\": {},", mfcp_obs::json::number(wall));
        let _ = writeln!(json, "  \"admitted\": {},", c.admitted);
        let _ = writeln!(json, "  \"shed\": {},", c.shed);
        let _ = writeln!(
            json,
            "  \"shed_rate\": {},",
            mfcp_obs::json::number(shed_rate)
        );
        let _ = writeln!(json, "  \"deadline_miss\": {},", c.deadline_miss);
        let _ = writeln!(json, "  \"resolves\": {},", c.resolves);
        let _ = writeln!(json, "  \"degraded\": {},", c.degraded);
        let _ = writeln!(json, "  \"match_latency_p50\": {},", num_or_null(p50));
        let _ = writeln!(json, "  \"match_latency_p95\": {},", num_or_null(p95));
        let _ = writeln!(json, "  \"match_latency_p99\": {},", num_or_null(p99));
        let _ = writeln!(json, "  \"rolling_window_ticks\": {ROLLING_WINDOW},");
        let _ = writeln!(
            json,
            "  \"rolling_match_latency_p50\": {},",
            num_or_null(rolling_p50)
        );
        let _ = writeln!(
            json,
            "  \"rolling_match_latency_p95\": {},",
            num_or_null(rolling_p95)
        );
        let _ = writeln!(json, "  \"kills\": {}", args.kills);
        json.push_str("}\n");
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).ok();
        }
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("serve_replay: writing {}: {e}", out.display());
            failed = true;
        } else {
            println!("wrote {}", out.display());
        }
    }

    if failed {
        std::process::exit(1);
    }
}
