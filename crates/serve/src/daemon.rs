//! The long-running exchange daemon.
//!
//! [`ExchangeDaemon`] consumes [`ExchangeEvent`]s in order and keeps a
//! current matching over the active task set:
//!
//! * **Arrivals** pass admission control (bounded pending queue plus a
//!   platform-capacity bound) or are shed; admitted tasks buffer in the
//!   pending queue until the next resolve.
//! * **Departures** and **cluster outage events** change the structure
//!   of the matching and trigger an immediate re-solve; arrivals batch
//!   up to [`DaemonConfig::resolve_batch`] before triggering one.
//! * **Resolves** run [`RobustSolver::solve_with_cache`], warm-started
//!   from the previous assignment: surviving tasks keep their columns,
//!   new tasks start uniform, and the seed is planted in the
//!   [`WarmStartCache`] under the new problem fingerprint before the
//!   solve (the fingerprint is structural, so it shifts only when the
//!   task count changes — exactly when the seed must be re-mapped).
//! * A per-resolve [`Budget`] deadline cooperatively cancels the
//!   optimizing rungs mid-iteration when the request blows its latency
//!   budget; the greedy rung still runs, so every resolve produces a
//!   feasible matching (`serve.deadline_miss` counts the degradations).
//! * Under overload (pending at or past
//!   [`DaemonConfig::degrade_watermark`]) the resolve skips straight to
//!   the greedy-only ladder to drain the backlog quickly.
//!
//! The daemon is deliberately single-threaded and wall-clock-free
//! except for the optional deadline: given the same trace it performs
//! the same solves in the same order, which is what makes the
//! kill/resume differential test meaningful.
//!
//! Cluster outages are modeled as a multiplicative slowdown on the
//! downed cluster's row of the time matrix rather than removing the
//! row: the problem keeps its shape (and therefore its structural
//! cache fingerprint), and the optimizer routes around the penalized
//! cluster on its own.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

use mfcp_core::predictor::ClusterPredictor;
use mfcp_linalg::Matrix;
use mfcp_optim::cache::{fingerprint, validate_warm};
use mfcp_optim::learned::repair;
use mfcp_optim::{
    Budget, DualPredictor, FallbackStage, LearnedDualHead, MatchingProblem, RelaxationParams,
    RobustSolver, SolveError, StageOutcome, WarmStartCache, WarmStartEntry,
};
use mfcp_platform::prelude::{FeatureEmbedder, PerfModel};
use mfcp_platform::stream::ExchangeEvent;
use mfcp_platform::task::TaskSpec;

use crate::state::{
    read_snapshot, write_snapshot, ExchangeState, LastSolution, ServeCounters, SnapshotError,
    PREDICTOR_DIR,
};

/// Where the daemon gets its time/reliability matrices.
pub enum MatrixSource {
    /// The platform's ground-truth performance model (simulation mode).
    GroundTruth(PerfModel),
    /// Trained per-cluster predictors over embedded task features
    /// (deployment mode; these are what the snapshot checkpoints).
    Learned {
        /// One predictor per cluster.
        predictors: Vec<ClusterPredictor>,
        /// The feature embedding the predictors were trained on.
        embedder: FeatureEmbedder,
    },
}

impl MatrixSource {
    /// Number of clusters this source predicts for.
    pub fn clusters(&self) -> usize {
        match self {
            MatrixSource::GroundTruth(model) => model.len(),
            MatrixSource::Learned { predictors, .. } => predictors.len(),
        }
    }

    /// Builds the `(time, reliability)` matrices for `specs`.
    fn matrices(&self, specs: &[TaskSpec]) -> (Matrix, Matrix) {
        match self {
            MatrixSource::GroundTruth(model) => {
                (model.time_matrix(specs), model.reliability_matrix(specs))
            }
            MatrixSource::Learned {
                predictors,
                embedder,
            } => {
                let features = embedder.embed_batch(specs);
                let m = predictors.len();
                let n = specs.len();
                let mut t = Matrix::zeros(m, n);
                let mut a = Matrix::zeros(m, n);
                for (i, p) in predictors.iter().enumerate() {
                    let ti = p.predict_times(&features);
                    let ai = p.predict_reliability(&features);
                    for j in 0..n {
                        t[(i, j)] = ti[j].max(1e-6);
                        a[(i, j)] = ai[j].clamp(0.0, 1.0);
                    }
                }
                (t, a)
            }
        }
    }
}

/// Tuning knobs for the daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Relaxation parameters for the matching solves.
    pub params: RelaxationParams,
    /// Platform-wide reliability threshold γ.
    pub gamma: f64,
    /// Admission bound on the pending queue; arrivals beyond it shed.
    pub max_pending: usize,
    /// Admission bound on total load (active + pending); arrivals
    /// beyond it shed. This is the platform-at-capacity backstop that
    /// keeps the matching problem itself bounded.
    pub max_load: usize,
    /// Number of buffered arrivals that triggers a resolve.
    pub resolve_batch: usize,
    /// Pending length at which resolves degrade to the greedy-only
    /// ladder (catch-up mode under overload).
    pub degrade_watermark: usize,
    /// Per-resolve wall-clock deadline. `None` disables the deadline —
    /// required for bit-for-bit differential tests, since wall time is
    /// inherently nondeterministic.
    pub deadline: Option<Duration>,
    /// Multiplier applied to a downed cluster's execution times.
    pub outage_slowdown: f64,
    /// Bind address for the live ops surface (`mfcp_obs::http`), e.g.
    /// `127.0.0.1:9184`; `None` (the default) disables it. The server
    /// and its sampler only *read* registry atomics — solver state is
    /// untouched, so enabling it keeps replays bit-identical (the chaos
    /// suite asserts this).
    pub metrics_addr: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            params: RelaxationParams::default(),
            gamma: 0.75,
            max_pending: 32,
            max_load: 256,
            resolve_batch: 8,
            degrade_watermark: 24,
            deadline: None,
            outage_slowdown: 1e4,
            metrics_addr: None,
        }
    }
}

/// The daemon's live ops surface: the embedded HTTP server plus the
/// background registry sampler feeding its rolling windows. Field order
/// is drop order — the HTTP server stops answering before the sampler
/// stops ticking, so no request ever reads a dead sampler's window.
struct LiveOps {
    server: mfcp_obs::ObsServer,
    _sampler: mfcp_obs::SamplerHandle,
}

impl LiveOps {
    /// Sampling interval for the daemon's rolling windows: fine enough
    /// that a 60-tick window is ~15 s of history, coarse enough that a
    /// tick is noise next to a resolve.
    const SAMPLE_INTERVAL: Duration = Duration::from_millis(250);

    fn start(addr: &str) -> Option<LiveOps> {
        let series = std::sync::Arc::new(mfcp_obs::TimeSeries::new(mfcp_obs::TimeSeriesConfig {
            interval: Self::SAMPLE_INTERVAL,
            capacity: 480,
        }));
        let sampler = series.start();
        let cfg = mfcp_obs::HttpConfig {
            addr: addr.to_string(),
            ..mfcp_obs::HttpConfig::default()
        };
        match mfcp_obs::ObsServer::start(cfg, Some(series)) {
            Ok(server) => Some(LiveOps {
                server,
                _sampler: sampler,
            }),
            Err(e) => {
                // The ops surface is auxiliary: a bind failure (port in
                // use, bad address) must not take the exchange down.
                mfcp_obs::counter("serve.ops_bind_error").inc();
                eprintln!("serve: ops server failed to bind {addr}: {e}");
                None
            }
        }
    }
}

/// The online exchange daemon. See the module docs for the event-loop
/// semantics and [`crate::state`] for what snapshots persist.
pub struct ExchangeDaemon {
    config: DaemonConfig,
    source: MatrixSource,
    solver: RobustSolver,
    cache: WarmStartCache,
    // Frozen at attach time: the online loop never trains it, so a
    // restored daemon with the same head replays bit-identically.
    dual_head: Option<LearnedDualHead>,
    state: ExchangeState,
    // Obs handles resolved once; per-event cost is an atomic op.
    c_admitted: mfcp_obs::Counter,
    c_shed: mfcp_obs::Counter,
    c_deadline_miss: mfcp_obs::Counter,
    c_resolves: mfcp_obs::Counter,
    c_degraded: mfcp_obs::Counter,
    h_latency: mfcp_obs::Histogram,
    h_batch: mfcp_obs::Histogram,
    g_pending: mfcp_obs::Gauge,
    g_active: mfcp_obs::Gauge,
    g_cache_entries: mfcp_obs::Gauge,
    g_cache_evictions: mfcp_obs::Gauge,
    ops: Option<LiveOps>,
}

impl ExchangeDaemon {
    /// A fresh daemon with empty state.
    pub fn new(config: DaemonConfig, source: MatrixSource) -> Self {
        let mut solver = RobustSolver::new(config.params);
        // The default lr is tuned for offline training batches; the
        // online loop favors the conservative step that converges
        // monotonically on small streaming instances.
        solver.solver_opts.lr = 0.3;
        let ops = config.metrics_addr.as_deref().and_then(LiveOps::start);
        ExchangeDaemon {
            config,
            source,
            solver,
            cache: WarmStartCache::new(),
            dual_head: None,
            state: ExchangeState::default(),
            c_admitted: mfcp_obs::counter("serve.admitted"),
            c_shed: mfcp_obs::counter("serve.shed"),
            c_deadline_miss: mfcp_obs::counter("serve.deadline_miss"),
            c_resolves: mfcp_obs::counter("serve.resolves"),
            c_degraded: mfcp_obs::counter("serve.degraded"),
            h_latency: mfcp_obs::histogram("serve.match_latency_secs"),
            h_batch: mfcp_obs::histogram("serve.resolve_batch_size"),
            g_pending: mfcp_obs::gauge("serve.queue.pending"),
            g_active: mfcp_obs::gauge("serve.active_tasks"),
            g_cache_entries: mfcp_obs::gauge("serve.cache.entries"),
            g_cache_evictions: mfcp_obs::gauge("serve.cache.evictions"),
            ops,
        }
    }

    /// Attaches a trained [`LearnedDualHead`] (typically from
    /// [`mfcp_core::train::train_mfcp_with_dual_head`]). The daemon
    /// treats the head as frozen — it predicts seeds for newcomer
    /// columns and first resolves but is never trained online, so two
    /// daemons holding the same head stay bit-identical. Heads are not
    /// part of snapshots; re-attach after [`ExchangeDaemon::restore`].
    pub fn with_dual_head(mut self, head: LearnedDualHead) -> Self {
        self.dual_head = Some(head);
        self
    }

    /// The attached dual head, if any.
    pub fn dual_head(&self) -> Option<&LearnedDualHead> {
        self.dual_head.as_ref()
    }

    /// The bound address of the live ops surface, when
    /// [`DaemonConfig::metrics_addr`] was set and the bind succeeded
    /// (resolves a port-`0` request to the actual port).
    pub fn ops_addr(&self) -> Option<std::net::SocketAddr> {
        self.ops.as_ref().map(|o| o.server.local_addr())
    }

    /// Number of trace events applied so far.
    pub fn cursor(&self) -> u64 {
        self.state.cursor
    }

    /// SLO counters accumulated so far.
    pub fn counters(&self) -> ServeCounters {
        self.state.counters
    }

    /// The current matching, if one has been solved.
    pub fn last_solution(&self) -> Option<&LastSolution> {
        self.state.last.as_ref()
    }

    /// Live warm-start cache statistics (`entries`, `hits`, `stale`,
    /// `evictions`) for health monitoring.
    pub fn cache_stats(&self) -> mfcp_optim::CacheStats {
        self.cache.stats()
    }

    /// Current pending-queue length.
    pub fn pending_len(&self) -> usize {
        self.state.pending.len()
    }

    /// Applies one event, advancing the cursor and resolving when the
    /// event calls for it.
    pub fn apply(&mut self, event: &ExchangeEvent) {
        self.state.cursor += 1;
        match event {
            ExchangeEvent::Arrival { task_id, spec } => {
                mfcp_obs::trace::instant("serve.arrival", Some(*task_id));
                let load = self.state.active.len() + self.state.pending.len();
                if self.state.pending.len() >= self.config.max_pending
                    || load >= self.config.max_load
                {
                    self.state.counters.shed += 1;
                    self.c_shed.inc();
                    mfcp_obs::trace::instant("serve.shed", Some(*task_id));
                } else {
                    self.state.pending.push_back((*task_id, spec.clone()));
                    self.state.counters.admitted += 1;
                    self.c_admitted.inc();
                    let depth = self.state.pending.len() as u64;
                    self.state.counters.max_pending_seen =
                        self.state.counters.max_pending_seen.max(depth);
                    if self.state.pending.len() >= self.config.resolve_batch {
                        self.resolve();
                    }
                }
            }
            ExchangeEvent::Departure { task_id } => {
                mfcp_obs::trace::instant("serve.departure", Some(*task_id));
                let was_active = self.state.active.remove(task_id).is_some();
                self.state.pending.retain(|(id, _)| id != task_id);
                if was_active {
                    // The freed slot changes the optimum; rebalance now.
                    self.resolve();
                }
            }
            ExchangeEvent::ClusterDown { cluster } => {
                mfcp_obs::trace::instant("serve.cluster_down", Some(*cluster as u64));
                self.state.down.insert(*cluster);
                self.resolve();
            }
            ExchangeEvent::ClusterUp { cluster } => {
                mfcp_obs::trace::instant("serve.cluster_up", Some(*cluster as u64));
                self.state.down.remove(cluster);
                self.resolve();
            }
        }
        // Levels, not counts: published once per event after the queues
        // settle, so the sampler's rings see consistent depths.
        self.g_pending.set(self.state.pending.len() as f64);
        self.g_active.set(self.state.active.len() as f64);
    }

    /// Flushes any buffered arrivals with a final resolve. Call at end
    /// of trace (replay does).
    pub fn finish(&mut self) {
        if !self.state.pending.is_empty() {
            self.resolve();
        }
    }

    /// Drains pending into active and re-solves the matching.
    fn resolve(&mut self) {
        let backlog = self.state.pending.len();
        let degraded = backlog >= self.config.degrade_watermark;
        while let Some((id, spec)) = self.state.pending.pop_front() {
            self.state.active.insert(id, spec);
        }
        if self.state.active.is_empty() {
            self.state.last = None;
            return;
        }

        let ids: Vec<u64> = self.state.active.keys().copied().collect();
        let specs: Vec<TaskSpec> = self.state.active.values().cloned().collect();
        let (mut t, a) = self.source.matrices(&specs);
        for &cluster in &self.state.down {
            if cluster < t.rows() {
                for j in 0..t.cols() {
                    t[(cluster, j)] *= self.config.outage_slowdown;
                }
            }
        }
        let problem = MatchingProblem::new(t, a, self.config.gamma);

        self.plant_warm_seed(&problem, &ids);

        let mut solver = match self.config.deadline {
            Some(limit) => self.solver.with_budget(Budget::with_deadline(limit)),
            None => self.solver.clone(),
        };
        if degraded {
            solver.ladder = vec![FallbackStage::GreedyRounding];
            self.state.counters.degraded += 1;
            self.c_degraded.inc();
        }

        let started = Instant::now();
        mfcp_obs::trace::begin("serve.resolve", Some(self.state.counters.resolves));
        // With a dual head attached, a resolve that finds no usable
        // cache entry (first solve, restart with a cold cache) seeds
        // from predicted duals instead of the uniform simplex point;
        // exact cache hits still take precedence inside the ladder.
        let predictor = self.dual_head.as_ref().map(|h| h as &dyn DualPredictor);
        let result = solver.solve_with_predictor(&problem, &mut self.cache, predictor);
        mfcp_obs::trace::end("serve.resolve", Some(self.state.counters.resolves));
        let elapsed = started.elapsed();
        self.h_latency.record_duration(elapsed);
        self.h_batch.record(backlog as f64);
        self.state.counters.resolves += 1;
        self.c_resolves.inc();
        self.cache.advance_generation();
        let cache = self.cache.stats();
        self.g_cache_entries.set(cache.entries as f64);
        self.g_cache_evictions.set(cache.evicted as f64);

        match result {
            Ok(sol) => {
                let missed = sol.diagnostics.attempts.iter().any(|att| {
                    matches!(
                        &att.outcome,
                        StageOutcome::Failed(SolveError::DeadlineExceeded { .. })
                    ) || matches!(&att.outcome, StageOutcome::Skipped(r) if r.contains("request budget"))
                });
                if missed {
                    self.state.counters.deadline_miss += 1;
                    self.c_deadline_miss.inc();
                    mfcp_obs::trace::instant("serve.deadline_miss", None);
                }
                self.state.last = Some(LastSolution {
                    ids,
                    x: sol.x,
                    objective: sol.objective,
                });
            }
            Err(e) => {
                // The greedy rung is infallible, so this is a config
                // error (e.g. an empty ladder). Keep the previous
                // matching rather than serving nothing.
                mfcp_obs::counter("serve.solve_error").inc();
                mfcp_obs::trace::instant("serve.solve_error", None);
                debug_assert!(false, "resolve failed: {e}");
            }
        }
    }

    /// Maps the previous assignment onto the current task set and
    /// plants it in the cache under the current problem fingerprint, so
    /// the ladder's cached-warm-start path picks it up. Surviving tasks
    /// keep their columns; new tasks take predicted-dual columns when a
    /// dual head is attached (repaired onto the simplex, uniform on
    /// rejection) and uniform `1/m` otherwise.
    fn plant_warm_seed(&mut self, problem: &MatchingProblem, ids: &[u64]) {
        let Some(last) = &self.state.last else {
            return;
        };
        let (m, n) = (problem.clusters(), problem.tasks());
        if last.x.rows() != m {
            return;
        }
        let old_col: BTreeMap<u64, usize> = last
            .ids
            .iter()
            .enumerate()
            .map(|(j, id)| (*id, j))
            .collect();
        let newcomers = ids.iter().filter(|id| !old_col.contains_key(id)).count();
        let predicted = if newcomers > 0 {
            self.predicted_newcomer_seed(problem)
        } else {
            None
        };
        if predicted.is_some() {
            mfcp_obs::counter("serve.predicted_seed_cols").add(newcomers as u64);
        }
        let uniform = 1.0 / m as f64;
        let seed = Matrix::from_fn(m, n, |i, j| match old_col.get(&ids[j]) {
            Some(&jj) => last.x[(i, jj)],
            None => match &predicted {
                Some(px) => px[(i, j)],
                None => uniform,
            },
        });
        if !validate_warm(&seed, m, n) {
            return;
        }
        let key = fingerprint(problem, &self.solver.params);
        let objective = last.objective;
        self.cache.store(
            key,
            WarmStartEntry::from_solution(problem, &self.solver.params, &seed, objective),
        );
    }

    /// A repaired predicted primal for the current problem, used to
    /// seed newcomer columns. `None` when no head is attached, the head
    /// abstains, or the repair kernel rejects the prediction (the
    /// newcomers then fall back to the uniform seed).
    fn predicted_newcomer_seed(&self, problem: &MatchingProblem) -> Option<Matrix> {
        let head = self.dual_head.as_ref()?;
        let raw = head.predict_duals(problem, &self.solver.params)?;
        match repair(&raw, problem.clusters(), problem.tasks()) {
            Ok(fixed) => Some(fixed.x),
            Err(_) => {
                mfcp_obs::counter("serve.predicted_seed_rejected").inc();
                None
            }
        }
    }

    /// Writes a crash-consistent snapshot of the full exchange state
    /// into `dir` (document plus, in learned mode, the predictor
    /// checkpoint).
    pub fn snapshot(&self, dir: &Path) -> Result<(), SnapshotError> {
        let predictor_count = match &self.source {
            MatrixSource::GroundTruth(_) => 0,
            MatrixSource::Learned { predictors, .. } => {
                mfcp_core::train::write_checkpoint(&dir.join(PREDICTOR_DIR), predictors)?;
                predictors.len()
            }
        };
        write_snapshot(dir, &self.state, &self.cache, predictor_count)?;
        mfcp_obs::counter("serve.snapshots").inc();
        mfcp_obs::trace::instant("serve.snapshot", Some(self.state.cursor));
        Ok(())
    }

    /// Restores a daemon from a snapshot directory.
    ///
    /// `source` supplies the static serving configuration (ground-truth
    /// model or embedder); when the snapshot carries a predictor
    /// checkpoint, the predictors inside `source` are replaced by the
    /// checkpointed ones, so the restored daemon predicts with exactly
    /// the weights it was killed with.
    pub fn restore(
        dir: &Path,
        config: DaemonConfig,
        source: MatrixSource,
    ) -> Result<Self, SnapshotError> {
        let mut daemon = ExchangeDaemon::new(config, source);
        let (state, cache, predictor_count) = read_snapshot(dir, &daemon.cache)?;
        if predictor_count > 0 {
            let MatrixSource::Learned { predictors, .. } = &mut daemon.source else {
                return Err(SnapshotError::Format(
                    "snapshot carries a predictor checkpoint but the daemon \
                     was restored with a ground-truth source"
                        .into(),
                ));
            };
            *predictors =
                mfcp_core::train::load_checkpoint(&dir.join(PREDICTOR_DIR), predictor_count)
                    .map_err(|e| SnapshotError::Format(e.to_string()))?;
        }
        if state
            .last
            .as_ref()
            .is_some_and(|l| l.x.rows() != daemon.source.clusters())
        {
            return Err(SnapshotError::Format(
                "snapshot assignment does not match the cluster pool".into(),
            ));
        }
        daemon.state = state;
        daemon.cache = cache;
        mfcp_obs::counter("serve.restores").inc();
        mfcp_obs::trace::instant("serve.restore", Some(daemon.state.cursor));
        Ok(daemon)
    }
}
