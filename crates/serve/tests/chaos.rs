//! Chaos and differential tests for the exchange daemon.
//!
//! The headline invariant: a daemon killed and restored from its
//! snapshot at every 1/4 mark of a trace must end in a final matching
//! bit-for-bit identical to an uninterrupted run. Also covered here:
//! overload sheds load with zero unbounded-queue growth, a blown
//! deadline degrades to a feasible greedy matching instead of stalling,
//! and learned-predictor snapshots round-trip the model weights.

use std::time::Duration;

use mfcp_linalg::Matrix;
use mfcp_optim::{LearnedDualHead, MatchingProblem, RelaxationParams, RobustSolver};
use mfcp_platform::prelude::{ClusterPool, FeatureEmbedder, Setting};
use mfcp_platform::stream::{generate_trace, ExchangeEvent, TraceConfig, TraceEvent};
use mfcp_platform::task::{Corpus, TaskFamily, TaskSpec};
use mfcp_serve::{replay, replay_with_kills, DaemonConfig, ExchangeDaemon, MatrixSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ground_truth() -> MatrixSource {
    MatrixSource::GroundTruth(ClusterPool::standard().setting(Setting::A))
}

fn test_trace() -> Vec<TraceEvent> {
    generate_trace(&TraceConfig {
        seed: 7,
        duration_secs: 2.0 * 3600.0,
        mean_interarrival_secs: 90.0,
        mean_service_secs: 1800.0,
        clusters: 3,
        outages: 2,
        mean_outage_secs: 1200.0,
    })
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mfcp_serve_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn kill_resume_is_bit_identical() {
    let trace = test_trace();
    assert!(trace.len() > 20, "trace too small to be interesting");
    let config = DaemonConfig::default();

    let mut straight_daemon = ExchangeDaemon::new(config.clone(), ground_truth());
    let straight = replay(&mut straight_daemon, &trace);

    let dir = temp_dir("chaos");
    let kills: Vec<usize> = (1..4).map(|q| q * trace.len() / 4).collect();
    let killed = replay_with_kills(&trace, &config, ground_truth, &dir, &kills)
        .expect("chaos replay survives kill/restore");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(straight.events, killed.events);
    assert_eq!(
        straight.counters, killed.counters,
        "SLO counters must survive kill/restore exactly"
    );
    let a = straight.last.expect("straight run ends with a matching");
    let b = killed.last.expect("killed run ends with a matching");
    assert_eq!(a.ids, b.ids);
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "objective must agree bit-for-bit"
    );
    let bits_a: Vec<u64> = a.x.as_slice().iter().map(|v| v.to_bits()).collect();
    let bits_b: Vec<u64> = b.x.as_slice().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits_a, bits_b, "assignments must agree bit-for-bit");
}

#[test]
fn overload_sheds_with_bounded_queue() {
    // Arrivals only, never resolved until the end: admission control is
    // the only thing standing between the queue and unbounded growth.
    let spec = TaskSpec {
        family: TaskFamily::Cnn,
        corpus: Corpus::Cifar10,
        depth: 8,
        width: 64,
        batch_size: 128,
    };
    let config = DaemonConfig {
        max_pending: 4,
        resolve_batch: 1_000,
        degrade_watermark: 1_000,
        ..DaemonConfig::default()
    };
    let mut daemon = ExchangeDaemon::new(config, ground_truth());
    for id in 0..100u64 {
        daemon.apply(&ExchangeEvent::Arrival {
            task_id: id,
            spec: spec.clone(),
        });
        assert!(daemon.pending_len() <= 4, "queue must stay bounded");
    }
    let counters = daemon.counters();
    assert_eq!(counters.admitted, 4);
    assert_eq!(counters.shed, 96);
    assert_eq!(counters.max_pending_seen, 4);
    daemon.finish();
    let last = daemon.last_solution().expect("admitted tasks get matched");
    assert_eq!(last.ids.len(), 4);
}

#[test]
fn capacity_bound_sheds_after_resolves() {
    // Tasks that resolve into the active set still count against the
    // platform capacity bound, so a flood without departures sheds once
    // active + pending hits max_load.
    let spec = TaskSpec {
        family: TaskFamily::Rnn,
        corpus: Corpus::Europarl,
        depth: 4,
        width: 32,
        batch_size: 64,
    };
    let config = DaemonConfig {
        max_load: 10,
        resolve_batch: 2,
        ..DaemonConfig::default()
    };
    let mut daemon = ExchangeDaemon::new(config, ground_truth());
    for id in 0..30u64 {
        daemon.apply(&ExchangeEvent::Arrival {
            task_id: id,
            spec: spec.clone(),
        });
    }
    let counters = daemon.counters();
    assert_eq!(counters.admitted, 10);
    assert_eq!(counters.shed, 20);
}

#[test]
fn zero_deadline_degrades_but_still_serves() {
    let trace = test_trace();
    let config = DaemonConfig {
        deadline: Some(Duration::ZERO),
        ..DaemonConfig::default()
    };
    let mut daemon = ExchangeDaemon::new(config, ground_truth());
    let outcome = replay(&mut daemon, &trace[..trace.len() / 4]);
    let counters = outcome.counters;
    assert!(counters.resolves > 0);
    assert_eq!(
        counters.deadline_miss, counters.resolves,
        "a zero deadline must miss on every resolve"
    );
    // Degraded or not, the exchange still holds a feasible matching:
    // every column sums to one.
    let last = outcome
        .last
        .expect("greedy rung always produces a matching");
    for j in 0..last.x.cols() {
        let col: f64 = (0..last.x.rows()).map(|i| last.x[(i, j)]).sum();
        assert!((col - 1.0).abs() < 1e-9, "column {j} sums to {col}");
    }
}

#[test]
fn outage_routes_around_downed_cluster() {
    let spec = TaskSpec {
        family: TaskFamily::Transformer,
        corpus: Corpus::ImageNet,
        depth: 12,
        width: 256,
        batch_size: 32,
    };
    let config = DaemonConfig {
        resolve_batch: 1,
        ..DaemonConfig::default()
    };
    let mut daemon = ExchangeDaemon::new(config, ground_truth());
    daemon.apply(&ExchangeEvent::ClusterDown { cluster: 0 });
    for id in 0..6u64 {
        daemon.apply(&ExchangeEvent::Arrival {
            task_id: id,
            spec: spec.clone(),
        });
    }
    let last = daemon.last_solution().expect("matched during the outage");
    // The downed cluster's times are penalized by 1e4; no task should
    // put meaningful mass there.
    for j in 0..last.x.cols() {
        assert!(
            last.x[(0, j)] < 0.05,
            "task {j} put {} on the downed cluster",
            last.x[(0, j)]
        );
    }
    // After recovery the cluster is usable again.
    daemon.apply(&ExchangeEvent::ClusterUp { cluster: 0 });
    let recovered = daemon.last_solution().expect("re-solved after recovery");
    let mass_on_zero: f64 = (0..recovered.x.cols()).map(|j| recovered.x[(0, j)]).sum();
    assert!(
        mass_on_zero > 0.1,
        "cluster 0 should attract work again, got {mass_on_zero}"
    );
}

#[test]
fn learned_predictors_round_trip_through_snapshot() {
    let embedder = FeatureEmbedder::default_platform();
    let make_source = || {
        let mut rng = StdRng::seed_from_u64(11);
        let predictors = (0..3)
            .map(|_| mfcp_core::predictor::ClusterPredictor::new(embedder.dim(), &[8], &mut rng))
            .collect();
        MatrixSource::Learned {
            predictors,
            embedder: FeatureEmbedder::default_platform(),
        }
    };
    let trace = test_trace();
    let half = trace.len() / 2;
    let config = DaemonConfig::default();

    let mut reference = ExchangeDaemon::new(config.clone(), make_source());
    let straight = replay(&mut reference, &trace[..half]);

    let dir = temp_dir("learned");
    let killed = replay_with_kills(&trace[..half], &config, make_source, &dir, &[half / 2])
        .expect("learned-mode chaos replay");
    assert!(
        dir.join("predictors").join("cluster_0.mfcp").exists(),
        "snapshot must include the predictor checkpoint"
    );
    std::fs::remove_dir_all(&dir).ok();

    let a = straight.last.expect("matching under learned predictors");
    let b = killed.last.expect("matching after kill/restore");
    assert_eq!(a.ids, b.ids);
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(
        a.x.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        b.x.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    );
}

#[test]
fn ops_server_enabled_stays_bit_identical() {
    // The live ops surface must be strictly read-only against solver
    // state: the same trace replayed with and without the HTTP server +
    // sampler (and with requests actively hitting the endpoints
    // mid-replay) must end in bit-identical matchings.
    let trace = test_trace();
    let plain_config = DaemonConfig::default();
    let ops_config = DaemonConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..DaemonConfig::default()
    };

    let mut plain = ExchangeDaemon::new(plain_config, ground_truth());
    let baseline = replay(&mut plain, &trace);

    let mut served = ExchangeDaemon::new(ops_config.clone(), ground_truth());
    let addr = served
        .ops_addr()
        .expect("ops server binds an ephemeral port");
    // Poll the surface while the daemon is mid-replay, not just after
    // (raw applies, not `replay`, whose end-of-trace flush would add a
    // resolve the baseline run doesn't have).
    let half = trace.len() / 2;
    for event in &trace[..half] {
        served.apply(&event.event);
    }
    for path in ["/healthz", "/metrics", "/slo", "/timeseries", "/trace"] {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).expect("connect ops surface");
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("request");
        let mut reply = String::new();
        s.read_to_string(&mut reply).expect("response");
        assert!(reply.starts_with("HTTP/1.1 200"), "{path}: {reply}");
    }
    let with_ops = replay(&mut served, &trace);

    assert_eq!(baseline.events, with_ops.events);
    assert_eq!(
        baseline.counters, with_ops.counters,
        "SLO counters must not see the ops surface"
    );
    let a = baseline.last.expect("baseline matching");
    let b = with_ops.last.expect("matching with ops surface enabled");
    assert_eq!(a.ids, b.ids);
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(
        a.x.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        b.x.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "ops surface must leave the matching bit-identical"
    );

    // And the chaos harness composes with the server enabled: each
    // restore rebinds a fresh ephemeral port.
    let dir = temp_dir("ops_chaos");
    let killed = replay_with_kills(
        &trace,
        &ops_config,
        ground_truth,
        &dir,
        &[trace.len() / 3, 2 * trace.len() / 3],
    )
    .expect("chaos replay with ops surface enabled");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(baseline.counters, killed.counters);
    let c = killed.last.expect("matching after ops-enabled chaos run");
    assert_eq!(a.objective.to_bits(), c.objective.to_bits());
}

#[test]
fn untrained_dual_head_is_inert_bit_for_bit() {
    // A head below its readiness bar abstains from every prediction, so
    // attaching it must leave the replay bit-identical to a headless
    // daemon — the learned path can only ever *add* a seed source.
    let trace = test_trace();
    let config = DaemonConfig::default();

    let mut plain = ExchangeDaemon::new(config.clone(), ground_truth());
    let baseline = replay(&mut plain, &trace);

    let head = LearnedDualHead::new(3, 17);
    assert!(!head.ready());
    let mut with_head = ExchangeDaemon::new(config, ground_truth()).with_dual_head(head);
    let seeded = replay(&mut with_head, &trace);

    assert_eq!(baseline.events, seeded.events);
    assert_eq!(baseline.counters, seeded.counters);
    let a = baseline.last.expect("baseline matching");
    let b = seeded.last.expect("matching with inert head");
    assert_eq!(a.ids, b.ids);
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(
        a.x.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        b.x.as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "an abstaining head must leave the matching bit-identical"
    );
}

#[test]
fn trained_dual_head_seeds_newcomer_columns() {
    // Train a head offline on solved instances of the serving shape,
    // attach it frozen, and replay: newcomer columns must be seeded
    // from repaired predictions (counted per column), and the final
    // matching must stay a valid, finite solution.
    let params = RelaxationParams::default();
    let solver = RobustSolver::new(params.clone());
    let mut head = LearnedDualHead::new(3, 71);
    let mut rng = StdRng::seed_from_u64(404);
    for k in 0..10u64 {
        let n = 3 + (k as usize % 4);
        let t = Matrix::from_fn(3, n, |_, _| rng.gen_range(0.5..2.0));
        let a = Matrix::from_fn(3, n, |_, _| rng.gen_range(0.8..1.0));
        let problem = MatchingProblem::new(t, a, 0.75);
        let sol = solver.solve(&problem).expect("training solve");
        head.observe(&problem, &params, &sol.x);
    }
    assert!(head.ready(), "10 clean observations clear the bar");

    let before = mfcp_obs::counter("serve.predicted_seed_cols").get();
    let rejected_before = mfcp_obs::counter("serve.predicted_seed_rejected").get();
    let trace = test_trace();
    let mut daemon =
        ExchangeDaemon::new(DaemonConfig::default(), ground_truth()).with_dual_head(head);
    let outcome = replay(&mut daemon, &trace);
    let seeded_cols = mfcp_obs::counter("serve.predicted_seed_cols").get() - before;
    let rejected = mfcp_obs::counter("serve.predicted_seed_rejected").get() - rejected_before;

    assert!(
        seeded_cols > 0,
        "a ready head must seed at least one newcomer column over a 2h trace"
    );
    assert_eq!(rejected, 0, "repair must accept every in-family prediction");
    let last = outcome.last.expect("trace ends with a matching");
    assert!(last.objective.is_finite());
    assert!(last.x.as_slice().iter().all(|v| v.is_finite()));
    assert!(daemon.dual_head().is_some_and(|h| h.ready()));
}
