//! Reverse-mode automatic differentiation over dense matrices.
//!
//! Rust has no PyTorch; MFCP's predictors need gradients of a scalar loss
//! with respect to every network parameter, *and* the training pipeline
//! needs to inject externally computed gradients (the matching layer's
//! `dL/dX* · dX*/dt̂` term from paper Eq. 7) into the middle of the
//! backward pass. This crate provides exactly that:
//!
//! * [`Graph`] — an eagerly-evaluated tape. Every operation appends a node
//!   holding its value and its parents; [`Graph::backward`] replays the
//!   tape in reverse, accumulating adjoints.
//! * [`Graph::backward_with_seed`] — starts the reverse sweep from an
//!   arbitrary node with an arbitrary seed adjoint, which is how the
//!   decision-focused regret gradient is chained into the predictor.
//! * [`gradcheck`] — central-difference gradient checking used throughout
//!   the test suite.
//!
//! The design is index-based (nodes are [`NodeId`]s into the graph) rather
//! than lifetime-based so that user code stays free of borrow gymnastics.
//!
//! ```
//! use mfcp_autodiff::Graph;
//! use mfcp_linalg::Matrix;
//!
//! let mut g = Graph::new();
//! let x = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = g.input(Matrix::from_rows(&[&[3.0], &[4.0]]));
//! let y = g.matmul(x, w);          // y = x·w = [[11]]
//! let loss = g.sum(y);
//! g.backward(loss);
//! assert_eq!(g.grad(w).unwrap().as_slice(), &[1.0, 2.0]); // dy/dw = xᵀ
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradcheck;
mod graph;

pub use graph::{Graph, NodeId};
