//! The tape: eagerly evaluated nodes plus a reverse sweep.

use mfcp_linalg::Matrix;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// The operation that produced a node, with the parent handles the reverse
/// sweep needs. Values needed by the backward rule (e.g. the output of
/// `tanh`) are re-read from the stored node values rather than duplicated.
#[derive(Debug, Clone)]
enum Op {
    Input,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    Neg(NodeId),
    AddScalar(NodeId),
    MulScalar(NodeId, f64),
    Matmul(NodeId, NodeId),
    Transpose(NodeId),
    Relu(NodeId),
    LeakyRelu(NodeId, f64),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Exp(NodeId),
    Ln(NodeId),
    Powi(NodeId, i32),
    Sum(NodeId),
    Mean(NodeId),
    AddRowBroadcast(NodeId, NodeId),
    SoftplusScaled(NodeId, f64),
    Huber(NodeId, f64),
    SoftmaxRows(NodeId),
    LogsumexpRows(NodeId),
    SumCols(NodeId),
    ConcatRows(NodeId, NodeId),
}

struct Node {
    value: Matrix,
    op: Op,
    grad: Option<Matrix>,
}

/// An eagerly evaluated computation tape over [`Matrix`] values.
///
/// Operations append nodes; [`Graph::backward`] (or
/// [`Graph::backward_with_seed`]) performs the reverse sweep. Gradients
/// accumulate across multiple backward calls until [`Graph::zero_grad`].
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Removes every node, keeping the allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            op,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Registers a leaf node (an input or a parameter).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Input)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The accumulated adjoint of a node, if the reverse sweep reached it.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Clears all accumulated adjoints.
    pub fn zero_grad(&mut self) {
        for node in &mut self.nodes {
            node.grad = None;
        }
    }

    // ---- elementwise binary ops -------------------------------------

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a) + self.value(b);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a) - self.value(b);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).hadamard(self.value(b)).expect("mul shape");
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise quotient `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self
            .value(a)
            .zip_map(self.value(b), |x, y| x / y)
            .expect("div shape");
        self.push(v, Op::Div(a, b))
    }

    // ---- unary / scalar ops ------------------------------------------

    /// Elementwise negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let v = -self.value(a);
        self.push(v, Op::Neg(a))
    }

    /// Adds a scalar to every entry.
    pub fn add_scalar(&mut self, a: NodeId, s: f64) -> NodeId {
        let v = self.value(a).map(|x| x + s);
        self.push(v, Op::AddScalar(a))
    }

    /// Multiplies every entry by a scalar.
    pub fn mul_scalar(&mut self, a: NodeId, s: f64) -> NodeId {
        let v = self.value(a).scale(s);
        self.push(v, Op::MulScalar(a, s))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b)).expect("matmul shape");
        self.push(v, Op::Matmul(a, b))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: NodeId, alpha: f64) -> NodeId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(v, Op::LeakyRelu(a, alpha))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f64::exp);
        self.push(v, Op::Exp(a))
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f64::ln);
        self.push(v, Op::Ln(a))
    }

    /// Elementwise integer power.
    pub fn powi(&mut self, a: NodeId, n: i32) -> NodeId {
        let v = self.value(a).map(|x| x.powi(n));
        self.push(v, Op::Powi(a, n))
    }

    /// Numerically-stable scaled softplus `log(1 + exp(beta·x)) / beta`,
    /// a smooth positive-output activation used by the execution-time head.
    pub fn softplus_scaled(&mut self, a: NodeId, beta: f64) -> NodeId {
        let v = self.value(a).map(|x| {
            let bx = beta * x;
            if bx > 30.0 {
                x
            } else {
                bx.exp().ln_1p() / beta
            }
        });
        self.push(v, Op::SoftplusScaled(a, beta))
    }

    // ---- reductions / broadcasts --------------------------------------

    /// Sum of all entries, as a `1 x 1` matrix.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::Sum(a))
    }

    /// Mean of all entries, as a `1 x 1` matrix.
    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(v, Op::Mean(a))
    }

    /// Adds a `1 x cols` row vector to every row of `a` (bias addition).
    pub fn add_row_broadcast(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let av = self.value(a);
        let rv = self.value(row);
        assert_eq!(rv.rows(), 1, "broadcast operand must be a row vector");
        assert_eq!(av.cols(), rv.cols(), "broadcast width mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                v[(r, c)] += rv[(0, c)];
            }
        }
        self.push(v, Op::AddRowBroadcast(a, row))
    }

    /// Mean squared error `mean((a - b)²)` as a `1 x 1` node.
    pub fn mse(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        self.mean(sq)
    }

    /// Elementwise Huber penalty `ρ_δ(x)`: quadratic (`x²/2`) inside
    /// `|x| ≤ δ`, linear (`δ(|x| − δ/2)`) outside — the robust regression
    /// loss for heavy-tailed targets.
    pub fn huber(&mut self, a: NodeId, delta: f64) -> NodeId {
        assert!(delta > 0.0, "delta must be positive");
        let v = self.value(a).map(|x| {
            if x.abs() <= delta {
                0.5 * x * x
            } else {
                delta * (x.abs() - 0.5 * delta)
            }
        });
        self.push(v, Op::Huber(a, delta))
    }

    /// Row-wise softmax (each row sums to one).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let mut v = av.clone();
        for r in 0..v.rows() {
            mfcp_linalg::vector::softmax_inplace(v.row_mut(r));
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise log-sum-exp, as an `R x 1` column.
    pub fn logsumexp_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let v = Matrix::from_fn(av.rows(), 1, |r, _| {
            mfcp_linalg::vector::logsumexp(av.row(r))
        });
        self.push(v, Op::LogsumexpRows(a))
    }

    /// Column sums, as a `1 x C` row.
    pub fn sum_cols(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let mut v = Matrix::zeros(1, av.cols());
        for r in 0..av.rows() {
            for c in 0..av.cols() {
                v[(0, c)] += av[(r, c)];
            }
        }
        self.push(v, Op::SumCols(a))
    }

    /// Vertical concatenation `[a; b]` (column counts must match).
    pub fn concat_rows(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).vstack(self.value(b)).expect("concat shape");
        self.push(v, Op::ConcatRows(a, b))
    }

    // ---- reverse sweep -------------------------------------------------

    /// Runs the reverse sweep from a scalar (`1 x 1`) node with seed 1.
    ///
    /// # Panics
    /// Panics if `root` is not `1 x 1`.
    pub fn backward(&mut self, root: NodeId) {
        let shape = self.value(root).shape();
        assert_eq!(shape, (1, 1), "backward root must be scalar, got {shape:?}");
        let seed = Matrix::from_vec(1, 1, vec![1.0]);
        self.backward_with_seed(root, seed);
    }

    /// Runs the reverse sweep from `root` with an explicit seed adjoint.
    ///
    /// This is how externally computed decision gradients (`dL/dt̂` from
    /// the matching layer) are chained into predictor training: build the
    /// forward graph up to the prediction node, then seed that node with
    /// the upstream gradient.
    ///
    /// # Panics
    /// Panics if `seed` does not match `root`'s shape.
    pub fn backward_with_seed(&mut self, root: NodeId, seed: Matrix) {
        assert_eq!(
            seed.shape(),
            self.value(root).shape(),
            "seed shape must match root"
        );
        self.accumulate(root, seed);
        for idx in (0..=root.0).rev() {
            let Some(grad) = self.nodes[idx].grad.clone() else {
                continue;
            };
            let op = self.nodes[idx].op.clone();
            match op {
                Op::Input => {}
                Op::Add(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, -&grad);
                }
                Op::Mul(a, b) => {
                    let ga = grad.hadamard(self.val(b)).expect("shape");
                    let gb = grad.hadamard(self.val(a)).expect("shape");
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Div(a, b) => {
                    let bv = self.val(b).clone();
                    let ga = grad.zip_map(&bv, |g, y| g / y).expect("shape");
                    let av = self.val(a).clone();
                    let gb = Matrix::from_fn(bv.rows(), bv.cols(), |r, c| {
                        -grad[(r, c)] * av[(r, c)] / (bv[(r, c)] * bv[(r, c)])
                    });
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Neg(a) => self.accumulate(a, -&grad),
                Op::AddScalar(a) => self.accumulate(a, grad),
                Op::MulScalar(a, s) => self.accumulate(a, grad.scale(s)),
                Op::Matmul(a, b) => {
                    let ga = grad.matmul(&self.val(b).transpose()).expect("shape");
                    let gb = self.val(a).transpose().matmul(&grad).expect("shape");
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Transpose(a) => self.accumulate(a, grad.transpose()),
                Op::Relu(a) => {
                    let av = self.val(a);
                    let ga = grad
                        .zip_map(av, |g, x| if x > 0.0 { g } else { 0.0 })
                        .expect("shape");
                    self.accumulate(a, ga);
                }
                Op::LeakyRelu(a, alpha) => {
                    let av = self.val(a);
                    let ga = grad
                        .zip_map(av, |g, x| if x > 0.0 { g } else { alpha * g })
                        .expect("shape");
                    self.accumulate(a, ga);
                }
                Op::Tanh(a) => {
                    let out = self.nodes[idx].value.clone();
                    let ga = grad.zip_map(&out, |g, t| g * (1.0 - t * t)).expect("shape");
                    self.accumulate(a, ga);
                }
                Op::Sigmoid(a) => {
                    let out = self.nodes[idx].value.clone();
                    let ga = grad.zip_map(&out, |g, s| g * s * (1.0 - s)).expect("shape");
                    self.accumulate(a, ga);
                }
                Op::Exp(a) => {
                    let out = self.nodes[idx].value.clone();
                    let ga = grad.hadamard(&out).expect("shape");
                    self.accumulate(a, ga);
                }
                Op::Ln(a) => {
                    let av = self.val(a);
                    let ga = grad.zip_map(av, |g, x| g / x).expect("shape");
                    self.accumulate(a, ga);
                }
                Op::Powi(a, n) => {
                    let av = self.val(a);
                    let ga = grad
                        .zip_map(av, |g, x| g * n as f64 * x.powi(n - 1))
                        .expect("shape");
                    self.accumulate(a, ga);
                }
                Op::SoftplusScaled(a, beta) => {
                    // d/dx softplus(beta x)/beta = sigmoid(beta x)
                    let av = self.val(a);
                    let ga = grad
                        .zip_map(av, |g, x| g / (1.0 + (-beta * x).exp()))
                        .expect("shape");
                    self.accumulate(a, ga);
                }
                Op::Sum(a) => {
                    let g = grad[(0, 0)];
                    let shape = self.val(a).shape();
                    self.accumulate(a, Matrix::filled(shape.0, shape.1, g));
                }
                Op::Mean(a) => {
                    let shape = self.val(a).shape();
                    let n = (shape.0 * shape.1).max(1) as f64;
                    let g = grad[(0, 0)] / n;
                    self.accumulate(a, Matrix::filled(shape.0, shape.1, g));
                }
                Op::Huber(a, delta) => {
                    // dρ/dx = clamp(x, −δ, δ).
                    let av = self.val(a);
                    let ga = grad
                        .zip_map(av, |g, x| g * x.clamp(-delta, delta))
                        .expect("shape");
                    self.accumulate(a, ga);
                }
                Op::SoftmaxRows(a) => {
                    // For each row: ga = s ⊙ (g − ⟨g, s⟩).
                    let out = self.nodes[idx].value.clone();
                    let mut ga = Matrix::zeros(out.rows(), out.cols());
                    for r in 0..out.rows() {
                        let dot = mfcp_linalg::vector::dot(grad.row(r), out.row(r));
                        for c in 0..out.cols() {
                            ga[(r, c)] = out[(r, c)] * (grad[(r, c)] - dot);
                        }
                    }
                    self.accumulate(a, ga);
                }
                Op::LogsumexpRows(a) => {
                    // d lse(a_r)/d a_rc = softmax(a_r)_c.
                    let av = self.val(a).clone();
                    let mut ga = Matrix::zeros(av.rows(), av.cols());
                    for r in 0..av.rows() {
                        let sm = mfcp_linalg::vector::softmax(av.row(r));
                        for c in 0..av.cols() {
                            ga[(r, c)] = grad[(r, 0)] * sm[c];
                        }
                    }
                    self.accumulate(a, ga);
                }
                Op::SumCols(a) => {
                    let shape = self.val(a).shape();
                    let ga = Matrix::from_fn(shape.0, shape.1, |_, c| grad[(0, c)]);
                    self.accumulate(a, ga);
                }
                Op::ConcatRows(a, b) => {
                    let ra = self.val(a).rows();
                    let cols = grad.cols();
                    let ga = grad.block(0, 0, ra, cols);
                    let gb = grad.block(ra, 0, grad.rows() - ra, cols);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::AddRowBroadcast(a, row) => {
                    self.accumulate(a, grad.clone());
                    // Bias gradient: column sums of the incoming adjoint.
                    let mut grow = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        for c in 0..grad.cols() {
                            grow[(0, c)] += grad[(r, c)];
                        }
                    }
                    self.accumulate(row, grow);
                }
            }
        }
    }

    #[inline]
    fn val(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn accumulate(&mut self, id: NodeId, g: Matrix) {
        let slot = &mut self.nodes[id.0].grad;
        match slot {
            Some(existing) => *existing += &g,
            None => *slot = Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(g: &Graph, id: NodeId) -> f64 {
        g.value(id)[(0, 0)]
    }

    #[test]
    fn add_sub_grads() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = g.input(Matrix::from_rows(&[&[3.0, 4.0]]));
        let c = g.add(a, b);
        let d = g.sub(c, a); // d = b
        let s = g.sum(d);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn mul_grad() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[2.0, 3.0]]));
        let b = g.input(Matrix::from_rows(&[&[5.0, 7.0]]));
        let p = g.mul(a, b);
        let s = g.sum(p);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn div_grad() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[6.0]]));
        let b = g.input(Matrix::from_rows(&[&[3.0]]));
        let q = g.div(a, b);
        let s = g.sum(q);
        g.backward(s);
        assert!((g.grad(a).unwrap()[(0, 0)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((g.grad(b).unwrap()[(0, 0)] + 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_grads() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.input(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let p = g.matmul(a, b);
        let s = g.sum(p);
        g.backward(s);
        // d sum(AB) / dA = 1 Bᵀ, entries are row sums of B.
        assert_eq!(
            g.grad(a).unwrap(),
            &Matrix::from_rows(&[&[11.0, 15.0], &[11.0, 15.0]])
        );
        assert_eq!(
            g.grad(b).unwrap(),
            &Matrix::from_rows(&[&[4.0, 4.0], &[6.0, 6.0]])
        );
    }

    #[test]
    fn chain_through_activations() {
        // loss = mean(tanh(x)^2); check against central differences.
        let x0 = Matrix::from_rows(&[&[0.3, -0.7, 1.2]]);
        let f = |x: &Matrix| {
            let mut g = Graph::new();
            let xi = g.input(x.clone());
            let t = g.tanh(xi);
            let sq = g.mul(t, t);
            let m = g.mean(sq);
            scalar(&g, m)
        };
        let mut g = Graph::new();
        let xi = g.input(x0.clone());
        let t = g.tanh(xi);
        let sq = g.mul(t, t);
        let m = g.mean(sq);
        g.backward(m);
        let analytic = g.grad(xi).unwrap().clone();
        let numeric = crate::gradcheck::finite_diff(&x0, f, 1e-6);
        assert!(analytic.approx_eq(&numeric, 1e-6));
    }

    #[test]
    fn relu_and_leaky_grad() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[-1.0, 2.0]]));
        let r = g.relu(x);
        let s = g.sum(r);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[0.0, 1.0]);

        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[-1.0, 2.0]]));
        let r = g.leaky_relu(x, 0.1);
        let s = g.sum(r);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[0.1, 1.0]);
    }

    #[test]
    fn exp_ln_powi_grads_match_numeric() {
        let x0 = Matrix::from_rows(&[&[0.5, 1.5, 2.5]]);
        let build = |g: &mut Graph, xi: NodeId| {
            let e = g.exp(xi);
            let l = g.ln(e); // identity, but exercises both rules
            let p = g.powi(l, 3);
            g.sum(p)
        };
        let mut g = Graph::new();
        let xi = g.input(x0.clone());
        let root = build(&mut g, xi);
        g.backward(root);
        let analytic = g.grad(xi).unwrap().clone();
        let numeric = crate::gradcheck::finite_diff(
            &x0,
            |x| {
                let mut g = Graph::new();
                let xi = g.input(x.clone());
                let root = build(&mut g, xi);
                scalar(&g, root)
            },
            1e-6,
        );
        assert!(analytic.approx_eq(&numeric, 1e-5));
    }

    #[test]
    fn softplus_matches_numeric_and_is_positive() {
        let x0 = Matrix::from_rows(&[&[-2.0, 0.0, 3.0, 40.0]]);
        let mut g = Graph::new();
        let xi = g.input(x0.clone());
        let sp = g.softplus_scaled(xi, 1.5);
        assert!(g.value(sp).min().unwrap() > 0.0);
        let s = g.sum(sp);
        g.backward(s);
        let analytic = g.grad(xi).unwrap().clone();
        let numeric = crate::gradcheck::finite_diff(
            &x0,
            |x| {
                let mut g = Graph::new();
                let xi = g.input(x.clone());
                let sp = g.softplus_scaled(xi, 1.5);
                let s = g.sum(sp);
                scalar(&g, s)
            },
            1e-6,
        );
        assert!(analytic.approx_eq(&numeric, 1e-5));
    }

    #[test]
    fn row_broadcast_bias_grad() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let b = g.input(Matrix::from_rows(&[&[10.0, 20.0]]));
        let y = g.add_row_broadcast(x, b);
        assert_eq!(g.value(y)[(2, 1)], 26.0);
        let s = g.sum(y);
        g.backward(s);
        // Bias gradient is the column sum of ones = number of rows.
        assert_eq!(g.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let mut g = Graph::new();
        let pred = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let target = g.input(Matrix::from_rows(&[&[0.0, 4.0]]));
        let loss = g.mse(pred, target);
        assert!((scalar(&g, loss) - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        g.backward(loss);
        // d/dpred mean((p-t)^2) = 2 (p-t) / n
        assert_eq!(g.grad(pred).unwrap().as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn grad_accumulates_on_fanout() {
        // y = x + x  =>  dy/dx = 2
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[3.0]]));
        let y = g.add(x, x);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn backward_with_external_seed() {
        // Seed the output with an arbitrary upstream gradient, as the
        // decision-focused pipeline does.
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = g.mul_scalar(x, 3.0);
        let seed = Matrix::from_rows(&[&[10.0, -1.0]]);
        g.backward_with_seed(y, seed);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[30.0, -3.0]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0]]));
        let s = g.sum(x);
        g.backward(s);
        assert!(g.grad(x).is_some());
        g.zero_grad();
        assert!(g.grad(x).is_none());
    }

    #[test]
    fn huber_matches_numeric_and_is_robust() {
        let x0 = Matrix::from_rows(&[&[-3.0, -0.5, 0.0, 0.5, 3.0]]);
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let h = g.huber(x, 1.0);
        // Values: quadratic inside, linear outside.
        assert!((g.value(h)[(0, 1)] - 0.125).abs() < 1e-12);
        assert!((g.value(h)[(0, 0)] - 2.5).abs() < 1e-12);
        let s = g.sum(h);
        g.backward(s);
        let analytic = g.grad(x).unwrap().clone();
        let numeric = crate::gradcheck::finite_diff(
            &x0,
            |m| {
                let mut g = Graph::new();
                let x = g.input(m.clone());
                let h = g.huber(x, 1.0);
                let s = g.sum(h);
                g.value(s)[(0, 0)]
            },
            1e-6,
        );
        assert!(analytic.approx_eq(&numeric, 1e-6));
        // Gradient saturates at ±δ for outliers.
        assert_eq!(analytic[(0, 0)], -1.0);
        assert_eq!(analytic[(0, 4)], 1.0);
    }

    #[test]
    fn softmax_rows_forward_and_grad() {
        let x0 = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.5, -0.5, 0.0]]);
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let s = g.softmax_rows(x);
        // Rows sum to one.
        for r in 0..2 {
            let sum: f64 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Gradient of a weighted sum of the softmax vs central differences.
        let c = Matrix::from_rows(&[&[0.3, -1.0, 0.7], &[2.0, 0.1, -0.4]]);
        let ci = g.input(c.clone());
        let w = g.mul(s, ci);
        let loss = g.sum(w);
        g.backward(loss);
        let analytic = g.grad(x).unwrap().clone();
        let numeric = crate::gradcheck::finite_diff(
            &x0,
            |m| {
                let mut g = Graph::new();
                let x = g.input(m.clone());
                let s = g.softmax_rows(x);
                let ci = g.input(c.clone());
                let w = g.mul(s, ci);
                let l = g.sum(w);
                g.value(l)[(0, 0)]
            },
            1e-6,
        );
        assert!(analytic.approx_eq(&numeric, 1e-6));
    }

    #[test]
    fn logsumexp_rows_matches_smooth_max_identity() {
        // lse(x) with backward = softmax weights.
        let x0 = Matrix::from_rows(&[&[1.0, 3.0, 2.0]]);
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let l = g.logsumexp_rows(x);
        assert_eq!(g.value(l).shape(), (1, 1));
        assert!((g.value(l)[(0, 0)] - mfcp_linalg::vector::logsumexp(x0.row(0))).abs() < 1e-12);
        let s = g.sum(l);
        g.backward(s);
        let expected = mfcp_linalg::vector::softmax(x0.row(0));
        for (got, want) in g.grad(x).unwrap().as_slice().iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_cols_grad_broadcasts() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let sc = g.sum_cols(x);
        assert_eq!(g.value(sc).as_slice(), &[9.0, 12.0]);
        let w = g.input(Matrix::from_rows(&[&[2.0, -1.0]]));
        let p = g.mul(sc, w);
        let loss = g.sum(p);
        g.backward(loss);
        // Every row gets the column weight.
        let grad = g.grad(x).unwrap();
        for r in 0..3 {
            assert_eq!(grad[(r, 0)], 2.0);
            assert_eq!(grad[(r, 1)], -1.0);
        }
    }

    #[test]
    fn concat_rows_splits_gradient() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = g.input(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let cat = g.concat_rows(a, b);
        assert_eq!(g.value(cat).shape(), (3, 2));
        assert_eq!(g.value(cat)[(2, 1)], 6.0);
        let w = g.input(Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]));
        let p = g.mul(cat, w);
        let loss = g.sum(p);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "backward root must be scalar")]
    fn backward_requires_scalar_root() {
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 2));
        g.backward(x);
    }
}
