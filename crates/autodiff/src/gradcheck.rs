//! Central-difference gradient checking.
//!
//! Every backward rule in this crate (and every hand-derived gradient in
//! `mfcp-optim`) is validated against these finite-difference estimates in
//! the test suites.

use mfcp_linalg::Matrix;

/// Central-difference gradient of a scalar function of a matrix.
///
/// Evaluates `f` at `2 * x.len()` perturbed points with step `eps`.
pub fn finite_diff(x: &Matrix, f: impl Fn(&Matrix) -> f64, eps: f64) -> Matrix {
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            grad[(r, c)] = (f(&xp) - f(&xm)) / (2.0 * eps);
        }
    }
    grad
}

/// Relative error between an analytic gradient and its finite-difference
/// estimate: `max |g - ĝ| / (1 + max(|g|, |ĝ|))`.
pub fn relative_error(analytic: &Matrix, numeric: &Matrix) -> f64 {
    assert_eq!(analytic.shape(), numeric.shape());
    let diff = analytic.max_abs_diff(numeric).expect("shapes equal");
    let scale = 1.0 + analytic.max_abs().max(numeric.max_abs());
    diff / scale
}

/// Convenience assertion combining [`finite_diff`] and [`relative_error`].
///
/// # Panics
/// Panics when the relative error exceeds `tol`.
pub fn assert_gradients_close(
    x: &Matrix,
    f: impl Fn(&Matrix) -> f64,
    analytic: &Matrix,
    eps: f64,
    tol: f64,
) {
    let numeric = finite_diff(x, f, eps);
    let err = relative_error(analytic, &numeric);
    assert!(
        err <= tol,
        "gradient check failed: relative error {err:.3e} > {tol:.3e}\nanalytic: {analytic:?}\nnumeric: {numeric:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_diff_of_quadratic() {
        // f(x) = Σ x², ∇f = 2x.
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let g = finite_diff(&x, |m| m.as_slice().iter().map(|v| v * v).sum(), 1e-6);
        let expected = x.scale(2.0);
        assert!(g.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn relative_error_zero_for_equal() {
        let g = Matrix::filled(2, 2, 1.5);
        assert_eq!(relative_error(&g, &g), 0.0);
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn assertion_fires_on_wrong_gradient() {
        let x = Matrix::from_rows(&[&[1.0]]);
        let wrong = Matrix::from_rows(&[&[100.0]]);
        assert_gradients_close(&x, |m| m[(0, 0)].powi(2), &wrong, 1e-6, 1e-4);
    }
}
