//! CSV import/export of platform measurement traces.
//!
//! A real exchange accumulates profiling campaigns over months; this
//! module persists a [`PlatformDataset`] as a plain CSV trace (one row
//! per task, with the task descriptor, measured and true per-cluster
//! times and reliabilities) so campaigns can be archived, diffed, and
//! reloaded without rerunning the simulator.

use crate::dataset::PlatformDataset;
use crate::embedding::FeatureEmbedder;
use crate::task::{Corpus, TaskFamily, TaskSpec};
use mfcp_linalg::Matrix;
use std::fmt;
use std::path::Path;

/// Errors from parsing a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// Description, including the offending line number where known.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace error: {}", self.message)
    }
}

impl std::error::Error for TraceError {}

fn err(message: impl Into<String>) -> TraceError {
    TraceError {
        message: message.into(),
    }
}

fn family_tag(f: TaskFamily) -> &'static str {
    match f {
        TaskFamily::Cnn => "cnn",
        TaskFamily::Transformer => "transformer",
        TaskFamily::Rnn => "rnn",
    }
}

fn parse_family(s: &str) -> Result<TaskFamily, TraceError> {
    match s {
        "cnn" => Ok(TaskFamily::Cnn),
        "transformer" => Ok(TaskFamily::Transformer),
        "rnn" => Ok(TaskFamily::Rnn),
        other => Err(err(format!("unknown family {other:?}"))),
    }
}

fn corpus_tag(c: Corpus) -> &'static str {
    match c {
        Corpus::Cifar10 => "cifar10",
        Corpus::ImageNet => "imagenet",
        Corpus::Europarl => "europarl",
    }
}

fn parse_corpus(s: &str) -> Result<Corpus, TraceError> {
    match s {
        "cifar10" => Ok(Corpus::Cifar10),
        "imagenet" => Ok(Corpus::ImageNet),
        "europarl" => Ok(Corpus::Europarl),
        other => Err(err(format!("unknown corpus {other:?}"))),
    }
}

/// Serializes a dataset as CSV. Columns:
/// `family,corpus,depth,width,batch_size` then, per cluster `i`,
/// `t_meas_i,a_meas_i,t_true_i,a_true_i`.
pub fn to_csv(dataset: &PlatformDataset) -> String {
    let m = dataset.clusters();
    let mut header = String::from("family,corpus,depth,width,batch_size");
    for i in 0..m {
        header.push_str(&format!(",t_meas_{i},a_meas_{i},t_true_{i},a_true_{i}"));
    }
    let mut out = header;
    out.push('\n');
    for (j, task) in dataset.tasks.iter().enumerate() {
        out.push_str(&format!(
            "{},{},{},{},{}",
            family_tag(task.family),
            corpus_tag(task.corpus),
            task.depth,
            task.width,
            task.batch_size
        ));
        for i in 0..m {
            out.push_str(&format!(
                ",{:e},{:e},{:e},{:e}",
                dataset.times[(i, j)],
                dataset.reliability[(i, j)],
                dataset.true_times[(i, j)],
                dataset.true_reliability[(i, j)]
            ));
        }
        out.push('\n');
    }
    out
}

/// Parses a CSV trace back into a dataset, re-deriving features with
/// `embedder` (features are a pure function of the task descriptor, so
/// they are not stored).
pub fn from_csv(text: &str, embedder: &FeatureEmbedder) -> Result<PlatformDataset, TraceError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or_else(|| err("empty trace"))?;
    let columns: Vec<&str> = header.split(',').collect();
    if columns.len() < 9 || columns[0] != "family" {
        return Err(err("bad header"));
    }
    if !(columns.len() - 5).is_multiple_of(4) {
        return Err(err("per-cluster column count must be a multiple of 4"));
    }
    let m = (columns.len() - 5) / 4;

    let mut tasks = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new(); // 4m values per task
    for (lineno, line) in lines {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != columns.len() {
            return Err(err(format!(
                "line {}: expected {} fields, got {}",
                lineno + 1,
                columns.len(),
                fields.len()
            )));
        }
        let parse_usize = |s: &str, what: &str| -> Result<usize, TraceError> {
            s.parse()
                .map_err(|_| err(format!("line {}: bad {what} {s:?}", lineno + 1)))
        };
        tasks.push(TaskSpec {
            family: parse_family(fields[0])?,
            corpus: parse_corpus(fields[1])?,
            depth: parse_usize(fields[2], "depth")?,
            width: parse_usize(fields[3], "width")?,
            batch_size: parse_usize(fields[4], "batch_size")?,
        });
        let values: Result<Vec<f64>, TraceError> = fields[5..]
            .iter()
            .map(|s| {
                s.parse()
                    .map_err(|_| err(format!("line {}: bad float {s:?}", lineno + 1)))
            })
            .collect();
        rows.push(values?);
    }

    let n = tasks.len();
    let mut times = Matrix::zeros(m, n);
    let mut reliability = Matrix::zeros(m, n);
    let mut true_times = Matrix::zeros(m, n);
    let mut true_reliability = Matrix::zeros(m, n);
    for (j, row) in rows.iter().enumerate() {
        for i in 0..m {
            times[(i, j)] = row[4 * i];
            reliability[(i, j)] = row[4 * i + 1];
            true_times[(i, j)] = row[4 * i + 2];
            true_reliability[(i, j)] = row[4 * i + 3];
        }
    }
    let features = embedder.embed_batch(&tasks);
    Ok(PlatformDataset {
        tasks,
        features,
        times,
        reliability,
        true_times,
        true_reliability,
    })
}

/// Writes a dataset trace to a file.
pub fn save_trace(dataset: &PlatformDataset, path: impl AsRef<Path>) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_csv(dataset))
}

/// Reads a dataset trace from a file.
pub fn load_trace(
    path: impl AsRef<Path>,
    embedder: &FeatureEmbedder,
) -> Result<PlatformDataset, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(from_csv(&text, embedder)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::NoiseConfig;
    use crate::settings::{ClusterPool, Setting};
    use crate::task::TaskGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize) -> (PlatformDataset, FeatureEmbedder) {
        let model = ClusterPool::standard().setting(Setting::A);
        let embedder = FeatureEmbedder::bottlenecked_platform();
        let mut rng = StdRng::seed_from_u64(1);
        let ds = PlatformDataset::generate(
            &model,
            &embedder,
            &TaskGenerator::default(),
            n,
            &NoiseConfig::default(),
            &mut rng,
        );
        (ds, embedder)
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let (ds, embedder) = sample(12);
        let csv = to_csv(&ds);
        let back = from_csv(&csv, &embedder).unwrap();
        assert_eq!(back.tasks, ds.tasks);
        assert!(back.times.approx_eq(&ds.times, 0.0));
        assert!(back.reliability.approx_eq(&ds.reliability, 0.0));
        assert!(back.true_times.approx_eq(&ds.true_times, 0.0));
        assert!(back.features.approx_eq(&ds.features, 0.0));
    }

    #[test]
    fn file_round_trip() {
        let (ds, embedder) = sample(5);
        let path = std::env::temp_dir().join("mfcp_trace_test/trace.csv");
        save_trace(&ds, &path).unwrap();
        let back = load_trace(&path, &embedder).unwrap();
        assert_eq!(back.len(), 5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_malformed_traces() {
        let (ds, embedder) = sample(3);
        let csv = to_csv(&ds);
        assert!(from_csv("", &embedder).is_err());
        assert!(from_csv("not,a,trace", &embedder).is_err());
        // Drop a field from a data row.
        let mut lines: Vec<&str> = csv.lines().collect();
        let butchered = lines[1].rsplit_once(',').unwrap().0.to_string();
        lines[1] = &butchered;
        assert!(from_csv(&lines.join("\n"), &embedder).is_err());
        // Unknown family.
        let bad = csv.replacen("cnn", "gan", 1);
        if bad != csv {
            assert!(from_csv(&bad, &embedder).is_err());
        }
    }

    #[test]
    fn header_shape_checked() {
        // 6 per-cluster columns is not a multiple of 4.
        let text = "family,corpus,depth,width,batch_size,a,b,c,d,e,f\n";
        assert!(from_csv(text, &FeatureEmbedder::bottlenecked_platform()).is_err());
    }
}
