//! Cluster-outage and straggler fault injection.
//!
//! [`crate::execution`] replays a matching under *task-level* failures
//! (reliability draws). Real exchange platforms also lose whole clusters
//! mid-run — a third-party provider reboots, a network partition hits —
//! and individual attempts straggle. This module injects both fault
//! classes into the execution replay and adds the operational response:
//! failure-aware re-matching, where a failed attempt may move to the
//! cluster with the earliest projected finish, under a bounded per-task
//! attempt budget.
//!
//! The timing model extends the aggregate one of
//! [`mfcp_optim::Assignment::cluster_times`]: each cluster processes its
//! queue sequentially at `ζ_i(n_i) · t_ij` per attempt (the batching
//! factor `ζ` stays fixed at the *planned* loads, so re-matching does not
//! retroactively re-batch), and the simulation interleaves clusters by
//! picking whichever has the earliest clock.

use mfcp_optim::{Assignment, MatchingProblem};
use rand::Rng;
use std::collections::VecDeque;

/// A full-cluster outage window: the cluster performs no work during
/// `[start, start + duration)`, and any attempt in flight when the window
/// opens is killed with its partial work lost.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutage {
    /// Index of the cluster that goes down.
    pub cluster: usize,
    /// Wall-clock time at which the outage begins.
    pub start: f64,
    /// Length of the outage.
    pub duration: f64,
}

impl ClusterOutage {
    /// An outage of `duration` on `cluster` beginning at `start`.
    pub fn new(cluster: usize, start: f64, duration: f64) -> Self {
        ClusterOutage {
            cluster,
            start,
            duration,
        }
    }
}

/// A fault-injection plan for one simulated round.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scheduled cluster outages.
    pub outages: Vec<ClusterOutage>,
    /// Probability that any single attempt straggles.
    pub straggler_prob: f64,
    /// Execution-time multiplier applied to a straggling attempt (≥ 1).
    pub straggler_slowdown: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no outages, no stragglers.
    pub fn none() -> Self {
        FaultPlan {
            outages: Vec::new(),
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// Adds an outage window (builder-style).
    pub fn with_outage(mut self, outage: ClusterOutage) -> Self {
        self.outages.push(outage);
        self
    }

    /// Sets the straggler model (builder-style).
    pub fn with_stragglers(mut self, prob: f64, slowdown: f64) -> Self {
        self.straggler_prob = prob;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Checks the plan against a platform of `clusters` clusters.
    pub fn validate(&self, clusters: usize) -> Result<(), String> {
        for (k, o) in self.outages.iter().enumerate() {
            if o.cluster >= clusters {
                return Err(format!(
                    "outage {k}: cluster {} out of range (m = {clusters})",
                    o.cluster
                ));
            }
            if !o.start.is_finite() || o.start < 0.0 {
                return Err(format!("outage {k}: bad start {}", o.start));
            }
            if !o.duration.is_finite() || o.duration < 0.0 {
                return Err(format!("outage {k}: bad duration {}", o.duration));
            }
        }
        if !(0.0..=1.0).contains(&self.straggler_prob) {
            return Err(format!("bad straggler_prob {}", self.straggler_prob));
        }
        if !self.straggler_slowdown.is_finite() || self.straggler_slowdown < 1.0 {
            return Err(format!(
                "bad straggler_slowdown {} (must be ≥ 1)",
                self.straggler_slowdown
            ));
        }
        Ok(())
    }

    /// Per-cluster outage windows `(start, end)`, sorted by start;
    /// zero-length windows are dropped.
    fn windows(&self, clusters: usize) -> Vec<Vec<(f64, f64)>> {
        let mut w = vec![Vec::new(); clusters];
        for o in &self.outages {
            if o.duration > 0.0 {
                w[o.cluster].push((o.start, o.start + o.duration));
            }
        }
        for wi in &mut w {
            wi.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        w
    }
}

/// The outcome of one fault-injected execution round.
#[derive(Debug, Clone)]
pub struct FaultyExecutionReport {
    /// Wall-clock time at which the last task completed (0 if none did).
    pub makespan: f64,
    /// Total attempts per task.
    pub attempts: Vec<usize>,
    /// Tasks that exhausted their attempt budget.
    pub abandoned: Vec<usize>,
    /// Tasks that were re-matched away from their planned cluster at
    /// least once.
    pub remapped: Vec<usize>,
    /// The cluster each task last ran (or was queued) on.
    pub final_cluster: Vec<usize>,
    /// Attempts killed in flight by an opening outage window.
    pub outage_kills: usize,
    /// Attempts that straggled.
    pub stragglers: usize,
    /// Time burnt on failed or killed attempts, per cluster.
    pub wasted_time: Vec<f64>,
    /// Tasks that completed successfully.
    pub successes: usize,
    /// `successes / N` (1.0 for an empty round).
    pub success_rate: f64,
}

/// Advances `clock` past every outage window that contains it (windows
/// sorted by start, so one pass suffices).
fn past_outages(mut clock: f64, windows: &[(f64, f64)]) -> f64 {
    for &(s, e) in windows {
        if s <= clock && clock < e {
            clock = e;
        }
    }
    clock
}

/// Replays `assignment` under the fault plan with failure-aware
/// re-matching: every failed attempt (reliability draw or outage kill)
/// consumes one unit of the task's `max_attempts` budget, and a task with
/// budget left re-queues on the cluster with the earliest projected
/// finish — which may be a different cluster than the planned one.
///
/// # Panics
///
/// Panics if the plan fails [`FaultPlan::validate`], the assignment and
/// problem disagree on size, or `max_attempts == 0`.
pub fn simulate_with_faults(
    problem: &MatchingProblem,
    assignment: &Assignment,
    plan: &FaultPlan,
    max_attempts: usize,
    rng: &mut impl Rng,
) -> FaultyExecutionReport {
    let m = problem.clusters();
    let n = assignment.tasks();
    assert_eq!(n, problem.tasks(), "assignment/problem size mismatch");
    assert!(max_attempts >= 1, "need at least one attempt per task");
    if let Err(msg) = plan.validate(m) {
        panic!("invalid fault plan: {msg}");
    }

    let _span = mfcp_obs::span("simulate_with_faults");
    let c_attempts = mfcp_obs::counter("platform.faults.attempts");
    let c_rematch = mfcp_obs::counter("platform.faults.rematch");
    let c_outage = mfcp_obs::counter("platform.faults.outage_hits");
    let c_straggle = mfcp_obs::counter("platform.faults.stragglers");
    // Flight-recorder markers: one instant per dispatched attempt and per
    // re-match decision, arg = task index, so a trace shows which tasks
    // bounced between clusters during the replay.
    let ev_attempt = mfcp_obs::trace::intern("fault.attempt");
    let ev_rematch = mfcp_obs::trace::intern("fault.rematch");

    // Batching factors frozen at the planned loads.
    let counts = assignment.loads(m);
    let factor: Vec<f64> = (0..m)
        .map(|i| problem.speedup[i].eval(counts[i] as f64))
        .collect();
    let windows = plan.windows(m);

    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); m];
    for (j, &c) in assignment.cluster_of.iter().enumerate() {
        queues[c].push_back(j);
    }

    let mut clock = vec![0.0f64; m];
    let mut finish = vec![0.0f64; m];
    let mut wasted_time = vec![0.0f64; m];
    let mut attempts = vec![0usize; n];
    let mut final_cluster = assignment.cluster_of.clone();
    let mut was_remapped = vec![false; n];
    let mut abandoned = Vec::new();
    let mut outage_kills = 0usize;
    let mut stragglers = 0usize;
    let mut successes = 0usize;

    // Next attempt runs on the busiest-free (earliest-clock) cluster
    // with pending work; ties break toward the lowest index.
    while let Some(i) = (0..m)
        .filter(|&i| !queues[i].is_empty())
        .min_by(|&a, &b| clock[a].total_cmp(&clock[b]))
    {
        let j = queues[i].pop_front().expect("non-empty queue");

        // Dispatch-time re-matching: if this cluster is down right now,
        // move the task to the cluster with the earliest projected finish
        // instead of waiting out the outage (no attempt is consumed — the
        // task never started). Moves require a strictly better candidate,
        // so a task on the least-bad cluster settles and waits.
        let ready = past_outages(clock[i], &windows[i]);
        if ready > clock[i] {
            let k = (0..m)
                .min_by(|&a, &b| {
                    let fa =
                        past_outages(clock[a], &windows[a]) + factor[a] * problem.times[(a, j)];
                    let fb =
                        past_outages(clock[b], &windows[b]) + factor[b] * problem.times[(b, j)];
                    fa.total_cmp(&fb)
                })
                .expect("at least one cluster");
            if k != i {
                c_rematch.inc();
                mfcp_obs::trace::instant_id(ev_rematch, Some(j as u64));
                was_remapped[j] = true;
                final_cluster[j] = k;
                queues[k].push_back(j);
                continue;
            }
        }

        attempts[j] += 1;
        c_attempts.inc();
        mfcp_obs::trace::instant_id(ev_attempt, Some(j as u64));
        clock[i] = ready;

        let mut duration = factor[i] * problem.times[(i, j)];
        if plan.straggler_prob > 0.0 && rng.gen_bool(plan.straggler_prob) {
            duration *= plan.straggler_slowdown;
            stragglers += 1;
            c_straggle.inc();
        }

        // An outage window opening mid-attempt kills the attempt: the
        // partial work until the window opens is lost.
        let kill = windows[i]
            .iter()
            .find(|&&(s, _)| clock[i] < s && s < clock[i] + duration)
            .copied();
        let failed = if let Some((s, _)) = kill {
            // The clock stops where the cluster went down, not at the
            // window's end — the next dispatch sees the cluster as down
            // and can migrate instead of waiting.
            wasted_time[i] += s - clock[i];
            clock[i] = s;
            outage_kills += 1;
            c_outage.inc();
            true
        } else {
            clock[i] += duration;
            let p = problem.reliability[(i, j)].clamp(0.0, 1.0);
            if rng.gen_bool(p) {
                finish[i] = clock[i];
                successes += 1;
                false
            } else {
                wasted_time[i] += duration;
                true
            }
        };

        if failed {
            if attempts[j] >= max_attempts {
                abandoned.push(j);
                continue;
            }
            // Failure-aware re-matching: earliest projected finish,
            // looking past any outage the candidate is currently in.
            let k = (0..m)
                .min_by(|&a, &b| {
                    let fa =
                        past_outages(clock[a], &windows[a]) + factor[a] * problem.times[(a, j)];
                    let fb =
                        past_outages(clock[b], &windows[b]) + factor[b] * problem.times[(b, j)];
                    fa.total_cmp(&fb)
                })
                .expect("at least one cluster");
            if k != i {
                was_remapped[j] = true;
            }
            c_rematch.inc();
            mfcp_obs::trace::instant_id(ev_rematch, Some(j as u64));
            final_cluster[j] = k;
            queues[k].push_back(j);
        }
    }

    let makespan = finish.iter().cloned().fold(0.0, f64::max);
    let success_rate = if n == 0 {
        1.0
    } else {
        successes as f64 / n as f64
    };
    let remapped = (0..n).filter(|&j| was_remapped[j]).collect();
    mfcp_obs::counter("platform.faults.abandoned").add(abandoned.len() as u64);
    mfcp_obs::counter("platform.faults.successes").add(successes as u64);
    FaultyExecutionReport {
        makespan,
        attempts,
        abandoned,
        remapped,
        final_cluster,
        outage_kills,
        stragglers,
        wasted_time,
        successes,
        success_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reliable_problem(m: usize, n: usize, t: f64) -> MatchingProblem {
        MatchingProblem::new(Matrix::filled(m, n, t), Matrix::filled(m, n, 1.0), 0.5)
    }

    #[test]
    fn no_faults_matches_planned_makespan() {
        let p = reliable_problem(2, 4, 1.0);
        let asg = Assignment::new(vec![0, 0, 1, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_with_faults(&p, &asg, &FaultPlan::none(), 3, &mut rng);
        assert_eq!(r.attempts, vec![1; 4]);
        assert!(r.abandoned.is_empty());
        assert!(r.remapped.is_empty());
        assert_eq!(r.outage_kills, 0);
        assert_eq!(r.stragglers, 0);
        assert_eq!(r.successes, 4);
        assert!((r.makespan - asg.makespan(&p)).abs() < 1e-12);
        assert_eq!(r.final_cluster, asg.cluster_of);
    }

    #[test]
    fn outage_kills_inflight_work_and_remaps_to_survivor() {
        // Cluster 0 dies at t = 0.5 for effectively the whole run; its
        // tasks (1s each) are killed mid-flight and must migrate to
        // cluster 1.
        let p = reliable_problem(2, 3, 1.0);
        let asg = Assignment::new(vec![0, 0, 0]);
        let plan = FaultPlan::none().with_outage(ClusterOutage::new(0, 0.5, 1000.0));
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_with_faults(&p, &asg, &plan, 3, &mut rng);
        assert!(r.outage_kills >= 1, "first attempt must be killed at 0.5");
        assert_eq!(r.successes, 3, "all tasks recover on the survivor");
        assert!(r.abandoned.is_empty());
        assert_eq!(r.remapped, vec![0, 1, 2]);
        assert!(r.final_cluster.iter().all(|&c| c == 1));
        // Cluster 1 is idle (ζ at planned load 0 is 1): three serial
        // seconds there, so the makespan lands at ~3 despite the outage.
        assert!(r.makespan <= 3.0 + 1e-9, "makespan {}", r.makespan);
        assert!(r.wasted_time[0] > 0.0, "killed work is wasted");
    }

    #[test]
    fn outage_kill_consumes_the_only_attempt() {
        // One cluster, attempt budget 1. The first task is killed in
        // flight when the outage opens and has no budget left; the second
        // was still queued, so it waits the outage out (there is nowhere
        // to migrate) and completes afterwards.
        let p = reliable_problem(1, 2, 1.0);
        let asg = Assignment::new(vec![0, 0]);
        let plan = FaultPlan::none().with_outage(ClusterOutage::new(0, 0.25, 1e9));
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate_with_faults(&p, &asg, &plan, 1, &mut rng);
        assert_eq!(r.abandoned, vec![0]);
        assert_eq!(r.successes, 1);
        assert_eq!(r.outage_kills, 1);
        assert!(r.remapped.is_empty(), "nowhere to migrate");
        assert!(r.makespan > 1e9, "the survivor ran after the outage");
        assert_eq!(r.success_rate, 0.5);
    }

    #[test]
    fn stragglers_inflate_makespan() {
        let p = reliable_problem(1, 4, 1.0);
        let asg = Assignment::new(vec![0; 4]);
        let plan = FaultPlan::none().with_stragglers(1.0, 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_with_faults(&p, &asg, &plan, 2, &mut rng);
        assert_eq!(r.stragglers, 4);
        assert!((r.makespan - 5.0 * asg.makespan(&p)).abs() < 1e-9);
    }

    #[test]
    fn retry_in_place_when_own_cluster_is_fastest() {
        // Unreliable but much faster than the alternative: failed
        // attempts should retry in place, not migrate.
        let t = Matrix::from_rows(&[&[1.0, 1.0], &[50.0, 50.0]]);
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[1.0, 1.0]]);
        let p = MatchingProblem::new(t, a, 0.0);
        let asg = Assignment::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(5);
        let r = simulate_with_faults(&p, &asg, &FaultPlan::none(), 10, &mut rng);
        assert!(r.remapped.is_empty(), "no reason to leave the fast cluster");
        assert_eq!(r.successes, 2);
        assert!(r.final_cluster.iter().all(|&c| c == 0));
    }

    #[test]
    fn deterministic_under_seed() {
        let p = reliable_problem(2, 5, 1.0);
        let asg = Assignment::new(vec![0, 1, 0, 1, 0]);
        let plan = FaultPlan::none()
            .with_outage(ClusterOutage::new(0, 1.0, 2.0))
            .with_stragglers(0.3, 2.0);
        let a = simulate_with_faults(&p, &asg, &plan, 4, &mut StdRng::seed_from_u64(9));
        let b = simulate_with_faults(&p, &asg, &plan, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.final_cluster, b.final_cluster);
        assert_eq!(a.stragglers, b.stragglers);
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        assert!(FaultPlan::none().validate(2).is_ok());
        assert!(FaultPlan::none()
            .with_outage(ClusterOutage::new(5, 0.0, 1.0))
            .validate(2)
            .is_err());
        assert!(FaultPlan::none()
            .with_outage(ClusterOutage::new(0, f64::NAN, 1.0))
            .validate(2)
            .is_err());
        assert!(FaultPlan::none()
            .with_outage(ClusterOutage::new(0, 0.0, -1.0))
            .validate(2)
            .is_err());
        assert!(FaultPlan::none()
            .with_stragglers(1.5, 2.0)
            .validate(2)
            .is_err());
        assert!(FaultPlan::none()
            .with_stragglers(0.5, 0.5)
            .validate(2)
            .is_err());
    }

    #[test]
    fn empty_round_is_trivially_successful() {
        let p = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let asg = Assignment::new(vec![]);
        let mut rng = StdRng::seed_from_u64(11);
        let r = simulate_with_faults(&p, &asg, &FaultPlan::none(), 3, &mut rng);
        assert_eq!(r.success_rate, 1.0);
        assert_eq!(r.makespan, 0.0);
    }
}
