//! Within-cluster schedule simulation.
//!
//! The matching layer treats a cluster's completion time through two
//! summary models: sequential execution (`Σ t_j`, paper Eq. 3) and the
//! speedup-curve adjustment (`ζ(n)·Σ t_j`, Eq. 16). This module provides
//! the *explicit* schedules behind those summaries:
//!
//! * [`sequential_schedule`] — one task at a time, with start/end stamps.
//! * [`processor_sharing_schedule`] — an event-driven generalized
//!   processor-sharing simulation where `k` concurrent tasks share an
//!   aggregate service rate `s(k) = 1/ζ(k)` (so `k` *equal* tasks finish
//!   at exactly `ζ(k)·Σt`, grounding Eq. 16), recomputed at every task
//!   completion.
//! * [`fit_speedup`] — recovers an empirical ζ curve from simulated
//!   schedules, quantifying how well the scalar model summarizes
//!   heterogeneous workloads.

use crate::prelude::MeanStd;
use mfcp_optim::SpeedupCurve;

/// One task's slot in a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleEntry {
    /// Index of the task within the submitted batch.
    pub task: usize,
    /// Start time.
    pub start: f64,
    /// Completion time.
    pub end: f64,
}

/// A complete within-cluster schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Per-task slots, in completion order.
    pub entries: Vec<ScheduleEntry>,
    /// Completion time of the last task.
    pub makespan: f64,
}

impl Schedule {
    /// The entry for a given task index.
    pub fn entry(&self, task: usize) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.task == task)
    }
}

/// Runs `times` one after another in submission order.
pub fn sequential_schedule(times: &[f64]) -> Schedule {
    let mut entries = Vec::with_capacity(times.len());
    let mut clock = 0.0;
    for (task, &t) in times.iter().enumerate() {
        assert!(t >= 0.0 && t.is_finite(), "task times must be non-negative");
        entries.push(ScheduleEntry {
            task,
            start: clock,
            end: clock + t,
        });
        clock += t;
    }
    Schedule {
        entries,
        makespan: clock,
    }
}

/// Event-driven generalized processor sharing: all submitted tasks start
/// at time zero; while `k` tasks remain, the cluster serves at aggregate
/// rate `s(k) = 1/ζ(k)`, split equally. Rates are recomputed whenever a
/// task finishes.
pub fn processor_sharing_schedule(times: &[f64], curve: SpeedupCurve) -> Schedule {
    let n = times.len();
    let mut remaining: Vec<(usize, f64)> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            assert!(t >= 0.0 && t.is_finite(), "task times must be non-negative");
            (i, t)
        })
        .collect();
    let mut entries = Vec::with_capacity(n);
    let mut clock = 0.0;
    while !remaining.is_empty() {
        let k = remaining.len();
        // Aggregate service rate and equal split.
        let aggregate = 1.0 / curve.eval(k as f64).max(1e-12);
        let per_task = aggregate / k as f64;
        // Next completion: the smallest remaining work.
        let (min_idx, &(_, min_work)) = remaining
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .expect("non-empty");
        let dt = min_work / per_task;
        clock += dt;
        // Drain work from everyone.
        for (_, work) in remaining.iter_mut() {
            *work -= min_work;
        }
        let (task, _) = remaining.remove(min_idx);
        entries.push(ScheduleEntry {
            task,
            start: 0.0,
            end: clock,
        });
        // Zero-work tasks finish at the same instant.
        while let Some(pos) = remaining.iter().position(|&(_, w)| w <= 1e-15) {
            let (task, _) = remaining.remove(pos);
            entries.push(ScheduleEntry {
                task,
                start: 0.0,
                end: clock,
            });
        }
    }
    Schedule {
        entries,
        makespan: clock,
    }
}

/// An empirically fitted speedup point: the observed ratio
/// `makespan / Σ t` for batches of a given size.
#[derive(Debug, Clone)]
pub struct SpeedupFit {
    /// Batch size `n`.
    pub batch_size: usize,
    /// Observed `makespan / Σt` across the provided batches.
    pub zeta: MeanStd,
}

/// Fits an empirical ζ curve from simulated processor-sharing schedules
/// of each batch in `batches`.
pub fn fit_speedup(batches: &[Vec<f64>], curve: SpeedupCurve) -> Vec<SpeedupFit> {
    use std::collections::BTreeMap;
    let mut by_size: BTreeMap<usize, MeanStd> = BTreeMap::new();
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let total: f64 = batch.iter().sum();
        if total <= 0.0 {
            continue;
        }
        let schedule = processor_sharing_schedule(batch, curve);
        by_size
            .entry(batch.len())
            .or_default()
            .push(schedule.makespan / total);
    }
    by_size
        .into_iter()
        .map(|(batch_size, zeta)| SpeedupFit { batch_size, zeta })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sequential_is_cumulative() {
        let s = sequential_schedule(&[1.0, 2.0, 3.0]);
        assert_eq!(s.makespan, 6.0);
        assert_eq!(s.entry(0).unwrap().end, 1.0);
        assert_eq!(s.entry(1).unwrap().start, 1.0);
        assert_eq!(s.entry(2).unwrap().end, 6.0);
    }

    #[test]
    fn single_task_unaffected_by_sharing() {
        let s = processor_sharing_schedule(&[2.5], SpeedupCurve::paper_parallel());
        assert!((s.makespan - 2.5).abs() < 1e-12);
    }

    #[test]
    fn equal_tasks_reproduce_zeta_exactly() {
        // k equal tasks under processor sharing all finish at ζ(k)·Σt —
        // the Eq. 16 model is exact for homogeneous batches.
        let curve = SpeedupCurve::paper_parallel();
        for k in 1..=8usize {
            let times = vec![1.5; k];
            let s = processor_sharing_schedule(&times, curve);
            let expected = curve.eval(k as f64) * 1.5 * k as f64;
            assert!(
                (s.makespan - expected).abs() < 1e-9,
                "k={k}: {} vs {expected}",
                s.makespan
            );
        }
    }

    #[test]
    fn heterogeneous_batches_close_to_zeta_model() {
        // With unequal tasks the scalar ζ model is an approximation; the
        // simulated makespan must stay within a modest band of it.
        let curve = SpeedupCurve::paper_parallel();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let k = rng.gen_range(2..8);
            let times: Vec<f64> = (0..k).map(|_| rng.gen_range(0.2..3.0)).collect();
            let total: f64 = times.iter().sum();
            let s = processor_sharing_schedule(&times, curve);
            let model = curve.eval(k as f64) * total;
            let ratio = s.makespan / model;
            assert!(
                (0.6..=1.25).contains(&ratio),
                "ζ model should approximate the schedule: ratio {ratio}"
            );
        }
    }

    #[test]
    fn sharing_beats_sequential_for_multi_task_batches() {
        let curve = SpeedupCurve::paper_parallel();
        let times = [1.0, 2.0, 1.5, 0.5];
        let seq = sequential_schedule(&times);
        let par = processor_sharing_schedule(&times, curve);
        assert!(par.makespan < seq.makespan);
        // But never faster than perfect speedup at the ζ floor.
        assert!(par.makespan >= 0.6 * seq.makespan - 1e-12);
    }

    #[test]
    fn completion_order_is_shortest_first() {
        let s = processor_sharing_schedule(&[3.0, 1.0, 2.0], SpeedupCurve::None);
        let order: Vec<usize> = s.entries.iter().map(|e| e.task).collect();
        assert_eq!(order, vec![1, 2, 0]);
        // Monotone completion stamps.
        for w in s.entries.windows(2) {
            assert!(w[0].end <= w[1].end + 1e-12);
        }
    }

    #[test]
    fn fitted_zeta_decreasing_toward_floor() {
        let curve = SpeedupCurve::paper_parallel();
        let mut rng = StdRng::seed_from_u64(2);
        let mut batches = Vec::new();
        for k in 1..=10usize {
            for _ in 0..20 {
                batches.push((0..k).map(|_| rng.gen_range(0.5..2.0)).collect());
            }
        }
        let fits = fit_speedup(&batches, curve);
        assert_eq!(fits.len(), 10);
        // ζ(1) = 1 exactly; the fitted curve decreases and respects the floor.
        assert!((fits[0].zeta.mean() - 1.0).abs() < 1e-9);
        for w in fits.windows(2) {
            assert!(
                w[1].zeta.mean() <= w[0].zeta.mean() + 0.02,
                "fitted ζ must trend down"
            );
        }
        assert!(fits.last().unwrap().zeta.mean() >= 0.6 - 1e-9);
    }

    #[test]
    fn zero_time_tasks_handled() {
        let s = processor_sharing_schedule(&[0.0, 1.0, 0.0], SpeedupCurve::paper_parallel());
        assert_eq!(s.entries.len(), 3);
        assert!(s.entry(0).unwrap().end <= 1e-12);
        assert!(s.makespan > 0.0);
    }

    #[test]
    fn empty_batch() {
        let s = processor_sharing_schedule(&[], SpeedupCurve::paper_parallel());
        assert_eq!(s.makespan, 0.0);
        assert!(s.entries.is_empty());
    }
}
