//! Streaming mean ± std accumulation and paired-comparison statistics
//! for experiment tables.

use std::fmt;

/// Result of a paired comparison between two methods evaluated on the
/// same seeds/rounds.
#[derive(Debug, Clone)]
pub struct PairedComparison {
    /// Number of pairs where the first method scored strictly lower.
    pub wins: usize,
    /// Number of strict losses.
    pub losses: usize,
    /// Number of ties (within `tie_tol`).
    pub ties: usize,
    /// Mean of the paired differences (first − second).
    pub mean_diff: f64,
    /// Two-sided sign-test p-value for the hypothesis "no difference".
    pub sign_test_p: f64,
}

impl fmt::Display for PairedComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}W/{}L/{}T, Δ={:+.3}, sign-test p={:.3}",
            self.wins, self.losses, self.ties, self.mean_diff, self.sign_test_p
        )
    }
}

/// Exact two-sided binomial sign test: probability of seeing a split at
/// least as extreme as `k` successes out of `n` under p = 1/2.
fn sign_test_p_value(k: usize, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    // P(X <= min(k, n-k)) * 2, X ~ Binomial(n, 1/2), capped at 1.
    let lo = k.min(n - k);
    let mut log_binom = 0.0f64; // log C(n, 0)
    let ln2n = n as f64 * std::f64::consts::LN_2;
    let mut tail = 0.0;
    for i in 0..=lo {
        if i > 0 {
            log_binom += ((n - i + 1) as f64).ln() - (i as f64).ln();
        }
        tail += (log_binom - ln2n).exp();
    }
    (2.0 * tail).min(1.0)
}

/// Pairs per-seed scores of two methods (lower = better) and reports
/// wins/losses/ties plus a sign test. Values within `tie_tol` are ties.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn paired_comparison(first: &[f64], second: &[f64], tie_tol: f64) -> PairedComparison {
    assert_eq!(first.len(), second.len(), "paired slices must align");
    let mut wins = 0;
    let mut losses = 0;
    let mut ties = 0;
    let mut diff_sum = 0.0;
    for (&a, &b) in first.iter().zip(second) {
        diff_sum += a - b;
        if (a - b).abs() <= tie_tol {
            ties += 1;
        } else if a < b {
            wins += 1;
        } else {
            losses += 1;
        }
    }
    let decisive = wins + losses;
    PairedComparison {
        wins,
        losses,
        ties,
        mean_diff: if first.is_empty() {
            0.0
        } else {
            diff_sum / first.len() as f64
        },
        sign_test_p: sign_test_p_value(wins, decisive),
    }
}

/// Welford-style streaming accumulator for mean and standard deviation.
///
/// ```
/// use mfcp_platform::metrics::MeanStd;
/// let acc = MeanStd::from_values([1.0, 2.0, 3.0]);
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(format!("{acc}"), "2.000 ± 0.816");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MeanStd {
    n: usize,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates every value of an iterator.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut acc = Self::new();
        for v in values {
            acc.push(v);
        }
        acc
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for fewer than two observations).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &MeanStd) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n * other.n) as f64 / total as f64;
        self.mean += delta * other.n as f64 / total as f64;
        self.n = total;
    }
}

impl fmt::Display for MeanStd {
    /// Formats as the paper's tables do: `mean ± std` with three decimals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean(), self.std())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_formulas() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let acc = MeanStd::from_values(values.iter().copied());
        assert_eq!(acc.count(), 5);
        assert!((acc.mean() - 3.0).abs() < 1e-12);
        assert!((acc.std() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let empty = MeanStd::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std(), 0.0);
        let one = MeanStd::from_values([7.0]);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.std(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0).collect();
        let all = MeanStd::from_values(xs.iter().copied());
        let mut left = MeanStd::from_values(xs[..20].iter().copied());
        let right = MeanStd::from_values(xs[20..].iter().copied());
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.std() - all.std()).abs() < 1e-12);
        assert_eq!(left.count(), 50);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = MeanStd::from_values([1.0, 2.0]);
        a.merge(&MeanStd::new());
        assert_eq!(a.count(), 2);
        let mut e = MeanStd::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let acc = MeanStd::from_values([1.0, 2.0, 3.0]);
        assert_eq!(format!("{acc}"), "2.000 ± 0.816");
    }

    #[test]
    fn paired_comparison_counts() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 2.0, 4.0, 3.0];
        let cmp = paired_comparison(&a, &b, 1e-9);
        assert_eq!(cmp.wins, 2); // 1<2 and 3<4
        assert_eq!(cmp.losses, 1); // 4>3
        assert_eq!(cmp.ties, 1);
        assert!((cmp.mean_diff - (-0.25)).abs() < 1e-12);
    }

    #[test]
    fn sign_test_values() {
        // All 8 of 8 wins: p = 2 * (1/2)^8 = 1/128.
        let a = [0.0; 8];
        let b = [1.0; 8];
        let cmp = paired_comparison(&a, &b, 1e-12);
        assert_eq!(cmp.wins, 8);
        assert!((cmp.sign_test_p - 2.0 / 256.0).abs() < 1e-12);
        // Even split: p = 1.
        let a = [0.0, 1.0, 0.0, 1.0];
        let b = [1.0, 0.0, 1.0, 0.0];
        let cmp = paired_comparison(&a, &b, 1e-12);
        assert!((cmp.sign_test_p - 1.0).abs() < 1e-9);
        // Empty input.
        let cmp = paired_comparison(&[], &[], 0.0);
        assert_eq!(cmp.sign_test_p, 1.0);
    }

    #[test]
    fn sign_test_monotone_in_extremity() {
        let p6 = paired_comparison(&[0.0; 6], &[1.0; 6], 0.0).sign_test_p;
        let p10 = paired_comparison(&[0.0; 10], &[1.0; 10], 0.0).sign_test_p;
        assert!(p10 < p6, "more consistent wins → smaller p");
    }
}
