//! Streaming exchange events for the online daemon.
//!
//! The paper's platform is continuously operating: tasks arrive, run,
//! and depart while clusters come and go. This module defines the event
//! vocabulary the `mfcp-serve` daemon consumes ([`ExchangeEvent`]) and a
//! deterministic synthetic trace generator ([`generate_trace`]) standing
//! in for a day of production arrivals. Determinism matters more than
//! realism here: the kill/resume differential test replays the *same*
//! trace twice and demands bit-identical assignments, so the generator
//! is a pure function of its [`TraceConfig`] (one seeded RNG, stable
//! sort, no wall clock).

use crate::task::{TaskGenerator, TaskSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One thing that can happen to the exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeEvent {
    /// A new task enters the platform and wants a cluster.
    Arrival {
        /// Platform-wide unique task id (monotonic within a trace).
        task_id: u64,
        /// The submitted job.
        spec: TaskSpec,
    },
    /// A running task finishes (or is withdrawn) and frees its slot.
    Departure {
        /// Id assigned at arrival.
        task_id: u64,
    },
    /// A cluster drops out of the pool (outage); tasks must route
    /// around it until the matching `ClusterUp`.
    ClusterDown {
        /// Index into the serving [`crate::cluster::PerfModel`].
        cluster: usize,
    },
    /// A downed cluster rejoins the pool.
    ClusterUp {
        /// Index into the serving [`crate::cluster::PerfModel`].
        cluster: usize,
    },
}

/// An [`ExchangeEvent`] stamped with its virtual arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual seconds since the start of the trace.
    pub at_secs: f64,
    /// What happened.
    pub event: ExchangeEvent,
}

/// Knobs for [`generate_trace`]. Everything the generated trace depends
/// on lives here, so equal configs produce equal traces.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// RNG seed; the sole source of randomness.
    pub seed: u64,
    /// Virtual length of the trace. Events beyond this are dropped
    /// (departures of still-running tasks included — the daemon treats
    /// end-of-trace as "state freezes here").
    pub duration_secs: f64,
    /// Mean of the exponential inter-arrival gap.
    pub mean_interarrival_secs: f64,
    /// Mean of the exponential task service time (arrival → departure).
    pub mean_service_secs: f64,
    /// Number of clusters in the serving pool (outages pick from these).
    pub clusters: usize,
    /// Number of outage windows to inject across the trace.
    pub outages: usize,
    /// Mean outage duration.
    pub mean_outage_secs: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // A synthetic "day": ~288 arrivals, jobs running a couple of
        // hours each, three cluster outages of ~an hour.
        TraceConfig {
            seed: 0,
            duration_secs: 86_400.0,
            mean_interarrival_secs: 300.0,
            mean_service_secs: 7_200.0,
            clusters: 3,
            outages: 3,
            mean_outage_secs: 3_600.0,
        }
    }
}

/// Exponential draw with the given mean (inverse-CDF of a uniform).
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Generates a deterministic synthetic event trace.
///
/// Arrivals follow a Poisson process (exponential gaps), each arrival
/// schedules its own departure after an exponential service time, and
/// `config.outages` down/up windows land on uniformly random clusters.
/// Events are sorted by virtual time with a stable total order
/// (time, then emission sequence), so ties cannot reorder between runs.
///
/// ```
/// use mfcp_platform::stream::{generate_trace, TraceConfig};
/// let a = generate_trace(&TraceConfig::default());
/// let b = generate_trace(&TraceConfig::default());
/// assert_eq!(a, b);
/// ```
pub fn generate_trace(config: &TraceConfig) -> Vec<TraceEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let generator = TaskGenerator::default();
    // (time, emission sequence, event): the sequence makes the sort a
    // total order even if two virtual timestamps collide exactly.
    let mut events: Vec<(f64, u64, ExchangeEvent)> = Vec::new();
    let mut seq = 0u64;
    let mut push = |events: &mut Vec<(f64, u64, ExchangeEvent)>, at: f64, ev: ExchangeEvent| {
        events.push((at, seq, ev));
        seq += 1;
    };

    let mut clock = 0.0;
    let mut task_id = 0u64;
    loop {
        clock += exp_sample(&mut rng, config.mean_interarrival_secs);
        if clock >= config.duration_secs {
            break;
        }
        let spec = generator.sample(&mut rng);
        push(&mut events, clock, ExchangeEvent::Arrival { task_id, spec });
        let departs = clock + exp_sample(&mut rng, config.mean_service_secs);
        if departs < config.duration_secs {
            push(&mut events, departs, ExchangeEvent::Departure { task_id });
        }
        task_id += 1;
    }

    // Each outage lives in its own 1/outages slice of the trace, so two
    // windows can never overlap (in particular not on the same cluster —
    // the daemon's pool mask assumes down/up events strictly alternate
    // per cluster).
    if config.clusters > 0 && config.outages > 0 {
        let segment = config.duration_secs / config.outages as f64;
        for i in 0..config.outages {
            let cluster = rng.gen_range(0..config.clusters);
            let down = i as f64 * segment + rng.gen_range(0.0..segment / 2.0);
            let up = (down + exp_sample(&mut rng, config.mean_outage_secs))
                .min((i as f64 + 1.0) * segment);
            push(&mut events, down, ExchangeEvent::ClusterDown { cluster });
            if up < config.duration_secs {
                push(&mut events, up, ExchangeEvent::ClusterUp { cluster });
            }
        }
    }

    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    events
        .into_iter()
        .map(|(at_secs, _, event)| TraceEvent { at_secs, event })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn trace_is_deterministic() {
        let config = TraceConfig::default();
        let a = generate_trace(&config);
        let b = generate_trace(&config);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let other = generate_trace(&TraceConfig { seed: 1, ..config });
        assert_ne!(a, other, "different seeds yield different traces");
    }

    #[test]
    fn trace_is_time_ordered_and_consistent() {
        let trace = generate_trace(&TraceConfig::default());
        let mut alive: HashSet<u64> = HashSet::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut down: HashSet<usize> = HashSet::new();
        let mut last = 0.0;
        for ev in &trace {
            assert!(ev.at_secs >= last, "events must be time-sorted");
            assert!(ev.at_secs < 86_400.0);
            last = ev.at_secs;
            match &ev.event {
                ExchangeEvent::Arrival { task_id, spec } => {
                    assert!(seen.insert(*task_id), "ids are unique");
                    alive.insert(*task_id);
                    assert!(spec.epoch_tflops() > 0.0);
                }
                ExchangeEvent::Departure { task_id } => {
                    assert!(alive.remove(task_id), "departure follows its arrival");
                }
                ExchangeEvent::ClusterDown { cluster } => {
                    assert!(down.insert(*cluster), "no nested outage of one cluster");
                }
                ExchangeEvent::ClusterUp { cluster } => {
                    assert!(down.remove(cluster), "up follows its down");
                }
            }
        }
        assert!(seen.len() > 100, "a day should see a few hundred arrivals");
    }
}
