//! Deep-learning task descriptors and workload generation.
//!
//! Mirrors the paper's workload (§4.1.1): CV models on CIFAR-10 and
//! ImageNet, NLP models on Europarl, "explored different model
//! hyperparameter settings". A [`TaskSpec`] is the information the
//! platform would extract from a submitted training job before embedding
//! it into feature space.

use rand::Rng;

/// Model family of a submitted training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskFamily {
    /// Convolutional network (CV).
    Cnn,
    /// Transformer (CV large-scale or NLP).
    Transformer,
    /// Recurrent network (NLP).
    Rnn,
}

impl TaskFamily {
    /// All families, for enumeration.
    pub const ALL: [TaskFamily; 3] = [TaskFamily::Cnn, TaskFamily::Transformer, TaskFamily::Rnn];

    /// A stable index for one-hot encodings.
    pub fn index(self) -> usize {
        match self {
            TaskFamily::Cnn => 0,
            TaskFamily::Transformer => 1,
            TaskFamily::Rnn => 2,
        }
    }
}

/// Training dataset the job runs over (sets the per-epoch sample count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corpus {
    /// 50k small images.
    Cifar10,
    /// 1.28M larger images.
    ImageNet,
    /// Parallel-text corpus (NLP).
    Europarl,
}

impl Corpus {
    /// Samples per epoch (in thousands).
    pub fn kilo_samples(self) -> f64 {
        match self {
            Corpus::Cifar10 => 50.0,
            Corpus::ImageNet => 1281.0,
            Corpus::Europarl => 650.0,
        }
    }

    /// Mean per-sample size in feature units (drives memory pressure).
    pub fn sample_size(self) -> f64 {
        match self {
            Corpus::Cifar10 => 0.3,
            Corpus::ImageNet => 4.0,
            Corpus::Europarl => 1.0,
        }
    }
}

/// A deep-learning training job as seen by the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Model family.
    pub family: TaskFamily,
    /// Dataset the job trains on.
    pub corpus: Corpus,
    /// Number of layers/blocks.
    pub depth: usize,
    /// Hidden width / channel count.
    pub width: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl TaskSpec {
    /// Approximate parameter count in millions.
    ///
    /// Rough per-family scaling laws: CNN params grow with depth·width²
    /// (conv kernels), transformers with depth·width² (attention + MLP
    /// blocks, larger constant), RNNs with depth·width² (gates, smaller
    /// constant).
    pub fn params_millions(&self) -> f64 {
        let d = self.depth as f64;
        let w = self.width as f64;
        let c = match self.family {
            TaskFamily::Cnn => 9.0e-6,
            TaskFamily::Transformer => 12.0e-6,
            TaskFamily::Rnn => 4.0e-6,
        };
        c * d * w * w
    }

    /// Approximate per-epoch compute in TFLOPs.
    ///
    /// `flops/sample ≈ 2 · params · sample_size_factor`, times the number
    /// of samples per epoch. Transformers pay a quadratic sequence-length
    /// style surcharge that grows with width (longer contexts in bigger
    /// models); this is the nonlinearity that makes per-cluster response
    /// curves interesting.
    pub fn epoch_tflops(&self) -> f64 {
        let base = 2.0 * self.params_millions() * self.corpus.sample_size();
        let surcharge = match self.family {
            TaskFamily::Transformer => 1.0 + (self.width as f64 / 512.0).powi(2) * 0.5,
            TaskFamily::Cnn => 1.0 + self.corpus.sample_size() * 0.25,
            TaskFamily::Rnn => 1.0 + (self.depth as f64 / 8.0) * 0.3,
        };
        base * surcharge * self.corpus.kilo_samples() / 1000.0
    }

    /// Peak activation memory footprint in arbitrary units (drives both
    /// memory-bound slowdowns and out-of-memory-style failures).
    ///
    /// Activation memory grows sub-linearly in batch size (gradient
    /// checkpointing and micro-batching in practice), linearly in width
    /// and depth.
    pub fn memory_units(&self) -> f64 {
        let act = (self.batch_size as f64).sqrt() * self.width as f64 * self.depth as f64 * 1.2e-4;
        act * self.corpus.sample_size().sqrt() + self.params_millions() * 0.05
    }

    /// Communication intensity in `[0, 1]`: how sensitive the job is to
    /// interconnect quality (gradient sync frequency ∝ params / batch).
    pub fn comm_intensity(&self) -> f64 {
        let raw = self.params_millions() / (self.batch_size as f64).max(1.0);
        (raw / (raw + 2.0)).clamp(0.0, 1.0)
    }
}

/// Samples realistic [`TaskSpec`]s.
///
/// ```
/// use mfcp_platform::task::TaskGenerator;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let tasks = TaskGenerator::default().sample_many(4, &mut rng);
/// assert_eq!(tasks.len(), 4);
/// assert!(tasks.iter().all(|t| t.epoch_tflops() > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct TaskGenerator {
    /// Probability of drawing each family (CNN, Transformer, RNN).
    pub family_weights: [f64; 3],
}

impl Default for TaskGenerator {
    fn default() -> Self {
        TaskGenerator {
            family_weights: [0.4, 0.35, 0.25],
        }
    }
}

impl TaskGenerator {
    /// Draws one task.
    pub fn sample(&self, rng: &mut impl Rng) -> TaskSpec {
        let total: f64 = self.family_weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        let mut family = TaskFamily::Cnn;
        for (f, &w) in TaskFamily::ALL.iter().zip(&self.family_weights) {
            if draw < w {
                family = *f;
                break;
            }
            draw -= w;
        }
        let corpus = match family {
            TaskFamily::Cnn => {
                if rng.gen_bool(0.6) {
                    Corpus::Cifar10
                } else {
                    Corpus::ImageNet
                }
            }
            TaskFamily::Transformer => {
                if rng.gen_bool(0.5) {
                    Corpus::ImageNet
                } else {
                    Corpus::Europarl
                }
            }
            TaskFamily::Rnn => Corpus::Europarl,
        };
        // Architecture sizes are corpus-aware: users submit small models
        // on the heavyweight corpora (per-epoch budgets would otherwise be
        // unaffordable on an exchange of modest clusters), which also
        // keeps the per-epoch time distribution within ~2 orders of
        // magnitude instead of 4.
        let heavyweight = corpus == Corpus::ImageNet;
        let depth = match family {
            TaskFamily::Cnn => {
                if heavyweight {
                    rng.gen_range(8..=20)
                } else {
                    rng.gen_range(8..=32)
                }
            }
            TaskFamily::Transformer => {
                if heavyweight {
                    rng.gen_range(4..=8)
                } else {
                    rng.gen_range(4..=16)
                }
            }
            TaskFamily::Rnn => rng.gen_range(2..=8),
        };
        let width = match family {
            TaskFamily::Cnn => {
                if heavyweight {
                    *[64, 128, 192].get(rng.gen_range(0..3usize)).unwrap()
                } else {
                    *[64, 128, 256, 384].get(rng.gen_range(0..4usize)).unwrap()
                }
            }
            TaskFamily::Transformer => {
                if heavyweight {
                    *[192, 256, 384].get(rng.gen_range(0..3usize)).unwrap()
                } else {
                    *[256, 384, 512, 768].get(rng.gen_range(0..4usize)).unwrap()
                }
            }
            TaskFamily::Rnn => *[128, 256, 512].get(rng.gen_range(0..3usize)).unwrap(),
        };
        let batch_size = *[16, 32, 64, 128].get(rng.gen_range(0..4usize)).unwrap();
        TaskSpec {
            family,
            corpus,
            depth,
            width,
            batch_size,
        }
    }

    /// Draws `n` tasks.
    pub fn sample_many(&self, n: usize, rng: &mut impl Rng) -> Vec<TaskSpec> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_scale_with_size() {
        let small = TaskSpec {
            family: TaskFamily::Cnn,
            corpus: Corpus::Cifar10,
            depth: 8,
            width: 64,
            batch_size: 32,
        };
        let big = TaskSpec {
            width: 512,
            depth: 50,
            ..small.clone()
        };
        assert!(big.params_millions() > 50.0 * small.params_millions());
        assert!(big.epoch_tflops() > small.epoch_tflops());
        assert!(big.memory_units() > small.memory_units());
    }

    #[test]
    fn transformer_width_surcharge_is_superlinear() {
        let base = TaskSpec {
            family: TaskFamily::Transformer,
            corpus: Corpus::Europarl,
            depth: 12,
            width: 256,
            batch_size: 64,
        };
        let wide = TaskSpec {
            width: 1024,
            ..base.clone()
        };
        // Params grow 16x with width 4x; flops must grow even faster.
        let param_ratio = wide.params_millions() / base.params_millions();
        let flop_ratio = wide.epoch_tflops() / base.epoch_tflops();
        assert!(
            flop_ratio > param_ratio * 1.2,
            "{flop_ratio} vs {param_ratio}"
        );
    }

    #[test]
    fn comm_intensity_bounded_and_monotone() {
        let spec = TaskSpec {
            family: TaskFamily::Transformer,
            corpus: Corpus::Europarl,
            depth: 12,
            width: 768,
            batch_size: 16,
        };
        let big_batch = TaskSpec {
            batch_size: 256,
            ..spec.clone()
        };
        assert!((0.0..=1.0).contains(&spec.comm_intensity()));
        assert!(
            spec.comm_intensity() > big_batch.comm_intensity(),
            "bigger batches sync less often"
        );
    }

    #[test]
    fn generator_produces_valid_specs() {
        let gen = TaskGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        let tasks = gen.sample_many(200, &mut rng);
        assert_eq!(tasks.len(), 200);
        let mut families = [0usize; 3];
        for t in &tasks {
            assert!(t.depth >= 2 && t.depth <= 50);
            assert!(t.width >= 64 && t.width <= 1024);
            assert!(t.params_millions() > 0.0);
            assert!(t.epoch_tflops() > 0.0);
            families[t.family.index()] += 1;
        }
        // All three families should show up in 200 draws.
        assert!(families.iter().all(|&c| c > 10), "{families:?}");
    }

    #[test]
    fn generator_deterministic_under_seed() {
        let gen = TaskGenerator::default();
        let a = gen.sample_many(20, &mut StdRng::seed_from_u64(9));
        let b = gen.sample_many(20, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn rnn_uses_europarl() {
        let gen = TaskGenerator {
            family_weights: [0.0, 0.0, 1.0],
        };
        let mut rng = StdRng::seed_from_u64(3);
        for t in gen.sample_many(20, &mut rng) {
            assert_eq!(t.family, TaskFamily::Rnn);
            assert_eq!(t.corpus, Corpus::Europarl);
        }
    }
}
