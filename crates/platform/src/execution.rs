//! Failure-injecting execution simulation.
//!
//! Given a discrete matching, replays the workload on the platform: each
//! task succeeds with its ground-truth probability; cluster completion
//! times follow the (speedup-adjusted) schedule. This produces the
//! §4.1.3 evaluation quantities — makespan, realized success rate, and
//! cluster utilization — under actual stochastic execution rather than in
//! expectation.

use mfcp_optim::{Assignment, MatchingProblem};
use rand::Rng;

/// The outcome of one simulated execution round.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Wall-clock completion time of the slowest cluster.
    pub makespan: f64,
    /// Per-cluster busy time (speedup-adjusted).
    pub cluster_busy: Vec<f64>,
    /// Number of tasks that completed successfully.
    pub successes: usize,
    /// Indices of tasks that failed.
    pub failed_tasks: Vec<usize>,
    /// Realized success rate (`successes / N`; 1.0 for an empty round).
    pub success_rate: f64,
    /// Cluster utilization: `Σ busy / (M · makespan)`.
    pub utilization: f64,
}

/// Simulates one execution of `assignment` on the true performance
/// matrices in `problem`, drawing task failures from the reliability
/// entries.
pub fn simulate_execution(
    problem: &MatchingProblem,
    assignment: &Assignment,
    rng: &mut impl Rng,
) -> ExecutionReport {
    let n = assignment.tasks();
    assert_eq!(n, problem.tasks(), "assignment/problem size mismatch");
    let cluster_busy = assignment.cluster_times(problem);
    let makespan = cluster_busy.iter().cloned().fold(0.0, f64::max);
    let mut failed_tasks = Vec::new();
    for (j, &c) in assignment.cluster_of.iter().enumerate() {
        let p = problem.reliability[(c, j)].clamp(0.0, 1.0);
        if !rng.gen_bool(p) {
            failed_tasks.push(j);
        }
    }
    let successes = n - failed_tasks.len();
    let success_rate = if n == 0 {
        1.0
    } else {
        successes as f64 / n as f64
    };
    let utilization = if makespan <= 0.0 {
        1.0
    } else {
        cluster_busy.iter().sum::<f64>() / (problem.clusters() as f64 * makespan)
    };
    ExecutionReport {
        makespan,
        cluster_busy,
        successes,
        failed_tasks,
        success_rate,
        utilization,
    }
}

/// The outcome of an execution with retries.
#[derive(Debug, Clone)]
pub struct RetryReport {
    /// Wall-clock completion including retry attempts.
    pub makespan: f64,
    /// Total attempts per task (1 = succeeded first try).
    pub attempts: Vec<usize>,
    /// Tasks that exhausted every attempt and were abandoned.
    pub abandoned: Vec<usize>,
    /// Extra busy time spent on failed attempts, per cluster.
    pub wasted_time: Vec<f64>,
}

/// Simulates execution where failed tasks are retried on their assigned
/// cluster up to `max_attempts` times — the operational cost of
/// unreliability that the paper's reliability constraint guards against:
/// every failed attempt burns the task's full execution time.
pub fn simulate_with_retries(
    problem: &MatchingProblem,
    assignment: &Assignment,
    max_attempts: usize,
    rng: &mut impl Rng,
) -> RetryReport {
    assert!(max_attempts >= 1);
    let m = problem.clusters();
    let n = assignment.tasks();
    assert_eq!(n, problem.tasks());
    let mut attempts = vec![0usize; n];
    let mut abandoned = Vec::new();
    let mut busy = vec![0.0; m];
    let mut wasted_time = vec![0.0; m];
    let mut counts = vec![0.0; m];
    for &c in &assignment.cluster_of {
        counts[c] += 1.0;
    }
    for (j, &c) in assignment.cluster_of.iter().enumerate() {
        let p = problem.reliability[(c, j)].clamp(0.0, 1.0);
        let t = problem.times[(c, j)];
        let mut done = false;
        for _ in 0..max_attempts {
            attempts[j] += 1;
            busy[c] += t;
            if rng.gen_bool(p) {
                done = true;
                break;
            }
            wasted_time[c] += t;
        }
        if !done {
            abandoned.push(j);
        }
    }
    // Apply the speedup curve to each cluster's aggregate busy time using
    // its *task count* (retries share the same batching).
    let makespan = (0..m)
        .map(|i| problem.speedup[i].eval(counts[i]) * busy[i])
        .fold(0.0, f64::max);
    RetryReport {
        makespan,
        attempts,
        abandoned,
        wasted_time,
    }
}

/// Averages `rounds` simulated executions (success rate converges to the
/// assignment's mean reliability by the law of large numbers).
pub fn average_success_rate(
    problem: &MatchingProblem,
    assignment: &Assignment,
    rounds: usize,
    rng: &mut impl Rng,
) -> f64 {
    if rounds == 0 {
        return assignment.mean_reliability(problem);
    }
    let total: f64 = (0..rounds)
        .map(|_| simulate_execution(problem, assignment, rng).success_rate)
        .sum();
    total / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> MatchingProblem {
        let t = Matrix::from_rows(&[&[1.0, 2.0, 1.5], &[2.0, 1.0, 1.0]]);
        let a = Matrix::from_rows(&[&[0.9, 0.8, 0.85], &[0.7, 0.95, 0.9]]);
        MatchingProblem::new(t, a, 0.8)
    }

    #[test]
    fn report_consistency() {
        let p = problem();
        let asg = Assignment::new(vec![0, 1, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate_execution(&p, &asg, &mut rng);
        assert_eq!(report.makespan, asg.makespan(&p));
        assert_eq!(report.successes + report.failed_tasks.len(), 3);
        assert!((0.0..=1.0).contains(&report.utilization));
        assert!((report.utilization - asg.utilization(&p)).abs() < 1e-12);
    }

    #[test]
    fn success_rate_converges_to_mean_reliability() {
        let p = problem();
        let asg = Assignment::new(vec![0, 1, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        let avg = average_success_rate(&p, &asg, 4000, &mut rng);
        let expected = asg.mean_reliability(&p);
        assert!(
            (avg - expected).abs() < 0.02,
            "LLN check: {avg} vs {expected}"
        );
    }

    #[test]
    fn perfect_reliability_never_fails() {
        let t = Matrix::filled(1, 4, 1.0);
        let a = Matrix::filled(1, 4, 1.0);
        let p = MatchingProblem::new(t, a, 0.5);
        let asg = Assignment::new(vec![0; 4]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let r = simulate_execution(&p, &asg, &mut rng);
            assert_eq!(r.successes, 4);
            assert!(r.failed_tasks.is_empty());
        }
    }

    #[test]
    fn empty_round() {
        let p = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let asg = Assignment::new(vec![]);
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_execution(&p, &asg, &mut rng);
        assert_eq!(r.success_rate, 1.0);
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn retries_with_perfect_reliability_are_single_attempts() {
        let t = Matrix::filled(2, 4, 1.0);
        let a = Matrix::filled(2, 4, 1.0);
        let p = MatchingProblem::new(t, a, 0.5);
        let asg = Assignment::new(vec![0, 0, 1, 1]);
        let mut rng = StdRng::seed_from_u64(5);
        let r = simulate_with_retries(&p, &asg, 3, &mut rng);
        assert_eq!(r.attempts, vec![1, 1, 1, 1]);
        assert!(r.abandoned.is_empty());
        assert_eq!(r.wasted_time, vec![0.0, 0.0]);
        assert!((r.makespan - asg.makespan(&p)).abs() < 1e-12);
    }

    #[test]
    fn retries_increase_makespan_under_failures() {
        // 24 tasks so the attempt count concentrates: with 6 tasks a
        // mostly-lucky round (five first-try successes, ~11% likely)
        // lands below any reasonable lower bound.
        let n = 24;
        let t = Matrix::filled(1, n, 1.0);
        let a = Matrix::filled(1, n, 0.5);
        let p = MatchingProblem::new(t, a, 0.0);
        let asg = Assignment::new(vec![0; n]);
        let mut rng = StdRng::seed_from_u64(6);
        let r = simulate_with_retries(&p, &asg, 5, &mut rng);
        assert!(r.makespan > asg.makespan(&p), "retries must add time");
        assert!(r.attempts.iter().any(|&k| k > 1));
        assert!(r.wasted_time[0] > 0.0);
        // Expected attempts per task for p = 0.5 is ~2.
        let mean_attempts: f64 = r.attempts.iter().map(|&k| k as f64).sum::<f64>() / n as f64;
        assert!(
            mean_attempts > 1.2 && mean_attempts < 4.0,
            "mean attempts {mean_attempts}, attempts {:?}",
            r.attempts
        );
    }

    #[test]
    fn unreliable_tasks_eventually_abandoned() {
        // p clamps to the model floor of 0.0 only via construction; use a
        // tiny probability so abandonment is near-certain.
        let t = Matrix::filled(1, 3, 1.0);
        let a = Matrix::filled(1, 3, 0.01);
        let p = MatchingProblem::new(t, a, 0.0);
        let asg = Assignment::new(vec![0; 3]);
        let mut rng = StdRng::seed_from_u64(7);
        let r = simulate_with_retries(&p, &asg, 2, &mut rng);
        assert!(!r.abandoned.is_empty());
        for &j in &r.abandoned {
            assert_eq!(r.attempts[j], 2);
        }
    }

    #[test]
    fn more_reliable_matching_wastes_less_retry_time() {
        // Same times, very different reliabilities: the reliable cluster
        // wastes less time across many simulations — the operational
        // motivation for the paper's reliability constraint.
        let t = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0, 1.0, 1.0]]);
        let a = Matrix::from_rows(&[&[0.99, 0.99, 0.99, 0.99], &[0.6, 0.6, 0.6, 0.6]]);
        let p = MatchingProblem::new(t, a, 0.0);
        let reliable = Assignment::new(vec![0; 4]);
        let flaky = Assignment::new(vec![1; 4]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut waste_reliable = 0.0;
        let mut waste_flaky = 0.0;
        for _ in 0..200 {
            waste_reliable += simulate_with_retries(&p, &reliable, 5, &mut rng)
                .wasted_time
                .iter()
                .sum::<f64>();
            waste_flaky += simulate_with_retries(&p, &flaky, 5, &mut rng)
                .wasted_time
                .iter()
                .sum::<f64>();
        }
        assert!(waste_reliable < waste_flaky * 0.2);
    }
}
