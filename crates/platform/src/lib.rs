//! A synthetic computing resource exchange platform.
//!
//! The paper evaluates MFCP on proprietary measurements from the Xirang
//! platform (China Telecom): per-epoch runtimes and success probabilities
//! of CV/NLP training jobs on third-party clusters. That data is not
//! available, so this crate simulates the platform end to end — the
//! substitution is recorded in DESIGN.md and preserves the two phenomena
//! MFCP exploits:
//!
//! 1. **Cluster-specific task preferences** (the paper's Fig. 2): each
//!    cluster's ground-truth execution-time model responds differently to
//!    task structure (tensor-core-rich clusters favour transformers,
//!    memory-bound clusters punish large activations, etc.), with
//!    nonlinearities a small MLP cannot fit exactly from few samples.
//! 2. **Reliability as a binding constraint**: third-party clusters fail
//!    tasks with probabilities driven by cluster stability and task
//!    resource pressure.
//!
//! Modules:
//!
//! * [`task`] — deep-learning task descriptors (CNN / Transformer / RNN
//!   families with hyper-parameters) and workload generators.
//! * [`embedding`] — a deterministic nonlinear feature embedding standing
//!   in for the paper's GNN task encoder.
//! * [`cluster`] — heterogeneous cluster hardware profiles and the
//!   ground-truth execution-time / reliability models.
//! * [`dataset`] — sampling `(z, t, a)` training data with measurement
//!   noise, per cluster, plus train/test splits.
//! * [`settings`] — the cluster pool and the paper's evaluation settings
//!   A/B/C (§4.3).
//! * [`execution`] — a failure-injecting execution simulator producing
//!   the makespan / reliability / utilization numbers of §4.1.3.
//! * [`fault`] — mid-run cluster outages and stragglers on top of the
//!   execution replay, with failure-aware re-matching under a bounded
//!   attempt budget.
//! * [`metrics`] — mean ± std accumulators used by every experiment.
//! * [`stream`] — streaming exchange events (arrivals, departures,
//!   cluster outages) and a deterministic day-long trace generator for
//!   the online serving daemon.
//! * [`trace`] — CSV import/export of measurement traces.
//! * [`scheduler`] — explicit within-cluster schedules (sequential and
//!   processor-sharing), grounding the ζ speedup model of Eq. 16.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod dataset;
pub mod embedding;
pub mod execution;
pub mod fault;
pub mod metrics;
pub mod scheduler;
pub mod settings;
pub mod stream;
pub mod task;
pub mod trace;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cluster::{ClusterProfile, PerfModel};
    pub use crate::dataset::{ClusterTaskData, PlatformDataset};
    pub use crate::embedding::FeatureEmbedder;
    pub use crate::execution::{simulate_execution, ExecutionReport};
    pub use crate::fault::{simulate_with_faults, ClusterOutage, FaultPlan, FaultyExecutionReport};
    pub use crate::metrics::{paired_comparison, MeanStd, PairedComparison};
    pub use crate::settings::{ClusterPool, Setting};
    pub use crate::stream::{generate_trace, ExchangeEvent, TraceConfig, TraceEvent};
    pub use crate::task::{TaskFamily, TaskGenerator, TaskSpec};
}
