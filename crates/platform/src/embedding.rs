//! Deterministic task-feature embedding — the stand-in for the paper's
//! GNN task encoder.
//!
//! The paper (§2.1) treats task-to-feature embedding as a solved,
//! orthogonal problem ("we focus on training predictors that map features
//! to the performance predictions and omit the distinction between tasks
//! and features"). We therefore use a fixed, deterministic nonlinear
//! embedding: interpretable structural features (log-compute, memory
//! pressure, family one-hots, …) passed through a seeded random projection
//! with a tanh nonlinearity — an echo-state-style featurizer that gives
//! the predictors a rich but *imperfect* view of the task, exactly the
//! regime where prediction error (and hence regret) is unavoidable.

use crate::task::TaskSpec;
use mfcp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of raw structural features extracted before projection.
pub const RAW_FEATURES: usize = 10;

/// A fixed nonlinear embedding from [`TaskSpec`]s to feature vectors.
#[derive(Debug, Clone)]
pub struct FeatureEmbedder {
    dim: usize,
    projection: Matrix, // RAW_FEATURES x dim
    raw_indices: Vec<usize>,
}

impl FeatureEmbedder {
    /// Creates an embedder with `dim` projected features (plus all the raw
    /// structural features when `include_raw`). The projection matrix is
    /// derived deterministically from `seed`.
    pub fn new(dim: usize, include_raw: bool, seed: u64) -> Self {
        let raw_indices = if include_raw {
            (0..RAW_FEATURES).collect()
        } else {
            Vec::new()
        };
        Self::with_raw_subset(raw_indices, dim, seed)
    }

    /// Creates an embedder exposing only the raw features at
    /// `raw_indices` (see [`FeatureEmbedder::raw_features`] for the
    /// ordering) plus `dim` nonlinear projections of all of them — an
    /// information bottleneck mimicking an imperfect learned encoder.
    pub fn with_raw_subset(raw_indices: Vec<usize>, dim: usize, seed: u64) -> Self {
        assert!(raw_indices.iter().all(|&i| i < RAW_FEATURES));
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / RAW_FEATURES as f64).sqrt();
        let projection = Matrix::from_fn(RAW_FEATURES, dim, |_, _| rng.gen_range(-scale..scale));
        FeatureEmbedder {
            dim,
            projection,
            raw_indices,
        }
    }

    /// The default embedder used across the experiments.
    pub fn default_platform() -> Self {
        FeatureEmbedder::new(8, true, 0x5eed)
    }

    /// A bottlenecked embedder: the predictors see the model family and
    /// the memory footprint directly, but all compute detail only through
    /// the nonlinear projections.
    pub fn bottlenecked_platform() -> Self {
        FeatureEmbedder::with_raw_subset(vec![0, 1, 2, 5], 8, 0x5eed)
    }

    /// Output feature dimension.
    pub fn dim(&self) -> usize {
        self.dim + self.raw_indices.len()
    }

    /// Raw structural features, roughly normalized to `[-1, 1]`.
    pub fn raw_features(task: &TaskSpec) -> [f64; RAW_FEATURES] {
        let f = task.family.index();
        [
            (f == 0) as u8 as f64,
            (f == 1) as u8 as f64,
            (f == 2) as u8 as f64,
            ((task.params_millions() + 1.0).ln() / 8.0).tanh(),
            ((task.epoch_tflops() + 1.0).ln() / 8.0).tanh(),
            (task.memory_units() / 50.0).tanh(),
            task.comm_intensity(),
            (task.depth as f64 / 50.0).clamp(0.0, 1.0),
            (task.width as f64 / 1024.0).clamp(0.0, 1.0),
            ((task.batch_size as f64).log2() / 8.0).clamp(0.0, 1.0),
        ]
    }

    /// Embeds one task.
    pub fn embed(&self, task: &TaskSpec) -> Vec<f64> {
        let raw = Self::raw_features(task);
        let mut out = Vec::with_capacity(self.dim());
        for &i in &self.raw_indices {
            out.push(raw[i]);
        }
        for c in 0..self.dim {
            let mut acc = 0.0;
            for (r, &x) in raw.iter().enumerate() {
                acc += self.projection[(r, c)] * x;
            }
            out.push(acc.tanh());
        }
        out
    }

    /// Embeds a batch of tasks into an `n x dim()` matrix.
    pub fn embed_batch(&self, tasks: &[TaskSpec]) -> Matrix {
        let d = self.dim();
        let mut m = Matrix::zeros(tasks.len(), d);
        for (r, task) in tasks.iter().enumerate() {
            let z = self.embed(task);
            m.row_mut(r).copy_from_slice(&z);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskFamily, TaskGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embedding_dimensions() {
        let e = FeatureEmbedder::new(8, true, 1);
        assert_eq!(e.dim(), 18);
        let e2 = FeatureEmbedder::new(8, false, 1);
        assert_eq!(e2.dim(), 8);
    }

    #[test]
    fn deterministic() {
        let e1 = FeatureEmbedder::new(6, true, 42);
        let e2 = FeatureEmbedder::new(6, true, 42);
        let mut rng = StdRng::seed_from_u64(5);
        let t = TaskGenerator::default().sample(&mut rng);
        assert_eq!(e1.embed(&t), e2.embed(&t));
        let e3 = FeatureEmbedder::new(6, true, 43);
        assert_ne!(e1.embed(&t), e3.embed(&t));
    }

    #[test]
    fn features_bounded() {
        let e = FeatureEmbedder::default_platform();
        let mut rng = StdRng::seed_from_u64(6);
        for t in TaskGenerator::default().sample_many(100, &mut rng) {
            for &f in &e.embed(&t) {
                assert!(f.is_finite());
                assert!((-1.5..=1.5).contains(&f), "feature {f} out of range");
            }
        }
    }

    #[test]
    fn distinguishes_families() {
        let e = FeatureEmbedder::default_platform();
        let mut rng = StdRng::seed_from_u64(7);
        let gen = TaskGenerator::default();
        let tasks = gen.sample_many(50, &mut rng);
        let cnn = tasks.iter().find(|t| t.family == TaskFamily::Cnn).unwrap();
        let tr = tasks
            .iter()
            .find(|t| t.family == TaskFamily::Transformer)
            .unwrap();
        assert_ne!(e.embed(cnn)[..3], e.embed(tr)[..3]);
    }

    #[test]
    fn batch_matches_single() {
        let e = FeatureEmbedder::default_platform();
        let mut rng = StdRng::seed_from_u64(8);
        let tasks = TaskGenerator::default().sample_many(5, &mut rng);
        let batch = e.embed_batch(&tasks);
        assert_eq!(batch.shape(), (5, e.dim()));
        for (r, t) in tasks.iter().enumerate() {
            assert_eq!(batch.row(r), e.embed(t).as_slice());
        }
    }
}
