//! Sampling `(z, t, a)` training data from the platform.
//!
//! The paper gathers ground truth by actually executing tasks: measured
//! runtimes carry run-to-run variance, and reliability is an *empirical
//! frequency* over a finite number of runs. Both effects are modelled
//! here, because they are precisely the prediction noise the MFCP
//! framework is designed to be robust to.

use crate::cluster::PerfModel;
use crate::embedding::FeatureEmbedder;
use crate::task::{TaskGenerator, TaskSpec};
use mfcp_linalg::Matrix;
use rand::Rng;

/// Measurement-noise configuration.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Relative (multiplicative, log-normal-ish) runtime noise std.
    pub time_rel_std: f64,
    /// Number of Bernoulli trials behind each measured reliability
    /// (0 = record the exact probability).
    pub reliability_trials: usize,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            time_rel_std: 0.06,
            reliability_trials: 25,
        }
    }
}

/// A set of tasks with shared features and per-cluster measurements.
#[derive(Debug, Clone)]
pub struct PlatformDataset {
    /// The sampled task specs.
    pub tasks: Vec<TaskSpec>,
    /// `N x d` task features (shared by every cluster's predictor).
    pub features: Matrix,
    /// `M x N` *measured* execution times (noisy).
    pub times: Matrix,
    /// `M x N` *measured* reliabilities (empirical frequencies).
    pub reliability: Matrix,
    /// `M x N` noiseless ground-truth times.
    pub true_times: Matrix,
    /// `M x N` noiseless ground-truth reliabilities.
    pub true_reliability: Matrix,
}

/// The measurements for a single cluster, in the supervised-learning
/// layout the predictors train on.
#[derive(Debug, Clone)]
pub struct ClusterTaskData {
    /// `N x d` features.
    pub features: Matrix,
    /// `N x 1` measured execution times.
    pub times: Matrix,
    /// `N x 1` measured reliabilities.
    pub reliability: Matrix,
}

impl PlatformDataset {
    /// Samples `n` tasks from `generator`, embeds them, and measures every
    /// cluster on every task.
    pub fn generate(
        model: &PerfModel,
        embedder: &FeatureEmbedder,
        generator: &TaskGenerator,
        n: usize,
        noise: &NoiseConfig,
        rng: &mut impl Rng,
    ) -> PlatformDataset {
        let tasks = generator.sample_many(n, rng);
        Self::from_tasks(model, embedder, tasks, noise, rng)
    }

    /// Builds a dataset for an explicit task list.
    pub fn from_tasks(
        model: &PerfModel,
        embedder: &FeatureEmbedder,
        tasks: Vec<TaskSpec>,
        noise: &NoiseConfig,
        rng: &mut impl Rng,
    ) -> PlatformDataset {
        let features = embedder.embed_batch(&tasks);
        let true_times = model.time_matrix(&tasks);
        let true_reliability = model.reliability_matrix(&tasks);
        let m = model.len();
        let n = tasks.len();
        let mut times = true_times.clone();
        let mut reliability = true_reliability.clone();
        for i in 0..m {
            for j in 0..n {
                if noise.time_rel_std > 0.0 {
                    let eps = gaussian(rng) * noise.time_rel_std;
                    times[(i, j)] = (true_times[(i, j)] * (1.0 + eps)).max(1e-6);
                }
                if noise.reliability_trials > 0 {
                    let p = true_reliability[(i, j)];
                    let successes = (0..noise.reliability_trials)
                        .filter(|_| rng.gen_bool(p.clamp(0.0, 1.0)))
                        .count();
                    reliability[(i, j)] = successes as f64 / noise.reliability_trials as f64;
                }
            }
        }
        PlatformDataset {
            tasks,
            features,
            times,
            reliability,
            true_times,
            true_reliability,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.times.rows()
    }

    /// The supervised view for cluster `i` (measured values).
    pub fn cluster_data(&self, i: usize) -> ClusterTaskData {
        let n = self.len();
        ClusterTaskData {
            features: self.features.clone(),
            times: Matrix::from_fn(n, 1, |r, _| self.times[(i, r)]),
            reliability: Matrix::from_fn(n, 1, |r, _| self.reliability[(i, r)]),
        }
    }

    /// Selects a subset of task indices into a new dataset.
    pub fn select(&self, indices: &[usize]) -> PlatformDataset {
        let tasks: Vec<TaskSpec> = indices.iter().map(|&j| self.tasks[j].clone()).collect();
        let pick_cols =
            |m: &Matrix| Matrix::from_fn(m.rows(), indices.len(), |r, c| m[(r, indices[c])]);
        let features = Matrix::from_fn(indices.len(), self.features.cols(), |r, c| {
            self.features[(indices[r], c)]
        });
        PlatformDataset {
            tasks,
            features,
            times: pick_cols(&self.times),
            reliability: pick_cols(&self.reliability),
            true_times: pick_cols(&self.true_times),
            true_reliability: pick_cols(&self.true_reliability),
        }
    }

    /// Appends another dataset's tasks (same clusters, same feature
    /// dimension) — the replay-buffer operation of a continuously
    /// operating platform.
    ///
    /// # Panics
    /// Panics on cluster-count or feature-dimension mismatch.
    pub fn concat(&self, other: &PlatformDataset) -> PlatformDataset {
        assert_eq!(self.clusters(), other.clusters(), "cluster count mismatch");
        assert_eq!(
            self.features.cols(),
            other.features.cols(),
            "feature dimension mismatch"
        );
        let mut tasks = self.tasks.clone();
        tasks.extend(other.tasks.iter().cloned());
        PlatformDataset {
            tasks,
            features: self
                .features
                .vstack(&other.features)
                .expect("shapes checked"),
            times: self.times.hstack(&other.times).expect("shapes checked"),
            reliability: self
                .reliability
                .hstack(&other.reliability)
                .expect("shapes checked"),
            true_times: self
                .true_times
                .hstack(&other.true_times)
                .expect("shapes checked"),
            true_reliability: self
                .true_reliability
                .hstack(&other.true_reliability)
                .expect("shapes checked"),
        }
    }

    /// Keeps only the most recent `capacity` tasks (replay-buffer bound).
    pub fn truncate_front(&self, capacity: usize) -> PlatformDataset {
        if self.len() <= capacity {
            return self.clone();
        }
        let start = self.len() - capacity;
        let indices: Vec<usize> = (start..self.len()).collect();
        self.select(&indices)
    }

    /// Deterministic split into `(train, test)` by shuffled indices.
    pub fn split(
        &self,
        train_fraction: f64,
        rng: &mut impl Rng,
    ) -> (PlatformDataset, PlatformDataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let mut n_train = (self.len() as f64 * train_fraction) as usize;
        if self.len() >= 2 {
            n_train = n_train.clamp(1, self.len() - 1);
        }
        (self.select(&idx[..n_train]), self.select(&idx[n_train..]))
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::{ClusterPool, Setting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(n: usize, seed: u64, noise: NoiseConfig) -> PlatformDataset {
        let model = ClusterPool::standard().setting(Setting::A);
        let embedder = FeatureEmbedder::default_platform();
        let mut rng = StdRng::seed_from_u64(seed);
        PlatformDataset::generate(
            &model,
            &embedder,
            &TaskGenerator::default(),
            n,
            &noise,
            &mut rng,
        )
    }

    #[test]
    fn shapes_consistent() {
        let d = make(12, 1, NoiseConfig::default());
        assert_eq!(d.len(), 12);
        assert_eq!(d.clusters(), 3);
        assert_eq!(
            d.features.shape(),
            (12, FeatureEmbedder::default_platform().dim())
        );
        assert_eq!(d.times.shape(), (3, 12));
        assert_eq!(d.reliability.shape(), (3, 12));
    }

    #[test]
    fn noise_perturbs_but_tracks_truth() {
        let d = make(50, 2, NoiseConfig::default());
        let mut rel_err_sum = 0.0;
        let mut any_diff = false;
        for i in 0..3 {
            for j in 0..50 {
                let rel = (d.times[(i, j)] - d.true_times[(i, j)]).abs() / d.true_times[(i, j)];
                rel_err_sum += rel;
                if rel > 1e-12 {
                    any_diff = true;
                }
                assert!(rel < 0.5, "noise too large: {rel}");
            }
        }
        assert!(any_diff, "noise should actually perturb measurements");
        assert!(rel_err_sum / 150.0 < 0.1);
    }

    #[test]
    fn zero_noise_reproduces_truth() {
        let d = make(
            10,
            3,
            NoiseConfig {
                time_rel_std: 0.0,
                reliability_trials: 0,
            },
        );
        assert!(d.times.approx_eq(&d.true_times, 1e-15));
        assert!(d.reliability.approx_eq(&d.true_reliability, 1e-15));
    }

    #[test]
    fn reliability_is_empirical_frequency() {
        let d = make(
            30,
            4,
            NoiseConfig {
                time_rel_std: 0.0,
                reliability_trials: 25,
            },
        );
        for i in 0..3 {
            for j in 0..30 {
                let v = d.reliability[(i, j)];
                // Multiples of 1/25 in [0, 1].
                let k = (v * 25.0).round();
                assert!((v * 25.0 - k).abs() < 1e-9);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn cluster_data_matches_columns() {
        let d = make(8, 5, NoiseConfig::default());
        let c1 = d.cluster_data(1);
        assert_eq!(c1.features.shape().0, 8);
        for j in 0..8 {
            assert_eq!(c1.times[(j, 0)], d.times[(1, j)]);
            assert_eq!(c1.reliability[(j, 0)], d.reliability[(1, j)]);
        }
    }

    #[test]
    fn split_partitions() {
        let d = make(20, 6, NoiseConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = d.split(0.75, &mut rng);
        assert_eq!(train.len(), 15);
        assert_eq!(test.len(), 5);
        assert_eq!(train.clusters(), 3);
    }

    #[test]
    fn concat_and_truncate() {
        let a = make(6, 10, NoiseConfig::default());
        let b = make(4, 11, NoiseConfig::default());
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 10);
        assert_eq!(joined.clusters(), 3);
        assert_eq!(joined.tasks[6], b.tasks[0]);
        assert_eq!(joined.times[(1, 7)], b.times[(1, 1)]);
        // Truncation keeps the most recent tasks.
        let bounded = joined.truncate_front(5);
        assert_eq!(bounded.len(), 5);
        assert_eq!(bounded.tasks[0], joined.tasks[5]);
        // No-op when under capacity.
        assert_eq!(joined.truncate_front(100).len(), 10);
    }

    #[test]
    fn deterministic_generation() {
        let a = make(10, 42, NoiseConfig::default());
        let b = make(10, 42, NoiseConfig::default());
        assert!(a.times.approx_eq(&b.times, 0.0));
        assert!(a.reliability.approx_eq(&b.reliability, 0.0));
    }
}
