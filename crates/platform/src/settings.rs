//! The cluster pool and the paper's evaluation settings.
//!
//! §4.3: "we perform three experiment sets, each randomly selecting
//! clusters (settings A, B, C)". We maintain a standard pool of eight
//! heterogeneous clusters and derive each setting as a deterministic
//! 3-cluster selection, so every experiment in `mfcp-bench` is exactly
//! reproducible.

use crate::cluster::{AcceleratorClass, ClusterProfile, PerfModel};

/// A named selection of clusters (the paper's settings A/B/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setting {
    /// Mixed: tensor-core + FP32 + commodity — strong heterogeneity.
    A,
    /// Capacity-skewed: memory-optimized + commodity + legacy.
    B,
    /// Specialist-heavy: FP32 render farm + tensor-core specialist + weak
    /// FP32 — wins flip entirely by model family.
    C,
}

impl Setting {
    /// All settings, in paper order.
    pub const ALL: [Setting; 3] = [Setting::A, Setting::B, Setting::C];

    /// Indices into [`ClusterPool::standard`] for this setting.
    pub fn indices(self) -> [usize; 3] {
        match self {
            Setting::A => [0, 1, 3],
            Setting::B => [2, 7, 4],
            Setting::C => [1, 5, 6],
        }
    }
}

/// The standard heterogeneous pool the exchange platform manages.
#[derive(Debug, Clone)]
pub struct ClusterPool {
    /// The managed clusters.
    pub clusters: Vec<ClusterProfile>,
}

impl ClusterPool {
    /// Eight clusters spanning the accelerator classes, capacities and
    /// stability levels a real exchange aggregates.
    pub fn standard() -> Self {
        let clusters = vec![
            ClusterProfile {
                name: "tc-research-lab".into(),
                accel: AcceleratorClass::TensorCore,
                throughput: 55.0,
                memory_capacity: 36.0,
                batch_half_saturation: 48.0,
                interconnect: 0.85,
                stability: 2.6,
            },
            ClusterProfile {
                name: "fp32-render-farm".into(),
                accel: AcceleratorClass::HighFp32,
                throughput: 48.0,
                memory_capacity: 24.0,
                batch_half_saturation: 24.0,
                interconnect: 0.7,
                stability: 3.0,
            },
            ClusterProfile {
                name: "mem-hpc-center".into(),
                accel: AcceleratorClass::MemoryOptimized,
                throughput: 34.0,
                memory_capacity: 80.0,
                batch_half_saturation: 32.0,
                interconnect: 0.9,
                stability: 3.4,
            },
            ClusterProfile {
                name: "commodity-startup".into(),
                accel: AcceleratorClass::Commodity,
                throughput: 30.0,
                memory_capacity: 28.0,
                batch_half_saturation: 28.0,
                interconnect: 0.6,
                stability: 2.2,
            },
            ClusterProfile {
                name: "legacy-university".into(),
                accel: AcceleratorClass::Legacy,
                throughput: 18.0,
                memory_capacity: 20.0,
                batch_half_saturation: 16.0,
                interconnect: 0.45,
                stability: 1.8,
            },
            ClusterProfile {
                name: "tc-fintech-idle".into(),
                accel: AcceleratorClass::TensorCore,
                throughput: 42.0,
                memory_capacity: 30.0,
                batch_half_saturation: 40.0,
                interconnect: 0.55,
                stability: 2.0,
            },
            ClusterProfile {
                name: "fp32-gaming-cafe".into(),
                accel: AcceleratorClass::HighFp32,
                throughput: 26.0,
                memory_capacity: 16.0,
                batch_half_saturation: 20.0,
                interconnect: 0.35,
                stability: 1.5,
            },
            ClusterProfile {
                name: "commodity-broker".into(),
                accel: AcceleratorClass::Commodity,
                throughput: 36.0,
                memory_capacity: 32.0,
                batch_half_saturation: 30.0,
                interconnect: 0.75,
                stability: 2.8,
            },
        ];
        ClusterPool { clusters }
    }

    /// Number of clusters in the pool.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Always false for the standard pool.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The [`PerfModel`] for one of the paper's settings.
    pub fn setting(&self, setting: Setting) -> PerfModel {
        let profiles = setting
            .indices()
            .iter()
            .map(|&i| self.clusters[i].clone())
            .collect();
        PerfModel::new(profiles)
    }

    /// A [`PerfModel`] over an arbitrary selection of pool indices.
    pub fn select(&self, indices: &[usize]) -> PerfModel {
        PerfModel::new(indices.iter().map(|&i| self.clusters[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_pool_has_eight_diverse_clusters() {
        let pool = ClusterPool::standard();
        assert_eq!(pool.len(), 8);
        let classes: std::collections::HashSet<_> = pool.clusters.iter().map(|c| c.accel).collect();
        assert!(classes.len() >= 4, "pool should span accelerator classes");
    }

    #[test]
    fn settings_are_three_distinct_clusters() {
        let pool = ClusterPool::standard();
        for s in Setting::ALL {
            let idx = s.indices();
            assert_eq!(idx.len(), 3);
            assert!(idx.iter().all(|&i| i < pool.len()));
            let unique: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(unique.len(), 3);
            assert_eq!(pool.setting(s).len(), 3);
        }
    }

    #[test]
    fn settings_differ() {
        assert_ne!(Setting::A.indices(), Setting::B.indices());
        assert_ne!(Setting::B.indices(), Setting::C.indices());
    }

    #[test]
    fn settings_produce_heterogeneous_performance() {
        // Within each setting, different clusters must win on different
        // tasks — otherwise matching is trivial and the experiments moot.
        let pool = ClusterPool::standard();
        let mut rng = StdRng::seed_from_u64(1);
        let tasks = TaskGenerator::default().sample_many(40, &mut rng);
        for s in Setting::ALL {
            let model = pool.setting(s);
            let t = model.time_matrix(&tasks);
            let mut winners = std::collections::HashSet::new();
            for j in 0..tasks.len() {
                let col = t.col(j);
                let best = mfcp_linalg::vector::argmin(&col).unwrap();
                winners.insert(best);
            }
            assert!(
                winners.len() >= 2,
                "setting {s:?}: a single cluster dominates every task"
            );
        }
    }
}
