//! Heterogeneous cluster profiles and the ground-truth performance model.
//!
//! Each third-party cluster on the exchange responds differently to task
//! structure — the paper's Fig. 2 motivation ("For Cluster A, task
//! execution time increases linearly with z, while for Cluster B, it
//! follows a more complex exponential trend"). The model below produces
//! exactly that mix: throughput-bound clusters scale roughly linearly in
//! task compute, while memory-bound clusters develop an exponential-like
//! penalty once a task's working set exceeds capacity, and interconnect
//! quality shifts the balance for communication-heavy jobs.

use crate::task::{TaskFamily, TaskSpec};
use mfcp_linalg::Matrix;

/// Hardware character of a cluster's accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorClass {
    /// Tensor-core rich parts — excellent on transformers.
    TensorCore,
    /// Strong FP32 pipelines — excellent on convolutions.
    HighFp32,
    /// Large memory, moderate compute — forgiving on big activations.
    MemoryOptimized,
    /// Balanced commodity GPUs.
    Commodity,
    /// Older institutional hardware — slow and less stable.
    Legacy,
}

impl AcceleratorClass {
    /// Family affinity multiplier: effective throughput factor for the
    /// given model family (hardware specialization, Fig. 2's
    /// "cluster-specific task preferences").
    pub fn family_affinity(self, family: TaskFamily) -> f64 {
        match (self, family) {
            (AcceleratorClass::TensorCore, TaskFamily::Transformer) => 2.4,
            (AcceleratorClass::TensorCore, TaskFamily::Cnn) => 1.3,
            (AcceleratorClass::TensorCore, TaskFamily::Rnn) => 0.9,
            (AcceleratorClass::HighFp32, TaskFamily::Cnn) => 1.8,
            (AcceleratorClass::HighFp32, TaskFamily::Transformer) => 0.9,
            (AcceleratorClass::HighFp32, TaskFamily::Rnn) => 1.1,
            (AcceleratorClass::MemoryOptimized, TaskFamily::Rnn) => 1.4,
            (AcceleratorClass::MemoryOptimized, _) => 1.0,
            (AcceleratorClass::Commodity, _) => 1.0,
            (AcceleratorClass::Legacy, TaskFamily::Transformer) => 0.6,
            (AcceleratorClass::Legacy, _) => 0.8,
        }
    }
}

/// One third-party cluster managed by the exchange platform.
#[derive(Debug, Clone)]
pub struct ClusterProfile {
    /// Human-readable name.
    pub name: String,
    /// Accelerator character.
    pub accel: AcceleratorClass,
    /// Aggregate throughput in TFLOP/s-equivalents.
    pub throughput: f64,
    /// Accelerator memory capacity (same units as
    /// [`TaskSpec::memory_units`]).
    pub memory_capacity: f64,
    /// Batch size at which throughput reaches half its peak efficiency.
    pub batch_half_saturation: f64,
    /// Interconnect quality in `[0, 1]` (1 = datacenter-grade fabric).
    pub interconnect: f64,
    /// Stability logit: higher means fewer failures.
    pub stability: f64,
}

impl ClusterProfile {
    /// Ground-truth per-epoch execution time (hours) of `task` on this
    /// cluster, running alone.
    pub fn execution_time(&self, task: &TaskSpec) -> f64 {
        let affinity = self.accel.family_affinity(task.family);
        // Batch-size efficiency: small batches under-utilize the device.
        let b = task.batch_size as f64;
        let batch_eff = 0.35 + 0.65 * b / (b + self.batch_half_saturation);
        let effective = self.throughput * affinity * batch_eff;
        let base = task.epoch_tflops() / effective;

        // Memory pressure: smooth until the working set approaches
        // capacity, then exponential-like blow-up (spilling/recompute) —
        // the Fig. 2 "exponential trend".
        let pressure = task.memory_units() / self.memory_capacity;
        // Exponential blow-up past capacity, saturating at ~12x (past that
        // point a real platform would refuse the placement outright, which
        // the reliability model captures instead). The cap also keeps the
        // regret statistics of the evaluation stable: a single mis-placed
        // memory-wall task should cost hours, not days.
        let mem_penalty = if pressure <= 0.8 {
            1.0 + 0.1 * pressure
        } else {
            let z = (2.2 * (pressure - 0.8)).min(1.2);
            1.08 + z.exp() - 1.0
        };

        // Communication penalty for sync-heavy jobs on weak fabric.
        let comm_penalty = 1.0 + 1.5 * task.comm_intensity() * (1.0 - self.interconnect);

        base * mem_penalty * comm_penalty
    }

    /// Ground-truth success probability of `task` on this cluster.
    ///
    /// Failures come from hardware/communication interruptions: longer
    /// jobs, memory-pressured jobs, and communication-heavy jobs on weak
    /// fabric all fail more often; a higher stability logit protects.
    pub fn reliability(&self, task: &TaskSpec) -> f64 {
        let duration = self.execution_time(task);
        let pressure = task.memory_units() / self.memory_capacity;
        let logit = self.stability
            - 0.35 * duration.ln_1p()
            - 1.4 * (pressure - 0.7).max(0.0)
            - 1.2 * task.comm_intensity() * (1.0 - self.interconnect);
        let p = 1.0 / (1.0 + (-logit).exp());
        p.clamp(0.5, 0.999)
    }
}

/// The ground-truth performance oracle over a set of clusters — what the
/// paper obtains by actually running tasks on the platform ("we run the
/// tasks directly on each cluster to obtain their actual execution times
/// and reliability metrics").
#[derive(Debug, Clone)]
pub struct PerfModel {
    /// Profiles of the managed clusters.
    pub clusters: Vec<ClusterProfile>,
}

impl PerfModel {
    /// Creates the oracle for a set of clusters.
    pub fn new(clusters: Vec<ClusterProfile>) -> Self {
        assert!(!clusters.is_empty(), "need at least one cluster");
        PerfModel { clusters }
    }

    /// Number of clusters `M`.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Always false (construction requires ≥ 1 cluster).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// `M x N` ground-truth execution-time matrix for `tasks`.
    pub fn time_matrix(&self, tasks: &[TaskSpec]) -> Matrix {
        Matrix::from_fn(self.len(), tasks.len(), |i, j| {
            self.clusters[i].execution_time(&tasks[j])
        })
    }

    /// `M x N` ground-truth reliability matrix for `tasks`.
    pub fn reliability_matrix(&self, tasks: &[TaskSpec]) -> Matrix {
        Matrix::from_fn(self.len(), tasks.len(), |i, j| {
            self.clusters[i].reliability(&tasks[j])
        })
    }

    /// Builds the memory-capacity constraint for a round of `tasks`:
    /// each task consumes its activation/parameter footprint
    /// ([`TaskSpec::memory_units`]) against the cluster's accelerator
    /// memory, scaled by `headroom` (how far past nominal capacity
    /// spilling is tolerated before a placement is forbidden outright).
    pub fn capacity_constraint(
        &self,
        tasks: &[TaskSpec],
        headroom: f64,
    ) -> mfcp_optim::CapacityConstraint {
        assert!(headroom > 0.0);
        let usage = Matrix::from_fn(self.len(), tasks.len(), |_, j| tasks[j].memory_units());
        let limits = self
            .clusters
            .iter()
            .map(|c| c.memory_capacity * headroom)
            .collect();
        mfcp_optim::CapacityConstraint::new(usage, limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::ClusterPool;
    use crate::task::{Corpus, TaskGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_cluster(accel: AcceleratorClass) -> ClusterProfile {
        ClusterProfile {
            name: format!("{accel:?}"),
            accel,
            throughput: 40.0,
            memory_capacity: 30.0,
            batch_half_saturation: 32.0,
            interconnect: 0.8,
            stability: 3.0,
        }
    }

    fn transformer_task() -> TaskSpec {
        TaskSpec {
            family: TaskFamily::Transformer,
            corpus: Corpus::Europarl,
            depth: 12,
            width: 768,
            batch_size: 64,
        }
    }

    fn cnn_task() -> TaskSpec {
        TaskSpec {
            family: TaskFamily::Cnn,
            corpus: Corpus::Cifar10,
            depth: 20,
            width: 256,
            batch_size: 64,
        }
    }

    #[test]
    fn tensor_core_prefers_transformers() {
        // The Fig. 2 crossing: TensorCore beats HighFp32 on transformers
        // and loses on CNNs (with otherwise identical hardware).
        let tc = sample_cluster(AcceleratorClass::TensorCore);
        let fp = sample_cluster(AcceleratorClass::HighFp32);
        let tr = transformer_task();
        let cnn = cnn_task();
        assert!(tc.execution_time(&tr) < fp.execution_time(&tr));
        assert!(tc.execution_time(&cnn) > fp.execution_time(&cnn));
    }

    #[test]
    fn memory_pressure_is_nonlinear() {
        // Below capacity the penalty is gentle; past it, explosive.
        let c = sample_cluster(AcceleratorClass::Commodity);
        let small = TaskSpec {
            width: 128,
            depth: 12,
            ..cnn_task()
        };
        let mid = cnn_task();
        let huge = TaskSpec {
            family: TaskFamily::Transformer,
            corpus: Corpus::ImageNet,
            depth: 24,
            width: 1024,
            batch_size: 256,
        };
        assert!(huge.memory_units() > c.memory_capacity);
        let t_small = c.execution_time(&small);
        let t_mid = c.execution_time(&mid);
        let t_huge = c.execution_time(&huge);
        assert!(t_small < t_mid && t_mid < t_huge);
        // Blow-up factor past capacity dwarfs the sub-capacity slope.
        let flops_ratio = huge.epoch_tflops() / mid.epoch_tflops();
        assert!(
            t_huge / t_mid > flops_ratio * 1.5,
            "memory wall should add a superlinear penalty"
        );
    }

    #[test]
    fn reliability_in_range_and_sensible() {
        let mut rng = StdRng::seed_from_u64(1);
        let tasks = TaskGenerator::default().sample_many(100, &mut rng);
        for accel in [
            AcceleratorClass::TensorCore,
            AcceleratorClass::Legacy,
            AcceleratorClass::MemoryOptimized,
        ] {
            let c = sample_cluster(accel);
            for t in &tasks {
                let a = c.reliability(t);
                assert!((0.5..=0.999).contains(&a));
            }
        }
        // A less stable cluster is less reliable on the same task.
        let stable = sample_cluster(AcceleratorClass::Commodity);
        let flaky = ClusterProfile {
            stability: 0.5,
            ..stable.clone()
        };
        let t = cnn_task();
        assert!(flaky.reliability(&t) < stable.reliability(&t));
    }

    #[test]
    fn weak_interconnect_hurts_comm_heavy_jobs() {
        let good = sample_cluster(AcceleratorClass::Commodity);
        let bad = ClusterProfile {
            interconnect: 0.2,
            ..good.clone()
        };
        let comm_heavy = TaskSpec {
            family: TaskFamily::Transformer,
            corpus: Corpus::Europarl,
            depth: 20,
            width: 1024,
            batch_size: 16,
        };
        let ratio_heavy = bad.execution_time(&comm_heavy) / good.execution_time(&comm_heavy);
        let light = TaskSpec {
            batch_size: 256,
            width: 256,
            depth: 4,
            ..comm_heavy.clone()
        };
        let ratio_light = bad.execution_time(&light) / good.execution_time(&light);
        assert!(ratio_heavy > ratio_light);
    }

    #[test]
    fn capacity_constraint_builder() {
        let pool = ClusterPool::standard();
        let model = PerfModel::new(pool.clusters[..2].to_vec());
        let mut rng = StdRng::seed_from_u64(9);
        let tasks = TaskGenerator::default().sample_many(4, &mut rng);
        let cap = model.capacity_constraint(&tasks, 1.5);
        assert_eq!(cap.usage.shape(), (2, 4));
        assert_eq!(cap.limits.len(), 2);
        for (i, c) in model.clusters.iter().enumerate() {
            assert!((cap.limits[i] - 1.5 * c.memory_capacity).abs() < 1e-12);
        }
        // Usage is per-task memory, identical across clusters.
        for (j, task) in tasks.iter().enumerate().take(4) {
            assert_eq!(cap.usage[(0, j)], cap.usage[(1, j)]);
            assert!((cap.usage[(0, j)] - task.memory_units()).abs() < 1e-12);
        }
    }

    #[test]
    fn perf_model_matrices() {
        let pool = ClusterPool::standard();
        let model = PerfModel::new(pool.clusters[..3].to_vec());
        let mut rng = StdRng::seed_from_u64(2);
        let tasks = TaskGenerator::default().sample_many(5, &mut rng);
        let t = model.time_matrix(&tasks);
        let a = model.reliability_matrix(&tasks);
        assert_eq!(t.shape(), (3, 5));
        assert_eq!(a.shape(), (3, 5));
        assert!(t.as_slice().iter().all(|&v| v > 0.0 && v.is_finite()));
        assert!(a.as_slice().iter().all(|&v| (0.5..=0.999).contains(&v)));
    }
}
