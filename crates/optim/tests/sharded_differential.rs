//! Differential suite for the sharded dual-decomposition solver:
//! sharded ≡ monolithic within tolerance, and bitwise determinism of the
//! sharded path across pool sizes and repeated runs.
//!
//! The determinism pins run under `--features strict-determinism` (the
//! CI strict-determinism job); the equivalence tests always run.

use mfcp_linalg::Matrix;
use mfcp_optim::sharded::{ShardedOptions, ShardedSolver};
use mfcp_optim::solver::{is_column_stochastic, solve_relaxed, solve_relaxed_newton, uniform_init};
use mfcp_optim::{
    CapacityConstraint, KktWorkspace, MatchingProblem, NewtonOptions, RelaxationParams,
    SolverOptions,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn convex_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.8));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    MatchingProblem::new(t, a, 0.6)
}

fn with_capacity(mut problem: MatchingProblem, seed: u64) -> MatchingProblem {
    let (m, n) = (problem.clusters(), problem.tasks());
    let mut rng = StdRng::seed_from_u64(seed);
    let usage = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.1..1.0));
    // Roomy limits: ~80% headroom over a uniform split keeps the barrier
    // active but non-binding, the convex regime both solvers share.
    let limits = vec![n as f64 * 0.8; m];
    problem.capacity = Some(CapacityConstraint::new(usage, limits));
    problem
}

fn tight_sharded() -> ShardedOptions {
    ShardedOptions {
        shards: 4,
        max_rounds: 4000,
        inner_iters: 8,
        lr: 0.2,
        tol: 1e-10,
        ..Default::default()
    }
}

fn tight_mono() -> SolverOptions {
    SolverOptions {
        max_iters: 80_000,
        lr: 0.2,
        tol: 1e-10,
        ..Default::default()
    }
}

/// Sharded and monolithic solves agree on the (unique, entropy-
/// regularized) optimum to 1e-6 in objective value, with and without
/// capacity coupling.
#[test]
fn sharded_equals_monolithic_within_tolerance() {
    let params = RelaxationParams::default();
    let cases = [
        (convex_problem(101, 5, 48), "plain"),
        (convex_problem(102, 3, 57), "plain-ragged"),
        (with_capacity(convex_problem(103, 4, 40), 203), "capacity"),
    ];
    for (problem, label) in cases {
        let solver = ShardedSolver::new(tight_sharded(), 4);
        let sharded = solver.solve(&problem, &params);
        let mono = solve_relaxed(&problem, &params, &tight_mono());
        assert!(sharded.converged, "{label}: sharded did not converge");
        assert!(is_column_stochastic(&sharded.x, 1e-8), "{label}");
        let gap = (sharded.objective - mono.objective).abs();
        assert!(
            gap <= 1e-6,
            "{label}: |sharded - monolithic| = {gap:.3e} (sharded {}, mono {})",
            sharded.objective,
            mono.objective
        );
        // Iterate-level agreement, looser than the objective (the
        // entropy Hessian is O(rho) so x-error ~ sqrt(gap/rho)).
        let max_dx = sharded.x.max_abs_diff(&mono.x).unwrap();
        assert!(max_dx < 1e-3, "{label}: max |X_s - X_m| = {max_dx:.3e}");
    }
}

/// The shard count changes the decomposition, not the answer: different
/// shard counts land on the same optimum within tolerance.
#[test]
fn shard_count_does_not_change_the_optimum() {
    let problem = convex_problem(111, 4, 44);
    let params = RelaxationParams::default();
    let mut objectives = Vec::new();
    for shards in [2, 4, 7] {
        let opts = ShardedOptions {
            shards,
            ..tight_sharded()
        };
        let sol = ShardedSolver::new(opts, 4).solve(&problem, &params);
        assert!(sol.converged, "shards={shards}");
        objectives.push(sol.objective);
    }
    for w in objectives.windows(2) {
        assert!(
            (w[0] - w[1]).abs() <= 1e-6,
            "shard counts disagree: {objectives:?}"
        );
    }
}

/// Sharded-KKT ≡ monolithic-KKT at the workspace level: the same saddle
/// system factored with the sharded Schur path (second-level Woodbury
/// against the shared capacitance) and with the assembled N×N Schur
/// complement must produce the same solution to solver precision, for
/// several shard counts, with and without capacity coupling. Also pins
/// that the sharded path actually engages (no silent fallback).
#[test]
fn sharded_kkt_solve_matches_monolithic_kkt() {
    let params = RelaxationParams::default();
    for (problem, label) in [
        (convex_problem(141, 4, 50), "plain"),
        (with_capacity(convex_problem(142, 3, 41), 242), "capacity"),
    ] {
        let (m, n) = (problem.clusters(), problem.tasks());
        let x = uniform_init(m, n);
        let mut rng = StdRng::seed_from_u64(343);
        let rhs0: Vec<f64> = (0..m * n + n).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let mut mono_ws = KktWorkspace::new();
        mono_ws.factor(&problem, &params, &x).unwrap();
        assert!(mono_ws.last_factor_structured(), "{label}");
        assert!(!mono_ws.last_schur_sharded(), "{label}");
        let mut mono_sol = rhs0.clone();
        mono_ws.solve_in_place(&mut mono_sol).unwrap();

        for shards in [1, 4, 9] {
            let mut ws = KktWorkspace::new();
            ws.set_schur_shards(shards);
            ws.factor(&problem, &params, &x).unwrap();
            assert!(
                ws.last_schur_sharded(),
                "{label} shards={shards}: sharded Schur path did not engage"
            );
            let mut sol = rhs0.clone();
            ws.solve_in_place(&mut sol).unwrap();
            for (idx, (s, mo)) in sol.iter().zip(&mono_sol).enumerate() {
                assert!(
                    (s - mo).abs() <= 1e-9 * (1.0 + mo.abs()),
                    "{label} shards={shards} entry {idx}: sharded {s} vs monolithic {mo}"
                );
            }
        }
    }
}

/// End-to-end: Newton with the sharded KKT Schur path lands on the same
/// optimum as the monolithic Newton solver, and the sharded path engages
/// on every iteration (counters move on `kkt_sharded`, never on
/// `kkt_fallback`).
#[test]
fn sharded_newton_equals_monolithic_newton() {
    let params = RelaxationParams::default();
    let opts = NewtonOptions::default();
    for (problem, label) in [
        (convex_problem(151, 4, 46), "plain"),
        (with_capacity(convex_problem(152, 3, 38), 252), "capacity"),
    ] {
        let before_sharded = mfcp_obs::counter("optim.sharded.kkt_sharded").get();
        let before_fallback = mfcp_obs::counter("optim.sharded.kkt_fallback").get();
        let solver = ShardedSolver::new(tight_sharded(), 2);
        let sharded = solver.solve_newton(&problem, &params, &opts);
        let after_sharded = mfcp_obs::counter("optim.sharded.kkt_sharded").get();
        let after_fallback = mfcp_obs::counter("optim.sharded.kkt_fallback").get();
        assert!(
            after_sharded > before_sharded,
            "{label}: no sharded KKT factorizations recorded"
        );
        assert_eq!(
            after_fallback, before_fallback,
            "{label}: sharded Schur path fell back to the assembled Schur"
        );
        let mono = solve_relaxed_newton(&problem, &params, &opts);
        // Convergence flags and iteration counts must agree — the sharded
        // Schur recipe changes the arithmetic of the step solve, not the
        // trajectory-level behaviour of the algorithm.
        assert_eq!(sharded.converged, mono.converged, "{label}");
        assert_eq!(sharded.iterations, mono.iterations, "{label}");
        assert!(is_column_stochastic(&sharded.x, 1e-8), "{label}");
        let max_dx = sharded.x.max_abs_diff(&mono.x).unwrap();
        assert!(
            max_dx <= 1e-8,
            "{label}: max |X_sharded - X_mono| = {max_dx:.3e}"
        );
        let gap = (sharded.objective - mono.objective).abs();
        assert!(
            gap <= 1e-10 * (1.0 + mono.objective.abs()),
            "{label}: {gap:.3e}"
        );
    }
}

/// Bitwise determinism across pool sizes: every shard computes
/// sequentially on cloned data and results combine in input order, so
/// the trajectory cannot depend on how many workers the pool has.
#[cfg(feature = "strict-determinism")]
#[test]
fn sharded_is_bitwise_deterministic_across_pool_sizes() {
    let params = RelaxationParams::default();
    for (problem, label) in [
        (convex_problem(121, 4, 33), "plain"),
        (with_capacity(convex_problem(122, 3, 26), 222), "capacity"),
    ] {
        let opts = ShardedOptions {
            shards: 4,
            max_rounds: 60,
            ..Default::default()
        };
        let one = ShardedSolver::new(opts, 1).solve(&problem, &params);
        let four = ShardedSolver::new(opts, 4).solve(&problem, &params);
        let eight = ShardedSolver::new(opts, 8).solve(&problem, &params);
        for other in [&four, &eight] {
            assert_eq!(one.iterations, other.iterations, "{label}");
            assert_eq!(one.converged, other.converged, "{label}");
            for (idx, (a, b)) in one.x.as_slice().iter().zip(other.x.as_slice()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{label} entry {idx}: {a} vs {b}");
            }
            assert_eq!(
                one.objective.to_bits(),
                other.objective.to_bits(),
                "{label}"
            );
        }
    }
}

/// Repeated solves on the same solver instance are bitwise reproducible
/// (no hidden state accumulates in the pool or the workspace).
#[cfg(feature = "strict-determinism")]
#[test]
fn repeated_solves_are_bitwise_reproducible() {
    let problem = convex_problem(131, 3, 21);
    let params = RelaxationParams::default();
    let opts = ShardedOptions {
        shards: 3,
        max_rounds: 40,
        ..Default::default()
    };
    let solver = ShardedSolver::new(opts, 3);
    let first = solver.solve(&problem, &params);
    let second = solver.solve(&problem, &params);
    assert_eq!(first.x.as_slice(), second.x.as_slice());
    assert_eq!(first.objective.to_bits(), second.objective.to_bits());
}
