//! Differential lock-down of the learned-duals warm-start path.
//!
//! Property-tested over random convex instances (unique entropic
//! optimum, so any-seed trajectories must meet):
//!
//! 1. A solve seeded from *any* repairable prediction — however far
//!    from the optimum — agrees with the cold
//!    [`RobustSolver::solve`] on the objective within `1e-8` and on
//!    the argmax-rounded assignment exactly, and is reported as
//!    [`CacheOutcome::Predicted`].
//! 2. Adversarial predictions (NaN/Inf duals, ×1e6-scaled duals,
//!    wrong-shape or non-finite primal) are rejected by the repair
//!    kernel before any solver work: the solve is bit-for-bit the cold
//!    solve, with a typed [`PredictionOutcome::Rejected`] in the
//!    diagnostics — never a panic, never a degraded answer.
//! 3. Exact cache hits take precedence: a predictor is never consulted
//!    when a valid cached optimum exists.
//! 4. A repaired prediction whose attempt fails falls through the
//!    ladder ([`PredictionOutcome::FellBack`]) and still lands on the
//!    plain solve's answer bit for bit — a wrong model costs one rung.
//!
//! CI runs this suite both default and under `--features
//! strict-determinism` (the feature changes no optim code paths; the
//! job pins the claims with the thread pool out of the picture).

use mfcp_linalg::Matrix;
use mfcp_optim::cache::{CacheOutcome, WarmStartCache};
use mfcp_optim::learned::{DualPrediction, DualPredictor, LearnedDualHead};
use mfcp_optim::recovery::{PredictionOutcome, RobustSolver, StageOutcome};
use mfcp_optim::rounding::round_argmax;
use mfcp_optim::solver::SolverOptions;
use mfcp_optim::{BarrierKind, MatchingProblem, RelaxationParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random convex instance: no speedup curves, data bounded away from
/// the degenerate corners (same family as `tests/warm_vs_cold.rs`).
fn convex_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.8));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    MatchingProblem::new(t, a, 0.6)
}

/// Strong entropy modulus: every generated instance reaches the 1e-12
/// step tolerance well inside the iteration budget.
fn test_params() -> RelaxationParams {
    RelaxationParams {
        rho: 0.05,
        ..Default::default()
    }
}

/// A solver tight enough that cold and seeded runs both land within
/// ~1e-10 of the unique optimum (see `tests/warm_vs_cold.rs` for the
/// lr/stall rationale).
fn tight_solver(params: RelaxationParams) -> RobustSolver {
    let mut solver = RobustSolver::new(params);
    solver.solver_opts = SolverOptions {
        max_iters: 20_000,
        tol: 1e-12,
        lr: 0.1,
        ..Default::default()
    };
    solver.policy.stall_checks = usize::MAX;
    solver
}

/// A mock predictor returning a fixed raw prediction — the adversarial
/// handle the repair kernel and fallback semantics are tested through.
struct Mock(Option<DualPrediction>);

impl DualPredictor for Mock {
    fn predict_duals(
        &self,
        _problem: &MatchingProblem,
        _params: &RelaxationParams,
    ) -> Option<DualPrediction> {
        self.0.clone()
    }
}

/// A predictor that must never be consulted (cache-precedence checks).
struct PanicPredictor;

impl DualPredictor for PanicPredictor {
    fn predict_duals(
        &self,
        _problem: &MatchingProblem,
        _params: &RelaxationParams,
    ) -> Option<DualPrediction> {
        panic!("predictor consulted despite a valid cache hit");
    }
}

/// An arbitrary repairable prediction: finite primal entries of any
/// sign and duals inside the admissible bound.
fn random_prediction(seed: u64, m: usize, n: usize) -> DualPrediction {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.5..2.5));
    let duals = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
    DualPrediction { x, duals }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariant 1: any repairable prediction — good, mediocre, or
    /// wildly off — seeds a solve that agrees with the cold solve on
    /// the objective within 1e-8 and on the rounded assignment exactly.
    #[test]
    fn prop_predicted_seed_agrees_with_cold(
        seed in 0u64..1_000_000,
        m in 2usize..4,
        n in 2usize..6,
    ) {
        let problem = convex_problem(seed, m, n);
        let solver = tight_solver(test_params());
        let cold = solver.solve(&problem).expect("cold solve");

        let mut cache = WarmStartCache::new();
        let prediction = random_prediction(seed, m, n);
        let sol = solver
            .solve_with_predictor(&problem, &mut cache, Some(&Mock(Some(prediction))))
            .expect("predicted solve");

        prop_assert_eq!(sol.diagnostics.cache, Some(CacheOutcome::Predicted));
        prop_assert_eq!(sol.diagnostics.prediction, Some(PredictionOutcome::Seeded));
        prop_assert!(sol.diagnostics.attempts[0].predicted);
        prop_assert!(!sol.diagnostics.attempts[0].warm_start);
        prop_assert!(
            sol.diagnostics.path().starts_with("pred-primary"),
            "path: {}",
            sol.diagnostics.path()
        );
        prop_assert!(
            (cold.objective - sol.objective).abs() <= 1e-8,
            "objective drift {} vs {}",
            cold.objective,
            sol.objective
        );
        prop_assert_eq!(
            round_argmax(&cold.x).cluster_of,
            round_argmax(&sol.x).cluster_of
        );
        // The predicted optimum was cached for future exact hits.
        prop_assert_eq!(cache.stats().entries, 1);
    }

    /// Invariant 2: adversarial predictions are rejected before any
    /// solver work and the result is bit-for-bit the cold solve.
    #[test]
    fn prop_adversarial_predictions_fall_back_to_cold(
        seed in 0u64..1_000_000,
        m in 2usize..4,
        n in 2usize..6,
    ) {
        let problem = convex_problem(seed, m, n);
        let solver = tight_solver(test_params());
        let cold = solver.solve(&problem).expect("cold solve");
        let uniform = Matrix::filled(m, n, 1.0 / m as f64);

        let poisons: Vec<DualPrediction> = vec![
            // NaN duals.
            DualPrediction { x: uniform.clone(), duals: vec![f64::NAN; n] },
            // Infinite duals.
            DualPrediction { x: uniform.clone(), duals: vec![f64::INFINITY; n] },
            // Duals scaled ×1e6: finite but out of scale.
            DualPrediction { x: uniform.clone(), duals: vec![1.0e6; n] },
            // Wrong-shape primal.
            DualPrediction {
                x: Matrix::filled(m + 1, n, 1.0 / (m + 1) as f64),
                duals: vec![0.0; n],
            },
            // Non-finite primal.
            DualPrediction {
                x: Matrix::from_fn(m, n, |i, j| if i == 0 && j == 0 { f64::NAN } else { 0.5 }),
                duals: vec![0.0; n],
            },
        ];

        for (k, poison) in poisons.into_iter().enumerate() {
            let mut cache = WarmStartCache::new();
            let sol = solver
                .solve_with_predictor(&problem, &mut cache, Some(&Mock(Some(poison))))
                .expect("poisoned prediction must not fail the solve");
            prop_assert_eq!(
                sol.diagnostics.cache,
                Some(CacheOutcome::Miss),
                "poison {}: rejected predictions leave a plain miss",
                k
            );
            prop_assert!(
                matches!(
                    sol.diagnostics.prediction,
                    Some(PredictionOutcome::Rejected(_))
                ),
                "poison {}: expected a typed rejection, got {:?}",
                k,
                sol.diagnostics.prediction
            );
            prop_assert!(!sol.diagnostics.attempts[0].predicted);
            prop_assert_eq!(sol.objective.to_bits(), cold.objective.to_bits());
            prop_assert_eq!(sol.x.as_slice(), cold.x.as_slice());
        }
    }

    /// Invariant 3: a valid cache hit pre-empts the predictor entirely
    /// (the panic predictor proves it is never consulted).
    #[test]
    fn prop_cache_hit_beats_prediction(
        seed in 0u64..1_000_000,
        m in 2usize..4,
        n in 2usize..6,
    ) {
        let problem = convex_problem(seed, m, n);
        let solver = tight_solver(test_params());
        let mut cache = WarmStartCache::new();
        let first = solver
            .solve_with_predictor(&problem, &mut cache, Some(&Mock(None)))
            .expect("miss populates the cache");
        prop_assert_eq!(first.diagnostics.cache, Some(CacheOutcome::Miss));
        prop_assert!(first.diagnostics.prediction.is_none(), "predictor abstained");

        let warm = solver
            .solve_with_predictor(&problem, &mut cache, Some(&PanicPredictor))
            .expect("hit solves without touching the predictor");
        prop_assert_eq!(warm.diagnostics.cache, Some(CacheOutcome::Hit));
        prop_assert!(warm.diagnostics.prediction.is_none());
        prop_assert!(warm.diagnostics.attempts[0].warm_start);
        prop_assert!(!warm.diagnostics.attempts[0].predicted);
    }
}

/// Invariant 4: a repaired prediction whose seeded attempt fails falls
/// through the existing ladder with a typed event and lands on the
/// plain solve's answer bit for bit.
#[test]
fn failed_predicted_attempt_falls_through_ladder() {
    // Reliability-infeasible at every interior point with a zero-cutoff
    // log barrier: the seeded primary attempt goes non-finite
    // immediately, whatever the seed.
    let t = Matrix::filled(2, 4, 1.0);
    let a = Matrix::filled(2, 4, 0.7);
    let problem = MatchingProblem::new(t, a, 0.95);
    let params = RelaxationParams {
        barrier: BarrierKind::Log { eps: 0.0 },
        ..Default::default()
    };
    let solver = RobustSolver::new(params);
    let cold = solver.solve(&problem).expect("plain ladder recovers");

    let prediction = DualPrediction {
        x: Matrix::filled(2, 4, 0.5),
        duals: vec![0.0; 4],
    };
    let mut cache = WarmStartCache::new();
    let sol = solver
        .solve_with_predictor(&problem, &mut cache, Some(&Mock(Some(prediction))))
        .expect("failed prediction must fall back, not fail");

    assert_eq!(
        sol.diagnostics.prediction,
        Some(PredictionOutcome::FellBack)
    );
    assert_eq!(
        sol.diagnostics.cache,
        Some(CacheOutcome::Miss),
        "a fallen-back prediction reports the underlying miss"
    );
    let first = &sol.diagnostics.attempts[0];
    assert!(first.predicted, "path: {}", sol.diagnostics.path());
    assert!(
        matches!(first.outcome, StageOutcome::Failed(_)),
        "predicted attempt must be on record as failed"
    );
    assert!(sol.diagnostics.recovered);
    assert_eq!(sol.stage, cold.stage);
    assert_eq!(sol.objective.to_bits(), cold.objective.to_bits());
    assert_eq!(sol.x.as_slice(), cold.x.as_slice());
}

/// End-to-end: a head trained on a drifted family serves predictions
/// for unseen instances that agree with the cold solve and are
/// reported as predicted.
#[test]
fn trained_head_agrees_with_cold_on_unseen_instances() {
    const M: usize = 3;
    const N: usize = 5;
    let params = test_params();
    let solver = tight_solver(params);
    let mut head = LearnedDualHead::new(M, 42);

    // Train on one family of drifted instances...
    let train: Vec<MatchingProblem> = (0..12).map(|k| convex_problem(1000 + k, M, N)).collect();
    let solved: Vec<(usize, Matrix)> = train
        .iter()
        .enumerate()
        .map(|(i, p)| (i, solver.solve(p).expect("train solve").x))
        .collect();
    for _ in 0..40 {
        for (i, x) in &solved {
            head.observe(&train[*i], &params, x);
        }
    }
    assert!(head.ready());

    // ...and serve unseen instances from the same distribution.
    for k in 0..4u64 {
        let unseen = convex_problem(9000 + k, M, N);
        let cold = solver.solve(&unseen).expect("cold solve");
        let mut cache = WarmStartCache::new();
        let sol = solver
            .solve_with_predictor(&unseen, &mut cache, Some(&head))
            .expect("predicted solve");
        assert_eq!(sol.diagnostics.cache, Some(CacheOutcome::Predicted));
        assert!(
            (cold.objective - sol.objective).abs() <= 1e-8,
            "unseen {k}: objective drift {} vs {}",
            cold.objective,
            sol.objective
        );
        assert_eq!(
            round_argmax(&cold.x).cluster_of,
            round_argmax(&sol.x).cluster_of,
            "unseen {k}: rounded assignments must match"
        );
    }
}
