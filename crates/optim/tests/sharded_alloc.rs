//! Proves sharded-solver memory no longer scales with the round count:
//! the task-major transposes are built once behind `Arc`s and the shard
//! jobs keep persistent buffers that travel through the thread pool and
//! back, so extra coordination rounds add only O(shards) bookkeeping
//! bytes — not fresh copies of the problem columns.
//!
//! The measurement compares solves at R and R + 7 rounds on an
//! M = 100, N = 5000 instance (each problem matrix is ~4 MB): the
//! one-time setup cost (transposes, jobs, iterate, gradient) is
//! identical for both, so the 7 extra rounds must stay far below a
//! single column-block clone. The pre-Arc solver copied ≥ 3 matrices'
//! worth of columns per round (> 12 MB/round) and fails this decisively.
//!
//! Lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide; byte counts next to unrelated
//! tests would be racy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mfcp_linalg::Matrix;
use mfcp_optim::sharded::{ShardedOptions, ShardedSolver};
use mfcp_optim::{MatchingProblem, RelaxationParams};

struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const M: usize = 100;
const N: usize = 5000;

/// Deterministic dense instance; no RNG so the measured solves do the
/// same arithmetic regardless of platform.
fn big_problem() -> MatchingProblem {
    let t = Matrix::from_fn(M, N, |i, j| {
        let h = (i * 131 + j * 31 + 7) % 997;
        0.7 + 1.1 * (h as f64 / 996.0)
    });
    let a = Matrix::from_fn(M, N, |i, j| {
        let h = (i * 61 + j * 17 + 3) % 883;
        0.75 + 0.25 * (h as f64 / 882.0)
    });
    MatchingProblem::new(t, a, 0.6)
}

fn opts(max_rounds: usize) -> ShardedOptions {
    ShardedOptions {
        shards: 4,
        max_rounds,
        inner_iters: 2,
        lr: 0.2,
        // Zero tolerance: the step-size stopping rule can never fire, so
        // both solves run exactly `max_rounds` rounds (asserted below).
        tol: 0.0,
        ..Default::default()
    }
}

fn solve_bytes(problem: &MatchingProblem, rounds: usize) -> u64 {
    let solver = ShardedSolver::new(opts(rounds), 2);
    let params = RelaxationParams::default();
    let before = BYTES.load(Ordering::Relaxed);
    let sol = solver.solve(problem, &params);
    let after = BYTES.load(Ordering::Relaxed);
    assert_eq!(
        sol.iterations, rounds,
        "solve stopped early at {} of {rounds} rounds; the round-scaling \
         comparison needs both solves to run to their round budget",
        sol.iterations
    );
    assert!(sol.objective.is_finite());
    after - before
}

#[test]
fn round_count_does_not_scale_allocated_bytes() {
    let problem = big_problem();
    // Warm-up: faults in lazy process-wide state (pool, obs registry).
    solve_bytes(&problem, 1);

    let short = solve_bytes(&problem, 3);
    let long = solve_bytes(&problem, 10);
    let extra = long.saturating_sub(short);

    // 7 extra rounds must cost less than ONE clone of a problem matrix
    // (M × N f64 = ~4 MB). The per-round budget is only the boxed-job
    // handoff and line-search bookkeeping — a few KB per round.
    let one_matrix = (M * N * std::mem::size_of::<f64>()) as u64;
    assert!(
        extra < one_matrix,
        "7 extra rounds allocated {extra} bytes (short {short}, long {long}); \
         budget is one matrix clone = {one_matrix} bytes — per-round memory \
         is scaling with the problem again"
    );
}
