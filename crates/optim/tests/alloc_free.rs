//! Proves the PGD inner loop performs zero heap allocations per
//! iteration after warm-up.
//!
//! A counting global allocator measures two solves of the same instance
//! that differ only in iteration count (tol = 0 pins the count exactly).
//! Workspace warm-up — sizing `PgdWorkspace`, the iterate, the final
//! solution — costs the same number of allocations in both runs, so the
//! 300 extra iterations of the longer run must add exactly zero.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide; running it next to unrelated
//! tests would make the counts racy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mfcp_linalg::Matrix;
use mfcp_optim::solver::{solve_relaxed_from, uniform_init, SolverOptions};
use mfcp_optim::{MatchingProblem, ProjectionKind, RelaxationParams};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn test_problem() -> MatchingProblem {
    let m = 4;
    let n = 9;
    // Deterministic, non-uniform data so the solver does real work.
    let times = Matrix::from_fn(m, n, |i, j| 0.5 + ((i * 7 + j * 3) % 11) as f64 * 0.2);
    let rel = Matrix::from_fn(m, n, |i, j| 0.85 + ((i * 5 + j) % 7) as f64 * 0.02);
    MatchingProblem::new(times, rel, 0.8)
}

/// Allocations consumed by one full solve at `max_iters` (tol = 0 so the
/// loop never exits early and the iteration count is exact).
fn allocations_for(max_iters: usize, projection: ProjectionKind) -> u64 {
    let problem = test_problem();
    let params = RelaxationParams::default();
    let opts = SolverOptions {
        max_iters,
        tol: 0.0,
        projection,
        ..SolverOptions::default()
    };
    let x0 = uniform_init(problem.clusters(), problem.tasks());
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let sol = solve_relaxed_from(&problem, &params, &opts, x0);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        sol.iterations, max_iters,
        "tol = 0 must run every iteration"
    );
    assert!(sol.objective.is_finite());
    after - before
}

#[test]
fn pgd_iterations_allocate_nothing_after_warmup() {
    for projection in [
        ProjectionKind::MirrorDescent,
        ProjectionKind::SoftmaxPaper,
        ProjectionKind::Euclidean,
    ] {
        // Warm up process-wide lazy state (observability registry,
        // allocator internals) so it cannot skew the measured runs.
        allocations_for(10, projection);
        let short = allocations_for(100, projection);
        let long = allocations_for(400, projection);
        assert_eq!(
            long, short,
            "{projection:?}: 300 extra PGD iterations must allocate nothing \
             (short solve: {short} allocations, long solve: {long})"
        );
    }
}
