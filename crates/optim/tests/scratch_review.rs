//! Temporary review probes (not part of the PR).

use mfcp_linalg::Matrix;
use mfcp_optim::kkt::{self, KktWorkspace};
use mfcp_optim::problem::CapacityConstraint;
use mfcp_optim::{BarrierKind, CostKind, MatchingProblem, RelaxationParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn interior_x(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
    let mut x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.1..1.0));
    for j in 0..n {
        let col: f64 = (0..m).map(|i| x[(i, j)]).sum();
        for i in 0..m {
            x[(i, j)] /= col;
        }
    }
    x
}

fn max_rel_err(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / 1.0_f64.max(x.abs()).max(y.abs()))
        .fold(0.0, f64::max)
}

#[test]
fn probe_near_active_capacity_barrier() {
    let mut rng = StdRng::seed_from_u64(77);
    let m = 3;
    let n = 6;
    let times = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let rel = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.8..0.999));
    let x = interior_x(&mut rng, m, n);
    let usage = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.05..0.5));
    // Set limits so cluster 0's capacity slack is just above eps = 1e-3
    // (slack = (limit - used)/limit ≈ 1.2e-3, inside the λ/g² regime).
    let mut limits = vec![0.0; m];
    for i in 0..m {
        let used: f64 = (0..n).map(|j| x[(i, j)] * usage[(i, j)]).sum();
        let target_slack = if i == 0 { 1.2e-3 } else { 0.5 };
        limits[i] = used / (1.0 - target_slack);
    }
    let problem =
        MatchingProblem::new(times, rel, 0.5).with_capacity(CapacityConstraint::new(usage, limits));
    let params = RelaxationParams::default();
    let dl_dx = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
    let mut ws = KktWorkspace::new();
    let s = kkt::implicit_gradients_with(&problem, &params, &x, &dl_dx, &mut ws).unwrap();
    let d = kkt::implicit_gradients_dense(&problem, &params, &x, &dl_dx).unwrap();
    let e_t = max_rel_err(&s.dl_dt, &d.dl_dt);
    let e_a = max_rel_err(&s.dl_da, &d.dl_da);
    eprintln!(
        "near-active capacity: structured={} err_t={e_t:.3e} err_a={e_a:.3e}",
        ws.last_factor_structured()
    );
    assert!(e_t < 1e-9 && e_a < 1e-9, "err_t={e_t:.3e} err_a={e_a:.3e}");
}

#[test]
fn probe_smoothmax_weight_underflow() {
    let m = 3;
    let n = 4;
    // Huge spread in adjusted loads with big beta → softmax weights
    // underflow to exactly 0 for the losing clusters → coeff = 0.
    let times = Matrix::from_fn(m, n, |i, _| if i == 0 { 1000.0 } else { 0.001 });
    let rel = Matrix::from_fn(m, n, |_, _| 0.95);
    let problem = MatchingProblem::new(times, rel, 0.5);
    let mut rng = StdRng::seed_from_u64(5);
    let x = interior_x(&mut rng, m, n);
    let params = RelaxationParams {
        beta: 8.0,
        barrier: BarrierKind::log(),
        cost: CostKind::SmoothMax,
        ..RelaxationParams::default()
    };
    let dl_dx = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
    let mut ws = KktWorkspace::new();
    let s = kkt::implicit_gradients_with(&problem, &params, &x, &dl_dx, &mut ws).unwrap();
    let d = kkt::implicit_gradients_dense(&problem, &params, &x, &dl_dx).unwrap();
    eprintln!(
        "underflow probe: structured={} fallbacks={}",
        ws.last_factor_structured(),
        ws.dense_fallbacks()
    );
    assert!(
        s.dl_dt.as_slice().iter().all(|v| v.is_finite()),
        "structured dl_dt has non-finite entries"
    );
    let e_t = max_rel_err(&s.dl_dt, &d.dl_dt);
    let e_a = max_rel_err(&s.dl_da, &d.dl_da);
    eprintln!("underflow probe: err_t={e_t:.3e} err_a={e_a:.3e}");
    assert!(e_t < 1e-9 && e_a < 1e-9, "err_t={e_t:.3e} err_a={e_a:.3e}");
}
