//! Property tests for the robust solver on degenerate inputs.
//!
//! Whatever the instance — empty task sets, a single cluster, a
//! reliability constraint no matching can satisfy, all-equal costs, or a
//! barrier configured to blow up — `RobustSolver::solve` must return
//! either a finite column-stochastic matching or a typed error. It must
//! never panic and never leak a NaN.

use mfcp_linalg::Matrix;
use mfcp_optim::{BarrierKind, MatchingProblem, RelaxationParams, RobustSolver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts the solve contract: finite feasible solution or typed error.
fn assert_contract(solver: &RobustSolver, problem: &MatchingProblem) {
    match solver.solve(problem) {
        Ok(sol) => {
            assert!(
                sol.objective.is_finite(),
                "objective must be finite, got {} via {} ({})",
                sol.objective,
                sol.stage,
                sol.diagnostics.path()
            );
            assert!(
                sol.x
                    .as_slice()
                    .iter()
                    .all(|v| v.is_finite() && *v >= -1e-9),
                "matching entries must be finite and non-negative ({})",
                sol.diagnostics.path()
            );
            for j in 0..problem.tasks() {
                let col: f64 = (0..problem.clusters()).map(|i| sol.x[(i, j)]).sum();
                assert!(
                    (col - 1.0).abs() < 1e-6,
                    "column {j} sums to {col}, not 1 ({})",
                    sol.diagnostics.path()
                );
            }
        }
        // A typed error is an acceptable outcome for a degenerate
        // instance; the contract only forbids panics and NaN results.
        Err(e) => {
            assert!(!e.to_string().is_empty());
        }
    }
}

fn barrier_for(choice: usize) -> BarrierKind {
    match choice % 3 {
        0 => BarrierKind::log(),
        1 => BarrierKind::HardPenalty,
        // The pathological configuration the recovery ladder exists for.
        _ => BarrierKind::Log { eps: 0.0 },
    }
}

proptest::proptest! {
    #[test]
    fn empty_task_set_never_panics(m in 1usize..5, choice in 0usize..3) {
        let problem = MatchingProblem::new(Matrix::zeros(m, 0), Matrix::zeros(m, 0), 0.8);
        let params = RelaxationParams { barrier: barrier_for(choice), ..Default::default() };
        assert_contract(&RobustSolver::new(params), &problem);
    }

    #[test]
    fn single_cluster_always_column_stochastic(n in 1usize..7, seed in 0u64..200) {
        // With one cluster the only feasible matching is all-ones; the
        // solver must land there whatever the costs.
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(1, n, |_, _| rng.gen_range(0.1..5.0));
        let a = Matrix::from_fn(1, n, |_, _| rng.gen_range(0.5..1.0));
        let problem = MatchingProblem::new(t, a, 0.4);
        assert_contract(&RobustSolver::new(RelaxationParams::default()), &problem);
    }

    #[test]
    fn infeasible_reliability_recovers_or_errors(
        n in 1usize..6,
        m in 2usize..4,
        choice in 0usize..3,
    ) {
        // No matching can reach gamma = 0.99 when every reliability is
        // 0.5 — the barrier is violated everywhere, which is exactly
        // where a raw log barrier produces non-finite gradients.
        let t = Matrix::filled(m, n, 1.0);
        let a = Matrix::filled(m, n, 0.5);
        let problem = MatchingProblem::new(t, a, 0.99);
        let params = RelaxationParams { barrier: barrier_for(choice), ..Default::default() };
        assert_contract(&RobustSolver::new(params), &problem);
    }

    #[test]
    fn all_equal_costs_never_panic(
        n in 1usize..6,
        m in 1usize..4,
        choice in 0usize..3,
    ) {
        // Perfectly tied costs leave the objective flat in many
        // directions: a stall-prone instance by construction.
        let t = Matrix::filled(m, n, 2.0);
        let a = Matrix::filled(m, n, 0.9);
        let problem = MatchingProblem::new(t, a, 0.8);
        let params = RelaxationParams { barrier: barrier_for(choice), ..Default::default() };
        assert_contract(&RobustSolver::new(params), &problem);
    }

    #[test]
    fn random_instances_uphold_the_contract(seed in 0u64..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(1..4usize);
        let n = rng.gen_range(0..6usize);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.05..8.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.3..1.0));
        let gamma = rng.gen_range(0.0..1.0);
        let problem = MatchingProblem::new(t, a, gamma);
        let params = RelaxationParams {
            barrier: barrier_for(seed as usize),
            ..Default::default()
        };
        assert_contract(&RobustSolver::new(params), &problem);
    }
}
