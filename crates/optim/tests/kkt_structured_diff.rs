//! Differential suite: structured KKT elimination vs the dense-LU oracle.
//!
//! The structured path (Woodbury on the Hessian, Schur complement on the
//! simplex rows) must agree with the dense saddle solve to near machine
//! precision on every convex instance — across barrier kinds, cost
//! kinds, capacity constraints, and degenerate shapes (`M = 1`,
//! `N = 1`). Near-active log-barrier points and non-positive entropy
//! weights must instead take the dense fallback, recorded on the
//! workspace counters.

use mfcp_linalg::Matrix;
use mfcp_optim::kkt::{self, KktWorkspace};
use mfcp_optim::problem::CapacityConstraint;
use mfcp_optim::{BarrierKind, CostKind, MatchingProblem, RelaxationParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A strictly interior column-stochastic matrix: every entry at least
/// `0.1 / m` after normalization, well away from the `x → 0` cliff of
/// the entropy Hessian.
fn interior_x(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
    let mut x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.1..1.0));
    for j in 0..n {
        let col: f64 = (0..m).map(|i| x[(i, j)]).sum();
        for i in 0..m {
            x[(i, j)] /= col;
        }
    }
    x
}

fn random_problem(rng: &mut StdRng, m: usize, n: usize, capacity: bool) -> MatchingProblem {
    let times = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    // Reliabilities well above gamma keep the log-barrier slack bounded
    // away from zero: at g → 0 the curvature λ/g² makes the saddle
    // system so ill-conditioned that no two algorithms agree to 1e-9 —
    // that near-active band is the dense fallback's job, tested
    // separately below.
    let rel = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.8..0.999));
    let gamma = rng.gen_range(0.3..0.7);
    let mut problem = MatchingProblem::new(times, rel, gamma);
    if capacity {
        let usage = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.05..0.5));
        let limits = (0..m).map(|_| rng.gen_range(2.0..6.0)).collect();
        problem = problem.with_capacity(CapacityConstraint::new(usage, limits));
    }
    problem
}

fn barrier_for(choice: usize) -> BarrierKind {
    match choice % 3 {
        0 => BarrierKind::log(),
        1 => BarrierKind::HardPenalty,
        _ => BarrierKind::None,
    }
}

fn cost_for(choice: usize) -> CostKind {
    if choice.is_multiple_of(2) {
        CostKind::SmoothMax
    } else {
        CostKind::LinearSum
    }
}

/// Runs both paths on one instance and asserts elementwise agreement to
/// `tol`. Returns the workspace so callers can inspect which path fired.
fn assert_paths_agree(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
    dl_dx: &Matrix,
    tol: f64,
    context: &str,
) -> KktWorkspace {
    let mut ws = KktWorkspace::new();
    let structured = kkt::implicit_gradients_with(problem, params, x, dl_dx, &mut ws)
        .expect("workspace path must solve an interior convex instance");
    let dense = kkt::implicit_gradients_dense(problem, params, x, dl_dx)
        .expect("dense oracle must solve an interior convex instance");
    for (which, got, want) in [
        ("dl_dt", &structured.dl_dt, &dense.dl_dt),
        ("dl_da", &structured.dl_da, &dense.dl_da),
    ] {
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            // Scale-invariant: 1e-9 absolute near the origin, 1e-9
            // relative for large entries (ill-conditioned saddle systems
            // amplify the two algorithms' different rounding paths).
            let scale = 1.0_f64.max(a.abs()).max(b.abs());
            assert!(
                (a - b).abs() <= tol * scale,
                "{which} [{context}]: structured {a} vs dense {b} differ by {} (> {tol} x {scale})",
                (a - b).abs()
            );
        }
    }
    ws
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random convex instances: structured and dense gradients agree
    /// to 1e-9 elementwise across barrier kinds, cost kinds, capacity
    /// on/off, and shapes down to M=1 / N=1.
    #[test]
    fn prop_structured_matches_dense(
        seed in 0u64..1_000_000,
        m in 1usize..=6,
        n in 1usize..=8,
        barrier_choice in 0usize..3,
        cost_choice in 0usize..2,
        capacity_choice in 0usize..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = random_problem(&mut rng, m, n, capacity_choice == 1);
        let x = interior_x(&mut rng, m, n);
        let dl_dx = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let params = RelaxationParams {
            beta: rng.gen_range(0.5..8.0),
            lambda: rng.gen_range(0.01..0.2),
            rho: rng.gen_range(0.01..0.2),
            barrier: barrier_for(barrier_choice),
            cost: cost_for(cost_choice),
        };
        let g = mfcp_optim::objective::reliability_slack(&problem, &x);
        let ctx = format!(
            "seed={seed} m={m} n={n} barrier={barrier_choice} cost={cost_choice} \
             cap={capacity_choice} slack={g}"
        );
        let ws = assert_paths_agree(&problem, &params, &x, &dl_dx, 1e-9, &ctx);
        // With rho > 0 the only reason to fall back is the near-active
        // log-barrier band, which the random slack almost never hits;
        // when it does, the dense path must have produced the answer.
        prop_assert_eq!(
            ws.structured_factors() + ws.dense_fallbacks(),
            1,
            "exactly one factorization per call"
        );
    }
}

/// Degenerate shapes hit explicitly (the proptest above also samples
/// them, but these fixed cases never rotate out of the corpus).
#[test]
fn degenerate_shapes_agree() {
    for (seed, m, n) in [(11u64, 1usize, 5usize), (12, 4, 1), (13, 1, 1)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = random_problem(&mut rng, m, n, false);
        let x = interior_x(&mut rng, m, n);
        let dl_dx = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let params = RelaxationParams::default();
        let ws = assert_paths_agree(&problem, &params, &x, &dl_dx, 1e-9, "degenerate");
        assert!(
            ws.last_factor_structured(),
            "interior default-params instance must take the structured path"
        );
    }
}

/// A slack inside the near-active band `eps <= g < 2 eps` must trigger
/// the dense fallback: the barrier curvature there is about to switch to
/// the linear extension, where a rank-1 Woodbury update of an
/// ill-conditioned term is the wrong tool.
#[test]
fn near_active_barrier_takes_dense_fallback() {
    let mut rng = StdRng::seed_from_u64(21);
    let problem = random_problem(&mut rng, 3, 6, false);
    let x = interior_x(&mut rng, 3, 6);
    let g = mfcp_optim::objective::reliability_slack(&problem, &x);
    assert!(g > 0.0, "test instance must have positive slack, got {g}");
    // Place the cutoff so the measured slack lands mid-band: g = 1.5 eps.
    let params = RelaxationParams {
        barrier: BarrierKind::Log { eps: g / 1.5 },
        ..RelaxationParams::default()
    };
    let dl_dx = Matrix::from_fn(3, 6, |_, _| rng.gen_range(-1.0..1.0));
    let ws = assert_paths_agree(&problem, &params, &x, &dl_dx, 1e-9, "near-active");
    assert_eq!(ws.structured_factors(), 0);
    assert_eq!(ws.dense_fallbacks(), 1);
    assert!(!ws.last_factor_structured());
}

/// Without the entropy term the Hessian diagonal can vanish, so the
/// structured elimination (which divides by it) must not be attempted.
#[test]
fn zero_rho_takes_dense_fallback() {
    let mut rng = StdRng::seed_from_u64(22);
    let problem = random_problem(&mut rng, 3, 5, false);
    let x = interior_x(&mut rng, 3, 5);
    let dl_dx = Matrix::from_fn(3, 5, |_, _| rng.gen_range(-1.0..1.0));
    let params = RelaxationParams {
        rho: 0.0,
        ..RelaxationParams::default()
    };
    let mut ws = KktWorkspace::new();
    kkt::implicit_gradients_with(&problem, &params, &x, &dl_dx, &mut ws)
        .expect("dense fallback must still solve");
    assert_eq!(ws.structured_factors(), 0);
    assert_eq!(ws.dense_fallbacks(), 1);
}

/// The workspace is reusable across calls and shapes; counters keep
/// accumulating and results stay equal to fresh-workspace runs.
#[test]
fn workspace_reuse_across_shapes_matches_fresh() {
    let mut ws = KktWorkspace::new();
    for (seed, m, n) in [(31u64, 2usize, 4usize), (32, 5, 3), (33, 2, 4)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = random_problem(&mut rng, m, n, true);
        let x = interior_x(&mut rng, m, n);
        let dl_dx = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let params = RelaxationParams::default();
        let reused = kkt::implicit_gradients_with(&problem, &params, &x, &dl_dx, &mut ws).unwrap();
        let fresh = kkt::implicit_gradients(&problem, &params, &x, &dl_dx).unwrap();
        assert_eq!(reused.dl_dt.as_slice(), fresh.dl_dt.as_slice());
        assert_eq!(reused.dl_da.as_slice(), fresh.dl_da.as_slice());
    }
    assert_eq!(ws.structured_factors(), 3);
}
