//! Zeroth-order forward-gradient estimation (paper Algorithm 2, lines
//! 5–11) — the MFCP-FG path for non-convex (parallel-execution) matching.
//!
//! Given the solved base matching `X*(θ)` for a parameter vector `θ`
//! (one cluster's predicted times or reliabilities), the estimator samples
//! Gaussian directions `v^s`, re-solves the matching at `θ + Δ·v^s`, and
//! averages the directional derivatives:
//!
//! ```text
//! ∂L/∂θ ≈ (1/S) Σ_s ⟨∂L/∂X, (X*(θ + Δ v^s) − X*(θ))/Δ⟩ · v^s
//! ```
//!
//! The `S` re-solves are independent and run on all cores via
//! `mfcp-parallel`. Theorem 3 bounds the mean-squared error by
//! `β²Δ²d/4 + σ²d/(SΔ²)`; the benches sweep `Δ` and `S` against the
//! analytic KKT gradients to reproduce that trade-off.

use crate::recovery::SolveError;
use mfcp_linalg::Matrix;
use mfcp_parallel::{par_map, ParallelConfig};
use rand::Rng;

/// Options for [`estimate_gradient`].
#[derive(Debug, Clone)]
pub struct ZerothOrderOptions {
    /// Perturbation size `Δ`.
    pub delta: f64,
    /// Number of sampled directions `S`.
    pub samples: usize,
    /// Thread configuration for the parallel re-solves.
    pub parallel: ParallelConfig,
}

impl Default for ZerothOrderOptions {
    fn default() -> Self {
        ZerothOrderOptions {
            delta: 0.05,
            samples: 8,
            parallel: ParallelConfig::default(),
        }
    }
}

impl ZerothOrderOptions {
    /// The bias/variance-optimal perturbation size of Theorem 3,
    /// `Δ* = (2σ²_F / (β² S))^{1/4}`, for smoothness `beta` and function
    /// noise scale `sigma_f`.
    pub fn optimal_delta(beta: f64, sigma_f: f64, samples: usize) -> f64 {
        (2.0 * sigma_f * sigma_f / (beta * beta * samples.max(1) as f64)).powf(0.25)
    }
}

/// Draws a standard normal via Box–Muller (the `rand` crate alone, without
/// `rand_distr`, has no Gaussian sampler).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Estimates `∂L/∂θ` by forward-mode zeroth-order perturbation.
///
/// * `theta` — the parameter vector being differentiated (length `d`).
/// * `base_x` — the already-solved matching `X*(θ)`.
/// * `dl_dx` — upstream gradient `∂L/∂X*`, same shape as `base_x`.
/// * `solve` — re-solves the matching for a perturbed parameter vector;
///   called `S` times, possibly concurrently (must be `Sync`).
pub fn estimate_gradient(
    theta: &[f64],
    base_x: &Matrix,
    dl_dx: &Matrix,
    solve: impl Fn(&[f64]) -> Matrix + Sync,
    opts: &ZerothOrderOptions,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert_eq!(base_x.shape(), dl_dx.shape(), "dl_dx shape mismatch");
    assert!(opts.delta > 0.0, "delta must be positive");
    assert!(opts.samples > 0, "need at least one sample");
    let d = theta.len();
    if d == 0 {
        return Vec::new();
    }

    // Directions are drawn sequentially (determinism under a seeded RNG),
    // then the S re-solves fan out across threads.
    let directions: Vec<Vec<f64>> = (0..opts.samples)
        .map(|_| (0..d).map(|_| sample_standard_normal(rng)).collect())
        .collect();

    let contributions: Vec<Vec<f64>> = par_map(&opts.parallel, &directions, |v| {
        let perturbed: Vec<f64> = theta
            .iter()
            .zip(v)
            .map(|(&th, &vi)| th + opts.delta * vi)
            .collect();
        let x_s = solve(&perturbed);
        debug_assert_eq!(x_s.shape(), base_x.shape());
        // ⟨dl_dx, (X^s − X*)⟩ / Δ
        let mut directional = 0.0;
        for (idx, (&xs, &xb)) in x_s.as_slice().iter().zip(base_x.as_slice()).enumerate() {
            directional += dl_dx.as_slice()[idx] * (xs - xb);
        }
        directional /= opts.delta;
        v.iter().map(|&vi| directional * vi).collect()
    });

    let mut grad = vec![0.0; d];
    for contribution in &contributions {
        for (g, &c) in grad.iter_mut().zip(contribution) {
            *g += c;
        }
    }
    let inv = 1.0 / opts.samples as f64;
    for g in &mut grad {
        *g *= inv;
    }
    grad
}

/// A zeroth-order gradient with per-sample health screening applied.
#[derive(Debug, Clone)]
pub struct CheckedGradient {
    /// Gradient averaged over the healthy samples only.
    pub grad: Vec<f64>,
    /// Perturbation samples discarded for non-finite directional
    /// derivatives (a crashed or diverged perturbed re-solve).
    pub skipped: usize,
}

/// Fault-tolerant variant of [`estimate_gradient`]: validates the inputs,
/// discards perturbation samples whose directional derivative is not
/// finite (averaging over the survivors), and reports typed errors
/// instead of silently returning a `NaN` gradient.
///
/// # Errors
/// [`SolveError::InvalidInput`] when `theta`, `base_x`, or `dl_dx`
/// contain non-finite entries (or `delta`/`samples` are degenerate);
/// [`SolveError::AllSamplesNonFinite`] when every sample was discarded.
pub fn estimate_gradient_checked(
    theta: &[f64],
    base_x: &Matrix,
    dl_dx: &Matrix,
    solve: impl Fn(&[f64]) -> Matrix + Sync,
    opts: &ZerothOrderOptions,
    rng: &mut impl Rng,
) -> Result<CheckedGradient, SolveError> {
    if base_x.shape() != dl_dx.shape() {
        return Err(SolveError::InvalidInput(format!(
            "dl_dx shape {:?} does not match base_x shape {:?}",
            dl_dx.shape(),
            base_x.shape()
        )));
    }
    if !opts.delta.is_finite() || opts.delta <= 0.0 {
        return Err(SolveError::InvalidInput(format!(
            "perturbation delta = {} (must be finite and positive)",
            opts.delta
        )));
    }
    if opts.samples == 0 {
        return Err(SolveError::InvalidInput("need at least one sample".into()));
    }
    if theta.iter().any(|v| !v.is_finite()) {
        return Err(SolveError::InvalidInput(
            "theta contains non-finite entries".into(),
        ));
    }
    if base_x.as_slice().iter().any(|v| !v.is_finite())
        || dl_dx.as_slice().iter().any(|v| !v.is_finite())
    {
        return Err(SolveError::InvalidInput(
            "base_x / dl_dx contain non-finite entries".into(),
        ));
    }
    let d = theta.len();
    if d == 0 {
        return Ok(CheckedGradient {
            grad: Vec::new(),
            skipped: 0,
        });
    }

    let directions: Vec<Vec<f64>> = (0..opts.samples)
        .map(|_| (0..d).map(|_| sample_standard_normal(rng)).collect())
        .collect();

    let contributions: Vec<Option<Vec<f64>>> = par_map(&opts.parallel, &directions, |v| {
        let perturbed: Vec<f64> = theta
            .iter()
            .zip(v)
            .map(|(&th, &vi)| th + opts.delta * vi)
            .collect();
        let x_s = solve(&perturbed);
        if x_s.shape() != base_x.shape() {
            return None;
        }
        let mut directional = 0.0;
        for (idx, (&xs, &xb)) in x_s.as_slice().iter().zip(base_x.as_slice()).enumerate() {
            directional += dl_dx.as_slice()[idx] * (xs - xb);
        }
        directional /= opts.delta;
        if !directional.is_finite() {
            return None;
        }
        Some(v.iter().map(|&vi| directional * vi).collect())
    });

    let mut grad = vec![0.0; d];
    let mut kept = 0usize;
    for contribution in contributions.iter().flatten() {
        kept += 1;
        for (g, &c) in grad.iter_mut().zip(contribution) {
            *g += c;
        }
    }
    if kept == 0 {
        return Err(SolveError::AllSamplesNonFinite {
            samples: opts.samples,
        });
    }
    let inv = 1.0 / kept as f64;
    for g in &mut grad {
        *g *= inv;
    }
    Ok(CheckedGradient {
        grad,
        skipped: opts.samples - kept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Test oracle: X*(θ) = M θ (linear), so dL/dθ = Mᵀ (dL/dX) exactly
    /// and the estimator should recover it as S grows.
    fn linear_map(theta: &[f64]) -> Matrix {
        // 2x2 output from a 3-vector input.
        Matrix::from_rows(&[
            &[theta[0] + 2.0 * theta[1], -theta[2]],
            &[0.5 * theta[0], theta[1] + theta[2]],
        ])
    }

    fn exact_grad(dl_dx: &Matrix) -> Vec<f64> {
        vec![
            dl_dx[(0, 0)] + 0.5 * dl_dx[(1, 0)],
            2.0 * dl_dx[(0, 0)] + dl_dx[(1, 1)],
            -dl_dx[(0, 1)] + dl_dx[(1, 1)],
        ]
    }

    #[test]
    fn recovers_linear_jacobian() {
        let theta = [0.3, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let expected = exact_grad(&dl_dx);
        let mut rng = StdRng::seed_from_u64(1);
        let opts = ZerothOrderOptions {
            delta: 0.01,
            samples: 4000,
            parallel: ParallelConfig::sequential(),
        };
        let got = estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng);
        for (g, e) in got.iter().zip(&expected) {
            assert!(
                (g - e).abs() < 0.15 * (1.0 + e.abs()),
                "{got:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn error_decreases_with_samples() {
        // Theorem 3's variance term: MSE ∝ 1/S for a linear map (zero bias).
        let theta = [0.3, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let expected = exact_grad(&dl_dx);
        let mse = |samples: usize, seed: u64| -> f64 {
            let mut total = 0.0;
            let trials = 12;
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed + t);
                let opts = ZerothOrderOptions {
                    delta: 0.05,
                    samples,
                    parallel: ParallelConfig::sequential(),
                };
                let got = estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng);
                total += got
                    .iter()
                    .zip(&expected)
                    .map(|(g, e)| (g - e) * (g - e))
                    .sum::<f64>();
            }
            total / trials as f64
        };
        let coarse = mse(8, 10);
        let fine = mse(512, 10);
        assert!(
            fine < coarse / 4.0,
            "MSE should shrink roughly like 1/S: S=8 → {coarse}, S=512 → {fine}"
        );
    }

    #[test]
    fn parallel_matches_sequential_statistically() {
        // Same directions (same seed) ⇒ identical estimate regardless of
        // thread count, because directions are drawn before the fan-out.
        let theta = [0.2, 0.4, -0.6];
        let base = linear_map(&theta);
        let dl_dx = Matrix::filled(2, 2, 1.0);
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            let opts = ZerothOrderOptions {
                delta: 0.05,
                samples: 64,
                parallel: ParallelConfig::with_threads(threads),
            };
            estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng)
        };
        let seq = run(1);
        let par = run(4);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn optimal_delta_formula() {
        // Δ* = (2σ²/(β²S))^{1/4}; spot-check monotonicity and a value.
        let d1 = ZerothOrderOptions::optimal_delta(1.0, 1.0, 1);
        assert!((d1 - 2.0_f64.powf(0.25)).abs() < 1e-12);
        let d_many = ZerothOrderOptions::optimal_delta(1.0, 1.0, 256);
        assert!(d_many < d1, "more samples allow a smaller Δ");
    }

    #[test]
    fn checked_matches_unchecked_on_healthy_input() {
        let theta = [0.3, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let opts = ZerothOrderOptions {
            delta: 0.05,
            samples: 64,
            parallel: ParallelConfig::sequential(),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let plain = estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let checked =
            estimate_gradient_checked(&theta, &base, &dl_dx, linear_map, &opts, &mut rng).unwrap();
        assert_eq!(checked.skipped, 0);
        for (a, b) in plain.iter().zip(&checked.grad) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn checked_skips_nan_samples() {
        // The perturbed solve fails (NaN output) whenever the first
        // coordinate moves negative; those samples must be discarded and
        // the estimate still recovered from the rest.
        let theta = [0.05, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let flaky = |th: &[f64]| {
            if th[0] < 0.0 {
                Matrix::filled(2, 2, f64::NAN)
            } else {
                linear_map(th)
            }
        };
        let opts = ZerothOrderOptions {
            delta: 0.2,
            samples: 256,
            parallel: ParallelConfig::sequential(),
        };
        let mut rng = StdRng::seed_from_u64(6);
        let checked =
            estimate_gradient_checked(&theta, &base, &dl_dx, flaky, &opts, &mut rng).unwrap();
        assert!(checked.skipped > 0, "setup must actually trigger skips");
        assert!(checked.skipped < opts.samples);
        assert!(checked.grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn checked_reports_total_failure() {
        let theta = [0.1];
        let base = Matrix::zeros(1, 1);
        let dl_dx = Matrix::filled(1, 1, 1.0);
        let broken = |_: &[f64]| Matrix::filled(1, 1, f64::INFINITY);
        let opts = ZerothOrderOptions {
            delta: 0.05,
            samples: 8,
            parallel: ParallelConfig::sequential(),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let err =
            estimate_gradient_checked(&theta, &base, &dl_dx, broken, &opts, &mut rng).unwrap_err();
        assert!(
            matches!(err, SolveError::AllSamplesNonFinite { samples: 8 }),
            "{err}"
        );
    }

    #[test]
    fn checked_rejects_nan_theta() {
        let base = Matrix::zeros(1, 1);
        let dl_dx = Matrix::zeros(1, 1);
        let mut rng = StdRng::seed_from_u64(8);
        let err = estimate_gradient_checked(
            &[f64::NAN],
            &base,
            &dl_dx,
            |_| Matrix::zeros(1, 1),
            &ZerothOrderOptions::default(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn empty_theta() {
        let base = Matrix::zeros(1, 1);
        let dl = Matrix::zeros(1, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let g = estimate_gradient(
            &[],
            &base,
            &dl,
            |_| Matrix::zeros(1, 1),
            &ZerothOrderOptions::default(),
            &mut rng,
        );
        assert!(g.is_empty());
    }
}
