//! Zeroth-order forward-gradient estimation (paper Algorithm 2, lines
//! 5–11) — the MFCP-FG path for non-convex (parallel-execution) matching.
//!
//! Given the solved base matching `X*(θ)` for a parameter vector `θ`
//! (one cluster's predicted times or reliabilities), the estimator samples
//! Gaussian directions `v^s`, re-solves the matching at `θ + Δ·v^s`, and
//! averages the directional derivatives:
//!
//! ```text
//! ∂L/∂θ ≈ (1/S) Σ_s ⟨∂L/∂X, (X*(θ + Δ v^s) − X*(θ))/Δ⟩ · v^s
//! ```
//!
//! The `S` re-solves are independent and run on all cores via
//! `mfcp-parallel`. Theorem 3 bounds the mean-squared error by
//! `β²Δ²d/4 + σ²d/(SΔ²)`; the benches sweep `Δ` and `S` against the
//! analytic KKT gradients to reproduce that trade-off.
//!
//! The `solve` closure owns whatever linear algebra each re-solve needs.
//! When the closure runs a factorization-based solver (e.g. the Newton
//! path, which Cholesky-factors an `N×N` Schur system per iteration —
//! see [`crate::kkt`]), the `S` same-shape factorizations across one
//! sample batch are exactly the workload
//! [`mfcp_linalg::CholeskyBatch::refactor_all`] amortizes: one factor
//! slot per sample, a shared blocking plan, and per-slot failure
//! isolation that matches this module's checked estimator.

use crate::recovery::SolveError;
use mfcp_linalg::Matrix;
use mfcp_parallel::{par_map, ParallelConfig};
use rand::Rng;

/// Options for [`estimate_gradient`].
#[derive(Debug, Clone)]
pub struct ZerothOrderOptions {
    /// Perturbation size `Δ`.
    pub delta: f64,
    /// Number of sampled directions `S`.
    pub samples: usize,
    /// Thread configuration for the parallel re-solves.
    pub parallel: ParallelConfig,
}

impl Default for ZerothOrderOptions {
    fn default() -> Self {
        ZerothOrderOptions {
            delta: 0.05,
            samples: 8,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Fallback perturbation size used when [`ZerothOrderOptions::optimal_delta`]
/// cannot be computed from degenerate inputs; equals the default `delta`.
pub const FALLBACK_DELTA: f64 = 0.05;

impl ZerothOrderOptions {
    /// The bias/variance-optimal perturbation size of Theorem 3,
    /// `Δ* = (2σ²_F / (β² S))^{1/4}`, for smoothness `beta` and function
    /// noise scale `sigma_f`.
    ///
    /// Degenerate inputs (`beta == 0`, `sigma_f == 0`, negatives, or
    /// non-finite values) would make the formula return `0`, `inf`, or
    /// `NaN` — all of which poison the estimator downstream. This variant
    /// clamps those cases to [`FALLBACK_DELTA`]; use
    /// [`ZerothOrderOptions::try_optimal_delta`] to detect them instead.
    pub fn optimal_delta(beta: f64, sigma_f: f64, samples: usize) -> f64 {
        Self::try_optimal_delta(beta, sigma_f, samples).unwrap_or(FALLBACK_DELTA)
    }

    /// Fallible form of [`ZerothOrderOptions::optimal_delta`].
    ///
    /// # Errors
    /// [`SolveError::InvalidInput`] when `beta` or `sigma_f` is zero,
    /// negative, or non-finite — the Theorem 3 formula divides by
    /// `β²` and vanishes with `σ_F`, so no meaningful `Δ*` exists.
    pub fn try_optimal_delta(beta: f64, sigma_f: f64, samples: usize) -> Result<f64, SolveError> {
        if !beta.is_finite() || beta <= 0.0 {
            return Err(SolveError::InvalidInput(format!(
                "optimal_delta: smoothness beta = {beta} (must be finite and positive)"
            )));
        }
        if !sigma_f.is_finite() || sigma_f <= 0.0 {
            return Err(SolveError::InvalidInput(format!(
                "optimal_delta: noise scale sigma_f = {sigma_f} (must be finite and positive)"
            )));
        }
        let delta = (2.0 * sigma_f * sigma_f / (beta * beta * samples.max(1) as f64)).powf(0.25);
        if delta.is_finite() && delta > 0.0 {
            Ok(delta)
        } else {
            // Extreme but individually-finite inputs can still overflow or
            // underflow the quotient (e.g. sigma_f near f64::MAX).
            Err(SolveError::InvalidInput(format!(
                "optimal_delta: beta = {beta}, sigma_f = {sigma_f} produce a non-finite delta"
            )))
        }
    }
}

/// Box–Muller sampler that keeps the paired variate.
///
/// One Box–Muller transform yields two independent normals (the cosine and
/// sine projections of the same radius); discarding the sine half doubles
/// the RNG draws and the `ln`/`sqrt` work. The spare is cached per sampler
/// — estimator-local state, so seeded runs stay reproducible regardless of
/// what other threads are sampling.
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// A sampler with no cached variate.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draws a standard normal.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let angle = 2.0 * std::f64::consts::PI * u2;
            let z0 = r * angle.cos();
            let z1 = r * angle.sin();
            if z0.is_finite() && z1.is_finite() {
                self.spare = Some(z1);
                return z0;
            }
        }
    }
}

/// Draws a standard normal via Box–Muller (the `rand` crate alone, without
/// `rand_distr`, has no Gaussian sampler).
///
/// Single-shot form that discards the paired variate; callers drawing many
/// normals should hold a [`NormalSampler`] to use both halves of each
/// transform.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    NormalSampler::new().sample(rng)
}

/// Estimates `∂L/∂θ` by forward-mode zeroth-order perturbation.
///
/// * `theta` — the parameter vector being differentiated (length `d`).
/// * `base_x` — the already-solved matching `X*(θ)`.
/// * `dl_dx` — upstream gradient `∂L/∂X*`, same shape as `base_x`.
/// * `solve` — re-solves the matching for a perturbed parameter vector;
///   called `S` times, possibly concurrently (must be `Sync`).
pub fn estimate_gradient(
    theta: &[f64],
    base_x: &Matrix,
    dl_dx: &Matrix,
    solve: impl Fn(&[f64]) -> Matrix + Sync,
    opts: &ZerothOrderOptions,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert_eq!(base_x.shape(), dl_dx.shape(), "dl_dx shape mismatch");
    assert!(opts.delta > 0.0, "delta must be positive");
    assert!(opts.samples > 0, "need at least one sample");
    let d = theta.len();
    if d == 0 {
        return Vec::new();
    }

    // Directions are drawn sequentially (determinism under a seeded RNG),
    // then the S re-solves fan out across threads.
    let mut sampler = NormalSampler::new();
    let directions: Vec<Vec<f64>> = (0..opts.samples)
        .map(|_| (0..d).map(|_| sampler.sample(rng)).collect())
        .collect();

    let contributions: Vec<Vec<f64>> = par_map(&opts.parallel, &directions, |v| {
        let perturbed: Vec<f64> = theta
            .iter()
            .zip(v)
            .map(|(&th, &vi)| th + opts.delta * vi)
            .collect();
        let x_s = solve(&perturbed);
        debug_assert_eq!(x_s.shape(), base_x.shape());
        // ⟨dl_dx, (X^s − X*)⟩ / Δ
        let mut directional = 0.0;
        for (idx, (&xs, &xb)) in x_s.as_slice().iter().zip(base_x.as_slice()).enumerate() {
            directional += dl_dx.as_slice()[idx] * (xs - xb);
        }
        directional /= opts.delta;
        v.iter().map(|&vi| directional * vi).collect()
    });

    let mut grad = vec![0.0; d];
    for contribution in &contributions {
        for (g, &c) in grad.iter_mut().zip(contribution) {
            *g += c;
        }
    }
    let inv = 1.0 / opts.samples as f64;
    for g in &mut grad {
        *g *= inv;
    }
    grad
}

/// A zeroth-order gradient with per-sample health screening applied.
#[derive(Debug, Clone)]
pub struct CheckedGradient {
    /// Gradient averaged over the healthy samples only.
    pub grad: Vec<f64>,
    /// Perturbation samples discarded for non-finite directional
    /// derivatives (a crashed or diverged perturbed re-solve).
    pub skipped: usize,
}

/// Fault-tolerant variant of [`estimate_gradient`]: validates the inputs,
/// discards perturbation samples whose directional derivative is not
/// finite (averaging over the survivors), and reports typed errors
/// instead of silently returning a `NaN` gradient.
///
/// # Errors
/// [`SolveError::InvalidInput`] when `theta`, `base_x`, or `dl_dx`
/// contain non-finite entries (or `delta`/`samples` are degenerate);
/// [`SolveError::AllSamplesNonFinite`] when every sample was discarded.
pub fn estimate_gradient_checked(
    theta: &[f64],
    base_x: &Matrix,
    dl_dx: &Matrix,
    solve: impl Fn(&[f64]) -> Matrix + Sync,
    opts: &ZerothOrderOptions,
    rng: &mut impl Rng,
) -> Result<CheckedGradient, SolveError> {
    if base_x.shape() != dl_dx.shape() {
        return Err(SolveError::InvalidInput(format!(
            "dl_dx shape {:?} does not match base_x shape {:?}",
            dl_dx.shape(),
            base_x.shape()
        )));
    }
    if !opts.delta.is_finite() || opts.delta <= 0.0 {
        return Err(SolveError::InvalidInput(format!(
            "perturbation delta = {} (must be finite and positive)",
            opts.delta
        )));
    }
    if opts.samples == 0 {
        return Err(SolveError::InvalidInput("need at least one sample".into()));
    }
    if theta.iter().any(|v| !v.is_finite()) {
        return Err(SolveError::InvalidInput(
            "theta contains non-finite entries".into(),
        ));
    }
    if base_x.as_slice().iter().any(|v| !v.is_finite())
        || dl_dx.as_slice().iter().any(|v| !v.is_finite())
    {
        return Err(SolveError::InvalidInput(
            "base_x / dl_dx contain non-finite entries".into(),
        ));
    }
    let d = theta.len();
    if d == 0 {
        return Ok(CheckedGradient {
            grad: Vec::new(),
            skipped: 0,
        });
    }

    let mut sampler = NormalSampler::new();
    let directions: Vec<Vec<f64>> = (0..opts.samples)
        .map(|_| (0..d).map(|_| sampler.sample(rng)).collect())
        .collect();

    let contributions: Vec<Option<Vec<f64>>> = par_map(&opts.parallel, &directions, |v| {
        let perturbed: Vec<f64> = theta
            .iter()
            .zip(v)
            .map(|(&th, &vi)| th + opts.delta * vi)
            .collect();
        let x_s = solve(&perturbed);
        if x_s.shape() != base_x.shape() {
            return None;
        }
        let mut directional = 0.0;
        for (idx, (&xs, &xb)) in x_s.as_slice().iter().zip(base_x.as_slice()).enumerate() {
            directional += dl_dx.as_slice()[idx] * (xs - xb);
        }
        directional /= opts.delta;
        if !directional.is_finite() {
            return None;
        }
        Some(v.iter().map(|&vi| directional * vi).collect())
    });

    let mut grad = vec![0.0; d];
    let mut kept = 0usize;
    for contribution in contributions.iter().flatten() {
        kept += 1;
        for (g, &c) in grad.iter_mut().zip(contribution) {
            *g += c;
        }
    }
    if kept == 0 {
        return Err(SolveError::AllSamplesNonFinite {
            samples: opts.samples,
        });
    }
    let inv = 1.0 / kept as f64;
    for g in &mut grad {
        *g *= inv;
    }
    Ok(CheckedGradient {
        grad,
        skipped: opts.samples - kept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Test oracle: X*(θ) = M θ (linear), so dL/dθ = Mᵀ (dL/dX) exactly
    /// and the estimator should recover it as S grows.
    fn linear_map(theta: &[f64]) -> Matrix {
        // 2x2 output from a 3-vector input.
        Matrix::from_rows(&[
            &[theta[0] + 2.0 * theta[1], -theta[2]],
            &[0.5 * theta[0], theta[1] + theta[2]],
        ])
    }

    fn exact_grad(dl_dx: &Matrix) -> Vec<f64> {
        vec![
            dl_dx[(0, 0)] + 0.5 * dl_dx[(1, 0)],
            2.0 * dl_dx[(0, 0)] + dl_dx[(1, 1)],
            -dl_dx[(0, 1)] + dl_dx[(1, 1)],
        ]
    }

    #[test]
    fn recovers_linear_jacobian() {
        let theta = [0.3, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let expected = exact_grad(&dl_dx);
        let mut rng = StdRng::seed_from_u64(1);
        let opts = ZerothOrderOptions {
            delta: 0.01,
            samples: 4000,
            parallel: ParallelConfig::sequential(),
        };
        let got = estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng);
        for (g, e) in got.iter().zip(&expected) {
            assert!(
                (g - e).abs() < 0.15 * (1.0 + e.abs()),
                "{got:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn error_decreases_with_samples() {
        // Theorem 3's variance term: MSE ∝ 1/S for a linear map (zero bias).
        let theta = [0.3, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let expected = exact_grad(&dl_dx);
        let mse = |samples: usize, seed: u64| -> f64 {
            let mut total = 0.0;
            let trials = 12;
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed + t);
                let opts = ZerothOrderOptions {
                    delta: 0.05,
                    samples,
                    parallel: ParallelConfig::sequential(),
                };
                let got = estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng);
                total += got
                    .iter()
                    .zip(&expected)
                    .map(|(g, e)| (g - e) * (g - e))
                    .sum::<f64>();
            }
            total / trials as f64
        };
        let coarse = mse(8, 10);
        let fine = mse(512, 10);
        assert!(
            fine < coarse / 4.0,
            "MSE should shrink roughly like 1/S: S=8 → {coarse}, S=512 → {fine}"
        );
    }

    #[test]
    fn parallel_matches_sequential_statistically() {
        // Same directions (same seed) ⇒ identical estimate regardless of
        // thread count, because directions are drawn before the fan-out.
        let theta = [0.2, 0.4, -0.6];
        let base = linear_map(&theta);
        let dl_dx = Matrix::filled(2, 2, 1.0);
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            let opts = ZerothOrderOptions {
                delta: 0.05,
                samples: 64,
                parallel: ParallelConfig::with_threads(threads),
            };
            estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng)
        };
        let seq = run(1);
        let par = run(4);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_sampler_moments() {
        // Mean, variance, AND kurtosis over a large sample, exercising the
        // cached-spare path (even draws come from the sine half of each
        // Box–Muller transform). Tolerances sit at ~6 standard errors:
        // SE(mean) = 1/√n, SE(var) ≈ √(2/n), SE(kurtosis) ≈ √(24/n).
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = NormalSampler::new();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let nf = n as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nf;
        let kurtosis = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / (nf * var * var);
        assert!(mean.abs() < 0.015, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!((kurtosis - 3.0).abs() < 0.08, "kurtosis {kurtosis}");
    }

    #[test]
    fn sampler_halves_rng_draws() {
        // The cached spare means two normals per two uniforms; the old
        // sampler burned two uniforms per normal. Count draws through a
        // wrapper RNG.
        struct Counting<R> {
            inner: R,
            draws: u64,
        }
        impl<R: rand::RngCore> rand::RngCore for Counting<R> {
            fn next_u64(&mut self) -> u64 {
                self.draws += 1;
                self.inner.next_u64()
            }
        }
        let n = 1000;
        let mut paired = Counting {
            inner: StdRng::seed_from_u64(11),
            draws: 0,
        };
        let mut sampler = NormalSampler::new();
        for _ in 0..n {
            sampler.sample(&mut paired);
        }
        let mut single = Counting {
            inner: StdRng::seed_from_u64(11),
            draws: 0,
        };
        for _ in 0..n {
            sample_standard_normal(&mut single);
        }
        assert!(
            paired.draws * 2 <= single.draws + 4,
            "paired sampler used {} draws, single-shot {}",
            paired.draws,
            single.draws
        );
    }

    #[test]
    fn optimal_delta_formula() {
        // Δ* = (2σ²/(β²S))^{1/4}; spot-check monotonicity and a value.
        let d1 = ZerothOrderOptions::optimal_delta(1.0, 1.0, 1);
        assert!((d1 - 2.0_f64.powf(0.25)).abs() < 1e-12);
        let d_many = ZerothOrderOptions::optimal_delta(1.0, 1.0, 256);
        assert!(d_many < d1, "more samples allow a smaller Δ");
    }

    #[test]
    fn optimal_delta_zero_beta_clamps_to_fallback() {
        // β = 0 used to divide by zero and return inf.
        let d = ZerothOrderOptions::optimal_delta(0.0, 1.0, 8);
        assert_eq!(d, FALLBACK_DELTA);
        let err = ZerothOrderOptions::try_optimal_delta(0.0, 1.0, 8).unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn optimal_delta_zero_sigma_clamps_to_fallback() {
        // σ_F = 0 used to return Δ* = 0, which divides by zero later in the
        // estimator.
        let d = ZerothOrderOptions::optimal_delta(1.0, 0.0, 8);
        assert_eq!(d, FALLBACK_DELTA);
        let err = ZerothOrderOptions::try_optimal_delta(1.0, 0.0, 8).unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn optimal_delta_rejects_non_finite_inputs() {
        for (beta, sigma) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (1.0, f64::INFINITY),
            (-1.0, 1.0),
            (1.0, -1.0),
        ] {
            assert!(ZerothOrderOptions::try_optimal_delta(beta, sigma, 8).is_err());
            let d = ZerothOrderOptions::optimal_delta(beta, sigma, 8);
            assert_eq!(d, FALLBACK_DELTA, "beta={beta} sigma={sigma}");
        }
    }

    #[test]
    fn checked_matches_unchecked_on_healthy_input() {
        let theta = [0.3, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let opts = ZerothOrderOptions {
            delta: 0.05,
            samples: 64,
            parallel: ParallelConfig::sequential(),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let plain = estimate_gradient(&theta, &base, &dl_dx, linear_map, &opts, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let checked =
            estimate_gradient_checked(&theta, &base, &dl_dx, linear_map, &opts, &mut rng).unwrap();
        assert_eq!(checked.skipped, 0);
        for (a, b) in plain.iter().zip(&checked.grad) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn checked_skips_nan_samples() {
        // The perturbed solve fails (NaN output) whenever the first
        // coordinate moves negative; those samples must be discarded and
        // the estimate still recovered from the rest.
        let theta = [0.05, -0.7, 1.1];
        let base = linear_map(&theta);
        let dl_dx = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let flaky = |th: &[f64]| {
            if th[0] < 0.0 {
                Matrix::filled(2, 2, f64::NAN)
            } else {
                linear_map(th)
            }
        };
        let opts = ZerothOrderOptions {
            delta: 0.2,
            samples: 256,
            parallel: ParallelConfig::sequential(),
        };
        let mut rng = StdRng::seed_from_u64(6);
        let checked =
            estimate_gradient_checked(&theta, &base, &dl_dx, flaky, &opts, &mut rng).unwrap();
        assert!(checked.skipped > 0, "setup must actually trigger skips");
        assert!(checked.skipped < opts.samples);
        assert!(checked.grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn checked_reports_total_failure() {
        let theta = [0.1];
        let base = Matrix::zeros(1, 1);
        let dl_dx = Matrix::filled(1, 1, 1.0);
        let broken = |_: &[f64]| Matrix::filled(1, 1, f64::INFINITY);
        let opts = ZerothOrderOptions {
            delta: 0.05,
            samples: 8,
            parallel: ParallelConfig::sequential(),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let err =
            estimate_gradient_checked(&theta, &base, &dl_dx, broken, &opts, &mut rng).unwrap_err();
        assert!(
            matches!(err, SolveError::AllSamplesNonFinite { samples: 8 }),
            "{err}"
        );
    }

    #[test]
    fn checked_rejects_nan_theta() {
        let base = Matrix::zeros(1, 1);
        let dl_dx = Matrix::zeros(1, 1);
        let mut rng = StdRng::seed_from_u64(8);
        let err = estimate_gradient_checked(
            &[f64::NAN],
            &base,
            &dl_dx,
            |_| Matrix::zeros(1, 1),
            &ZerothOrderOptions::default(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn empty_theta() {
        let base = Matrix::zeros(1, 1);
        let dl = Matrix::zeros(1, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let g = estimate_gradient(
            &[],
            &base,
            &dl,
            |_| Matrix::zeros(1, 1),
            &ZerothOrderOptions::default(),
            &mut rng,
        );
        assert!(g.is_empty());
    }
}
