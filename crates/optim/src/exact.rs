//! Exact branch-and-bound solver for small matching instances.
//!
//! Used as ground truth by the test suite and the regret benches: the
//! paper's evaluation computes `X*(T, A)` — the optimal matching under the
//! *true* performance matrices — and the paper-scale instances (`M = 3`,
//! `N ≤ 25`) are within reach of branch-and-bound with LPT seeding and
//! load/reliability pruning.

use crate::problem::{Assignment, MatchingProblem};
use crate::speedup::SpeedupCurve;

/// Options for [`solve_exact`].
#[derive(Debug, Clone, Copy)]
pub struct ExactOptions {
    /// Maximum search-tree nodes before giving up on optimality.
    pub node_limit: u64,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            node_limit: 20_000_000,
        }
    }
}

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Best assignment found (always populated; best-effort if the
    /// reliability constraint is unsatisfiable).
    pub assignment: Assignment,
    /// Whether the assignment satisfies the reliability constraint.
    pub feasible: bool,
    /// Whether the search finished within the node limit (the assignment
    /// is then provably optimal among feasible assignments).
    pub optimal: bool,
    /// Nodes expanded.
    pub nodes: u64,
}

fn speedup_floor(curve: SpeedupCurve) -> f64 {
    match curve {
        SpeedupCurve::None => 1.0,
        SpeedupCurve::ExpDecay { floor, .. } => floor,
    }
}

/// LPT greedy: tasks in decreasing min-time order, each placed on the
/// cluster minimizing the resulting makespan (ties to the more reliable
/// cluster).
pub fn greedy_lpt(problem: &MatchingProblem) -> Assignment {
    let m = problem.clusters();
    let n = problem.tasks();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ta = problem
            .times
            .col(a)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let tb = problem
            .times
            .col(b)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        tb.total_cmp(&ta)
    });
    let mut cluster_of = vec![0usize; n];
    let mut sums = vec![0.0; m];
    let mut counts = vec![0.0; m];
    for &j in &order {
        let mut best = (f64::INFINITY, f64::NEG_INFINITY, 0usize);
        for i in 0..m {
            let new_time =
                problem.speedup[i].eval(counts[i] + 1.0) * (sums[i] + problem.times[(i, j)]);
            let others = (0..m)
                .filter(|&k| k != i)
                .map(|k| problem.speedup[k].eval(counts[k]) * sums[k])
                .fold(0.0, f64::max);
            let span = new_time.max(others);
            let rel = problem.reliability[(i, j)];
            if span < best.0 - 1e-12 || (span < best.0 + 1e-12 && rel > best.1) {
                best = (span, rel, i);
            }
        }
        cluster_of[j] = best.2;
        sums[best.2] += problem.times[(best.2, j)];
        counts[best.2] += 1.0;
    }
    Assignment::new(cluster_of)
}

struct Search<'a> {
    problem: &'a MatchingProblem,
    /// Running per-cluster capacity usage (empty when unconstrained).
    cap_used: Vec<f64>,
    order: Vec<usize>,
    /// `max_rel_suffix[k]` = Σ over tasks `order[k..]` of the per-task
    /// maximum reliability.
    max_rel_suffix: Vec<f64>,
    /// `min_time_suffix[k]` = Σ over tasks `order[k..]` of
    /// `min_i floor_i · t_ij`.
    min_time_suffix: Vec<f64>,
    floors: Vec<f64>,
    needed_rel: f64,
    best_span: f64,
    best: Option<Vec<usize>>,
    nodes: u64,
    node_limit: u64,
    truncated: bool,
}

impl Search<'_> {
    fn recurse(
        &mut self,
        depth: usize,
        sums: &mut Vec<f64>,
        counts: &mut Vec<f64>,
        rel_acc: f64,
        current: &mut Vec<usize>,
    ) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.truncated = true;
            return;
        }
        let m = self.problem.clusters();
        // Bound 1: reliability can no longer reach the threshold.
        if rel_acc + self.max_rel_suffix[depth] < self.needed_rel - 1e-12 {
            return;
        }
        // Bound 2: makespan lower bounds.
        let lb_cluster = (0..m).map(|i| self.floors[i] * sums[i]).fold(0.0, f64::max);
        let lb_avg = ((0..m).map(|i| self.floors[i] * sums[i]).sum::<f64>()
            + self.min_time_suffix[depth])
            / m as f64;
        if lb_cluster.max(lb_avg) >= self.best_span - 1e-12 {
            return;
        }
        if depth == self.order.len() {
            // Complete assignment: evaluate the real (speedup-adjusted) span.
            let span = (0..m)
                .map(|i| self.problem.speedup[i].eval(counts[i]) * sums[i])
                .fold(0.0, f64::max);
            if span < self.best_span - 1e-12 {
                self.best_span = span;
                self.best = Some(current.clone());
            }
            return;
        }
        let j = self.order[depth];
        // Explore clusters in increasing resulting-load order (best-first).
        let mut choices: Vec<usize> = (0..m).collect();
        choices.sort_by(|&a, &b| {
            let la = sums[a] + self.problem.times[(a, j)];
            let lb = sums[b] + self.problem.times[(b, j)];
            la.total_cmp(&lb)
        });
        for i in choices {
            // Capacity pruning: usage only grows down a branch.
            if let Some(cap) = &self.problem.capacity {
                if self.cap_used[i] + cap.usage[(i, j)] > cap.limits[i] + 1e-9 {
                    continue;
                }
                self.cap_used[i] += cap.usage[(i, j)];
            }
            sums[i] += self.problem.times[(i, j)];
            counts[i] += 1.0;
            current.push(i);
            self.recurse(
                depth + 1,
                sums,
                counts,
                rel_acc + self.problem.reliability[(i, j)],
                current,
            );
            current.pop();
            counts[i] -= 1.0;
            sums[i] -= self.problem.times[(i, j)];
            if let Some(cap) = &self.problem.capacity {
                self.cap_used[i] -= cap.usage[(i, j)];
            }
            if self.truncated {
                return;
            }
        }
    }
}

/// Finds the makespan-optimal feasible assignment by branch-and-bound.
pub fn solve_exact(problem: &MatchingProblem, opts: &ExactOptions) -> ExactResult {
    let m = problem.clusters();
    let n = problem.tasks();
    assert!(m > 0, "need at least one cluster");
    if n == 0 {
        return ExactResult {
            assignment: Assignment::new(vec![]),
            feasible: true,
            optimal: true,
            nodes: 0,
        };
    }

    // Seed the incumbent with LPT (+ reliability repair + local search).
    let mut incumbent = greedy_lpt(problem);
    crate::rounding::repair_reliability(problem, &mut incumbent);
    crate::rounding::local_search(problem, &mut incumbent, 10);
    let incumbent_feasible = incumbent.is_feasible(problem);
    let incumbent_span = if incumbent_feasible {
        incumbent.makespan(problem)
    } else {
        f64::INFINITY
    };

    // Order tasks by decreasing minimum execution time (hardest first).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ta = problem
            .times
            .col(a)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let tb = problem
            .times
            .col(b)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        tb.total_cmp(&ta)
    });

    let floors: Vec<f64> = problem.speedup.iter().map(|&c| speedup_floor(c)).collect();
    let mut max_rel_suffix = vec![0.0; n + 1];
    let mut min_time_suffix = vec![0.0; n + 1];
    for k in (0..n).rev() {
        let j = order[k];
        let col_rel = problem.reliability.col(j);
        max_rel_suffix[k] = max_rel_suffix[k + 1] + col_rel.iter().cloned().fold(0.0, f64::max);
        let min_t = (0..m)
            .map(|i| floors[i] * problem.times[(i, j)])
            .fold(f64::INFINITY, f64::min);
        min_time_suffix[k] = min_time_suffix[k + 1] + min_t;
    }

    let mut search = Search {
        problem,
        cap_used: vec![0.0; m],
        order,
        max_rel_suffix,
        min_time_suffix,
        floors,
        needed_rel: problem.gamma * n as f64,
        best_span: incumbent_span,
        best: None,
        nodes: 0,
        node_limit: opts.node_limit,
        truncated: false,
    };
    let mut sums = vec![0.0; m];
    let mut counts = vec![0.0; m];
    let mut current = Vec::with_capacity(n);
    search.recurse(0, &mut sums, &mut counts, 0.0, &mut current);

    let assignment = match search.best {
        Some(by_depth) => {
            // Map depth-ordered choices back to task order.
            let mut cluster_of = vec![0usize; n];
            for (depth, &cluster) in by_depth.iter().enumerate() {
                cluster_of[search.order[depth]] = cluster;
            }
            Assignment::new(cluster_of)
        }
        None => incumbent,
    };
    let feasible = assignment.is_feasible(problem);
    ExactResult {
        feasible,
        optimal: !search.truncated && feasible,
        nodes: search.nodes,
        assignment,
    }
}

/// Brute-force enumeration (`m^n` assignments) — test oracle only.
///
/// Returns `None` both when no feasible assignment exists and when the
/// instance is too large to enumerate (`m^n` overflows `u64`).
pub fn solve_brute_force(problem: &MatchingProblem) -> Option<Assignment> {
    let m = problem.clusters();
    let n = problem.tasks();
    let total = (m as u64).checked_pow(n as u32)?;
    let mut best: Option<(f64, Assignment)> = None;
    for code in 0..total {
        let mut c = code;
        let mut cluster_of = Vec::with_capacity(n);
        for _ in 0..n {
            cluster_of.push((c % m as u64) as usize);
            c /= m as u64;
        }
        let asg = Assignment::new(cluster_of);
        if !asg.is_feasible(problem) {
            continue;
        }
        let span = asg.makespan(problem);
        if best.as_ref().is_none_or(|(s, _)| span < *s - 1e-15) {
            best = Some((span, asg));
        }
    }
    best.map(|(_, a)| a)
}

/// Convenience used by tests: the optimal feasible makespan, if any.
pub fn optimal_makespan(problem: &MatchingProblem) -> Option<f64> {
    solve_brute_force(problem).map(|a| a.makespan(problem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(
        seed: u64,
        m: usize,
        n: usize,
        gamma: f64,
        parallel: bool,
    ) -> MatchingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
        let speedup = if parallel {
            vec![SpeedupCurve::paper_parallel(); m]
        } else {
            vec![SpeedupCurve::None; m]
        };
        MatchingProblem::with_speedup(t, a, gamma, speedup)
    }

    #[test]
    fn bb_matches_brute_force_sequential() {
        for seed in 0..15 {
            let problem = random_problem(seed, 3, 6, 0.78, false);
            let bb = solve_exact(&problem, &ExactOptions::default());
            let bf = solve_brute_force(&problem);
            match bf {
                Some(opt) => {
                    assert!(bb.feasible, "seed {seed}: B&B missed feasibility");
                    assert!(
                        (bb.assignment.makespan(&problem) - opt.makespan(&problem)).abs() < 1e-9,
                        "seed {seed}: {} vs {}",
                        bb.assignment.makespan(&problem),
                        opt.makespan(&problem)
                    );
                }
                None => assert!(!bb.feasible, "seed {seed}"),
            }
        }
    }

    #[test]
    fn bb_matches_brute_force_parallel() {
        for seed in 100..110 {
            let problem = random_problem(seed, 3, 6, 0.75, true);
            let bb = solve_exact(&problem, &ExactOptions::default());
            if let Some(opt) = solve_brute_force(&problem) {
                assert!(bb.feasible);
                assert!(
                    (bb.assignment.makespan(&problem) - opt.makespan(&problem)).abs() < 1e-9,
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn bb_handles_paper_scale_quickly() {
        let problem = random_problem(7, 3, 25, 0.78, false);
        let result = solve_exact(&problem, &ExactOptions::default());
        assert!(result.optimal, "nodes = {}", result.nodes);
        assert!(result.feasible);
    }

    #[test]
    fn greedy_is_reasonable() {
        let problem = random_problem(3, 3, 10, 0.0, false);
        let greedy = greedy_lpt(&problem);
        let exact = solve_exact(&problem, &ExactOptions::default());
        let ratio = greedy.makespan(&problem) / exact.assignment.makespan(&problem);
        assert!(
            ratio < 2.0,
            "LPT should be within 2x of optimal, got {ratio}"
        );
    }

    #[test]
    fn infeasible_instance_flagged() {
        let t = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let a = Matrix::from_rows(&[&[0.5], &[0.6]]);
        let problem = MatchingProblem::new(t, a, 0.99);
        let result = solve_exact(&problem, &ExactOptions::default());
        assert!(!result.feasible);
        assert!(!result.optimal);
    }

    #[test]
    fn empty_instance() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let result = solve_exact(&problem, &ExactOptions::default());
        assert!(result.optimal);
        assert_eq!(result.assignment.tasks(), 0);
    }

    #[test]
    fn node_limit_respected() {
        let problem = random_problem(11, 4, 14, 0.75, false);
        let result = solve_exact(&problem, &ExactOptions { node_limit: 50 });
        assert!(result.nodes <= 51);
        // Still returns a usable (greedy) assignment.
        assert_eq!(result.assignment.tasks(), 14);
    }

    #[test]
    fn single_cluster_trivial() {
        let problem = random_problem(13, 1, 5, 0.0, false);
        let result = solve_exact(&problem, &ExactOptions::default());
        assert!(result.optimal);
        assert_eq!(result.assignment.cluster_of, vec![0; 5]);
    }
}
