//! Warm-start solve cache: fingerprinted reuse of previous optima.
//!
//! Training re-solves a nearly identical matching problem for every
//! sample, every round, and every zeroth-order perturbation — always
//! from the uniform simplex point, which is the single hottest path in
//! the pipeline. Matching solvers warm-started from a previous optimum
//! (Dinitz et al. 2021, "Faster Matchings via Learned Duals") converge
//! in a fraction of the iterations because the iterate starts inside the
//! basin of the new optimum instead of at maximum entropy.
//!
//! [`WarmStartCache`] stores, per problem [`fingerprint`], the last
//! relaxed assignment, the per-task simplex duals estimated at that
//! point, and — for the convex KKT path — the symbolic structure of the
//! factorization ([`KktStructure`]), so [`crate::RobustSolver`] and the
//! training loop can seed PGD from the previous round's optimum.
//!
//! Entries are validated on every lookup (shape, finiteness, column
//! stochasticity, dual finiteness, and a generation-based staleness
//! bound); anything suspect is evicted and reported as
//! [`CacheOutcome::Stale`], so a poisoned entry can cost at most one
//! cold solve — never a wrong answer. Lookups bump the `cache.hit` /
//! `cache.miss` / `cache.stale` counters and emit flight-recorder
//! instants keyed by the fingerprint.

use std::collections::HashMap;
use std::fmt;

use crate::kkt::KktWorkspace;
use crate::objective::{BarrierKind, CostKind, RelaxationParams};
use crate::problem::MatchingProblem;
use crate::solver::is_column_stochastic;
use crate::speedup::SpeedupCurve;
use mfcp_linalg::Matrix;

/// Column-stochasticity tolerance applied when validating cached
/// iterates (matches the health tolerance in [`crate::recovery`]).
const SIMPLEX_TOL: f64 = 1e-6;

/// Interior blend weight used by [`warm_init`].
///
/// Kept tiny on purpose: the blend is itself a perturbation the solver
/// must then contract below its step-change tolerance, so a large blend
/// caps the warm-start savings no matter how good the seed is (a 1e-3
/// blend forces ~7 decades of geometric decay at tol 1e-10). 1e-9 is
/// enough to keep every coordinate strictly positive — multiplicative
/// mirror-descent updates recover a wrongly-collapsed coordinate from
/// `1e-9/m` in a few dozen iterations — while a near-exact seed still
/// stops almost immediately.
const INTERIOR_BLEND: f64 = 1e-9;

/// Structural fingerprint of a problem instance plus its relaxation
/// parameters: cluster count, task count, reliability threshold, speedup
/// curves, capacity limits, and every [`RelaxationParams`] knob, hashed
/// with FNV-1a.
///
/// The fingerprint is deliberately *structural* — it does not hash the
/// time/reliability matrices. Successive training rounds solve problems
/// with the same structure but slightly different data, and those are
/// exactly the instances a previous optimum is a good seed for. Two
/// problems with different structure (or parameters) never share an
/// entry.
pub fn fingerprint(problem: &MatchingProblem, params: &RelaxationParams) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(problem.clusters() as u64);
    h.write_u64(problem.tasks() as u64);
    h.write_u64(problem.gamma.to_bits());
    for curve in &problem.speedup {
        match curve {
            SpeedupCurve::None => h.write_u64(1),
            SpeedupCurve::ExpDecay { floor, rate } => {
                h.write_u64(2);
                h.write_u64(floor.to_bits());
                h.write_u64(rate.to_bits());
            }
        }
    }
    match &problem.capacity {
        None => h.write_u64(0),
        Some(cap) => {
            h.write_u64(3);
            h.write_u64(cap.limits.len() as u64);
            for limit in &cap.limits {
                h.write_u64(limit.to_bits());
            }
        }
    }
    h.write_u64(params.beta.to_bits());
    h.write_u64(params.lambda.to_bits());
    h.write_u64(params.rho.to_bits());
    match params.barrier {
        BarrierKind::Log { eps } => {
            h.write_u64(4);
            h.write_u64(eps.to_bits());
        }
        BarrierKind::HardPenalty => h.write_u64(5),
        BarrierKind::None => h.write_u64(6),
    }
    match params.cost {
        CostKind::SmoothMax => h.write_u64(7),
        CostKind::LinearSum => h.write_u64(8),
    }
    h.finish()
}

/// FNV-1a, 64-bit. Hand-rolled because the build environment vendors no
/// hashing crate and `DefaultHasher` is not stable across releases —
/// fingerprints may end up in serialized perf artifacts.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Symbolic shape of the KKT factorization for one problem size, plus
/// the numeric factorization buffers that go with it.
///
/// The "symbolic analysis" of the KKT system in [`crate::kkt`] reduces
/// to the dimensions; caching them lets a warm entry be pre-validated
/// against the problem size before any numeric work. The entry also
/// carries the [`KktWorkspace`] used by the previous solve, so a warm
/// hit reuses the structured-elimination storage (`Σ⁻¹`, the low-rank
/// blocks, the Schur Cholesky, and the dense-fallback LU) instead of
/// reallocating it.
///
/// Equality compares the symbolic dimensions only — the numeric buffers
/// are transient state, not identity.
#[derive(Debug, Clone)]
pub struct KktStructure {
    /// Total system dimension `m·n + n`.
    pub dim: usize,
    /// Number of primal variables `m·n`.
    pub mn: usize,
    /// Number of per-task simplex constraints `n`.
    pub n: usize,
    /// Numeric factorization buffers from the last solve at this shape.
    pub workspace: KktWorkspace,
}

impl PartialEq for KktStructure {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.mn == other.mn && self.n == other.n
    }
}

impl Eq for KktStructure {}

impl KktStructure {
    /// The symbolic structure for an `m × n` problem, with fresh (empty)
    /// numeric buffers.
    pub fn for_shape(m: usize, n: usize) -> Self {
        KktStructure {
            dim: m * n + n,
            mn: m * n,
            n,
            workspace: KktWorkspace::default(),
        }
    }

    /// Whether this structure matches an `m × n` problem.
    pub fn matches(&self, m: usize, n: usize) -> bool {
        self.dim == m * n + n && self.mn == m * n && self.n == n
    }
}

/// One cached optimum, keyed by [`fingerprint`] in [`WarmStartCache`].
///
/// Every field is public so tests can inject poisoned state (NaN duals,
/// wrong-dimension assignments) and assert the validating lookup evicts
/// it instead of feeding it to a solver.
#[derive(Debug, Clone)]
pub struct WarmStartEntry {
    /// Last relaxed assignment (columns on the probability simplex).
    pub x: Matrix,
    /// Objective value at `x` when the entry was stored.
    pub objective: f64,
    /// Per-task simplex duals `ν_j = min_i ∂F/∂x_ij` estimated at `x`.
    /// At an interior optimum of the entropic relaxation the gradient is
    /// constant across the support of each column, so the column minimum
    /// recovers the stationarity multiplier of the simplex constraint.
    pub duals: Vec<f64>,
    /// Symbolic KKT structure; present only when the problem was convex
    /// (the only setting the Newton/KKT path accepts).
    pub kkt: Option<KktStructure>,
    /// Cache generation at which the entry was stored (set by
    /// [`WarmStartCache::store`]; see
    /// [`WarmStartCache::advance_generation`]).
    pub stored_at: u64,
}

impl WarmStartEntry {
    /// Builds an entry from a solved optimum `x` of `problem`.
    pub fn from_solution(
        problem: &MatchingProblem,
        params: &RelaxationParams,
        x: &Matrix,
        objective: f64,
    ) -> Self {
        let (m, n) = (problem.clusters(), problem.tasks());
        let duals = crate::learned::column_duals(problem, params, x);
        let convex = problem.speedup.iter().all(|c| c.is_trivial());
        WarmStartEntry {
            x: x.clone(),
            objective,
            duals,
            kkt: convex.then(|| KktStructure::for_shape(m, n)),
            stored_at: 0,
        }
    }
}

/// What a [`WarmStartCache::lookup`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A valid entry was found and its assignment returned.
    Hit,
    /// No entry existed for the fingerprint.
    Miss,
    /// An entry existed but failed validation (or a warm attempt later
    /// diverged) and was evicted; the solve ran cold.
    Stale,
    /// No usable entry existed, but a [`crate::learned::DualPredictor`]
    /// supplied a repaired seed and the predicted-seed rung converged
    /// (see [`crate::RobustSolver::solve_with_predictor`]). Ordered
    /// behind exact hits: a valid cached optimum always beats a model
    /// guess.
    Predicted,
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Stale => "stale",
            CacheOutcome::Predicted => "predicted",
        })
    }
}

/// Lifetime lookup statistics for one [`WarmStartCache`]. These mirror
/// the process-wide `cache.hit` / `cache.miss` / `cache.stale` counters
/// but are local to the cache instance, so tests can assert on them
/// without coordinating over the global registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries at the moment [`WarmStartCache::stats`] was called.
    pub entries: usize,
    /// Lookups that returned a valid warm start.
    pub hits: u64,
    /// Lookups with no entry under the fingerprint.
    pub misses: u64,
    /// Entries evicted as stale or poisoned, plus warm attempts that
    /// diverged and fell back to cold.
    pub stale: u64,
    /// Entries displaced by the capacity bound
    /// ([`WarmStartConfig::max_entries`]), as opposed to staleness or
    /// poisoning. A daemon watching this climb knows its working set no
    /// longer fits the cache.
    pub evicted: u64,
}

/// Tuning knobs for [`WarmStartCache`].
#[derive(Debug, Clone, Copy)]
pub struct WarmStartConfig {
    /// Staleness bound: the maximum number of generations an entry may
    /// age before a lookup evicts it. One generation is one call to
    /// [`WarmStartCache::advance_generation`] (training advances once
    /// per round).
    pub max_age: u64,
    /// Maximum entries kept; storing beyond this evicts the oldest
    /// entry (ties broken by smallest key, so eviction is
    /// deterministic).
    pub max_entries: usize,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        WarmStartConfig {
            max_age: 8,
            max_entries: 64,
        }
    }
}

/// Fingerprint-keyed store of previous optima used to warm-start
/// subsequent solves.
///
/// ```
/// use mfcp_linalg::Matrix;
/// use mfcp_optim::cache::WarmStartCache;
/// use mfcp_optim::{MatchingProblem, RelaxationParams};
///
/// let times = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
/// let rel = Matrix::filled(2, 2, 0.9);
/// let problem = MatchingProblem::new(times, rel, 0.8);
/// let solver = mfcp_optim::RobustSolver::new(RelaxationParams::default());
///
/// let mut cache = WarmStartCache::new();
/// let cold = solver.solve_with_cache(&problem, &mut cache).unwrap();
/// let warm = solver.solve_with_cache(&problem, &mut cache).unwrap();
/// assert!((cold.objective - warm.objective).abs() < 1e-8);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct WarmStartCache {
    config: WarmStartConfig,
    entries: HashMap<u64, WarmStartEntry>,
    generation: u64,
    stats: CacheStats,
}

impl Default for WarmStartCache {
    fn default() -> Self {
        WarmStartCache::new()
    }
}

impl WarmStartCache {
    /// An empty cache with the default configuration.
    pub fn new() -> Self {
        WarmStartCache::with_config(WarmStartConfig::default())
    }

    /// An empty cache with an explicit configuration.
    pub fn with_config(config: WarmStartConfig) -> Self {
        WarmStartCache {
            config,
            entries: HashMap::new(),
            generation: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> WarmStartConfig {
        self.config
    }

    /// Lifetime lookup/eviction statistics plus the current entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            ..self.stats
        }
    }

    /// Advances the staleness clock by one generation. Call once per
    /// solving round; entries older than
    /// [`WarmStartConfig::max_age`] generations are evicted on lookup.
    pub fn advance_generation(&mut self) {
        self.generation += 1;
    }

    /// Sets the generation clock directly. Exists for snapshot restore
    /// (a resumed daemon must continue the exact clock it was killed
    /// at, or entry ages — and thus staleness evictions — would differ
    /// from an uninterrupted run).
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Entries in ascending key order — a deterministic view for
    /// serialization (the underlying `HashMap` iteration order is not).
    pub fn entries_sorted(&self) -> Vec<(u64, &WarmStartEntry)> {
        let mut all: Vec<_> = self.entries.iter().map(|(k, e)| (*k, e)).collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }

    /// Inserts `entry` preserving its `stored_at` stamp (unlike
    /// [`WarmStartCache::store`], which stamps the current generation).
    /// Exists for snapshot restore; still enforces the capacity bound.
    pub fn insert_preserving_age(&mut self, key: u64, entry: WarmStartEntry) {
        let stamp = entry.stored_at;
        self.store(key, entry);
        if let Some(e) = self.entries.get_mut(&key) {
            e.stored_at = stamp;
        }
    }

    /// Looks up the entry under `key` for an `m × n` problem.
    ///
    /// Returns the outcome plus the cached assignment on a hit. An entry
    /// that fails validation — wrong shape, non-finite values, columns
    /// off the simplex, mis-sized, non-finite, or out-of-scale duals
    /// (the [`crate::learned::duals_admissible`] gate shared with the
    /// prediction repair kernel), mismatched KKT structure, or age
    /// beyond the staleness bound — is evicted and reported as
    /// [`CacheOutcome::Stale`].
    pub fn lookup(&mut self, key: u64, m: usize, n: usize) -> (CacheOutcome, Option<Matrix>) {
        let verdict = self.entries.get(&key).map(|entry| {
            let age = self.generation.saturating_sub(entry.stored_at);
            let valid = age <= self.config.max_age
                && validate_warm(&entry.x, m, n)
                && entry.objective.is_finite()
                && crate::learned::duals_admissible(&entry.duals, n)
                && entry.kkt.as_ref().is_none_or(|k| k.matches(m, n));
            valid.then(|| entry.x.clone())
        });
        match verdict {
            None => {
                self.stats.misses += 1;
                mfcp_obs::counter("cache.miss").inc();
                mfcp_obs::trace::instant("cache.miss", Some(key));
                (CacheOutcome::Miss, None)
            }
            Some(None) => {
                self.note_stale(key);
                (CacheOutcome::Stale, None)
            }
            Some(Some(x)) => {
                self.stats.hits += 1;
                mfcp_obs::counter("cache.hit").inc();
                mfcp_obs::trace::instant("cache.hit", Some(key));
                (CacheOutcome::Hit, Some(x))
            }
        }
    }

    /// Records a stale or diverged warm start: evicts the entry (so the
    /// next lookup misses instead of retrying it), bumps the
    /// `cache.stale` counter, and emits a flight-recorder instant.
    pub fn note_stale(&mut self, key: u64) {
        self.entries.remove(&key);
        self.stats.stale += 1;
        mfcp_obs::counter("cache.stale").inc();
        mfcp_obs::trace::instant("cache.stale", Some(key));
    }

    /// Stores `entry` under `key`, stamping it with the current
    /// generation. Evicts oldest entries (deterministically) when the
    /// cache exceeds [`WarmStartConfig::max_entries`].
    pub fn store(&mut self, key: u64, mut entry: WarmStartEntry) {
        entry.stored_at = self.generation;
        self.entries.insert(key, entry);
        while self.entries.len() > self.config.max_entries.max(1) {
            let victim = self
                .entries
                .iter()
                .map(|(k, e)| (e.stored_at, *k))
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.stats.evicted += 1;
                    mfcp_obs::counter("cache.evicted").inc();
                    mfcp_obs::trace::instant("cache.evicted", Some(k));
                }
                None => break,
            }
        }
    }

    /// Mutable access to the entry under `key`, for tests that poison
    /// cached state.
    pub fn entry_mut(&mut self, key: u64) -> Option<&mut WarmStartEntry> {
        self.entries.get_mut(&key)
    }

    /// Takes the numeric KKT workspace out of the entry under `key`,
    /// leaving empty buffers behind. The solver threads the workspace
    /// through the solve and hands it back via
    /// [`WarmStartCache::restore_kkt_workspace`], so repeated solves of
    /// the same problem reuse factorization storage across calls.
    pub fn take_kkt_workspace(&mut self, key: u64) -> Option<KktWorkspace> {
        self.entries
            .get_mut(&key)
            .and_then(|entry| entry.kkt.as_mut())
            .map(|kkt| std::mem::take(&mut kkt.workspace))
    }

    /// Moves `workspace` into the entry under `key` (a no-op when the
    /// entry is gone or carries no KKT structure, e.g. for non-convex
    /// problems whose solutions skip the structure entirely).
    pub fn restore_kkt_workspace(&mut self, key: u64, workspace: KktWorkspace) {
        if let Some(kkt) = self
            .entries
            .get_mut(&key)
            .and_then(|entry| entry.kkt.as_mut())
        {
            kkt.workspace = workspace;
        }
    }
}

/// Whether `x` is usable as a warm start for an `m × n` problem: right
/// shape, every entry finite, and columns on the simplex within the
/// shared tolerance.
pub fn validate_warm(x: &Matrix, m: usize, n: usize) -> bool {
    x.shape() == (m, n)
        && x.as_slice().iter().all(|v| v.is_finite())
        && is_column_stochastic(x, SIMPLEX_TOL)
}

/// Blends a cached optimum toward the uniform interior point.
///
/// Mirror-descent updates are multiplicative, so an exact zero in the
/// starting point stays zero forever; blending
/// `(1 − τ)·x + τ·uniform` with `τ =` [`INTERIOR_BLEND`] keeps every
/// coordinate strictly positive (and the columns exactly stochastic)
/// while staying within `O(τ)` of the cached optimum.
pub fn warm_init(x: &Matrix) -> Matrix {
    let (m, n) = x.shape();
    let u = 1.0 / m.max(1) as f64;
    Matrix::from_fn(m, n, |i, j| {
        (1.0 - INTERIOR_BLEND) * x[(i, j)] + INTERIOR_BLEND * u
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective;
    use crate::problem::CapacityConstraint;

    fn problem(m: usize, n: usize) -> MatchingProblem {
        let t = Matrix::from_fn(m, n, |i, j| 1.0 + 0.3 * i as f64 + 0.1 * j as f64);
        let a = Matrix::filled(m, n, 0.9);
        MatchingProblem::new(t, a, 0.8)
    }

    fn entry_for(p: &MatchingProblem, params: &RelaxationParams) -> WarmStartEntry {
        let x = crate::solver::uniform_init(p.clusters(), p.tasks());
        let obj = objective::value(p, params, &x);
        WarmStartEntry::from_solution(p, params, &x, obj)
    }

    #[test]
    fn fingerprint_is_structural() {
        let params = RelaxationParams::default();
        let p = problem(3, 5);
        let key = fingerprint(&p, &params);
        // Same structure, different data: same key.
        let p2 = p.clone().with_time_row(0, &[9.0, 9.0, 9.0, 9.0, 9.0]);
        assert_eq!(key, fingerprint(&p2, &params));
        // Different task count, gamma, params, speedup, capacity: new key.
        assert_ne!(key, fingerprint(&problem(3, 4), &params));
        let mut p3 = p.clone();
        p3.gamma = 0.9;
        assert_ne!(key, fingerprint(&p3, &params));
        let softer = RelaxationParams { rho: 0.5, ..params };
        assert_ne!(key, fingerprint(&p, &softer));
        let mut p4 = p.clone();
        p4.speedup = vec![SpeedupCurve::paper_parallel(); 3];
        assert_ne!(key, fingerprint(&p4, &params));
        let p5 = p.clone().with_capacity(CapacityConstraint {
            usage: Matrix::filled(3, 5, 1.0),
            limits: vec![10.0; 3],
        });
        assert_ne!(key, fingerprint(&p5, &params));
    }

    #[test]
    fn lookup_hits_after_store_and_misses_before() {
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let key = fingerprint(&p, &params);
        let mut cache = WarmStartCache::new();
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Miss);
        cache.store(key, entry_for(&p, &params));
        let (outcome, x) = cache.lookup(key, 2, 3);
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(x.expect("hit returns the assignment").shape(), (2, 3));
        assert_eq!(
            cache.stats(),
            CacheStats {
                entries: 1,
                hits: 1,
                misses: 1,
                stale: 0,
                evicted: 0,
            }
        );
    }

    #[test]
    fn staleness_bound_evicts_old_entries() {
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let key = fingerprint(&p, &params);
        let mut cache = WarmStartCache::with_config(WarmStartConfig {
            max_age: 2,
            max_entries: 64,
        });
        cache.store(key, entry_for(&p, &params));
        cache.advance_generation();
        cache.advance_generation();
        assert_eq!(
            cache.lookup(key, 2, 3).0,
            CacheOutcome::Hit,
            "age 2 <= bound"
        );
        cache.advance_generation();
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Stale);
        // Evicted: the next lookup is a clean miss.
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Miss);
        assert_eq!(cache.stats().stale, 1);
    }

    #[test]
    fn poisoned_entries_are_stale_not_panics() {
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let key = fingerprint(&p, &params);

        // NaN duals.
        let mut cache = WarmStartCache::new();
        cache.store(key, entry_for(&p, &params));
        cache.entry_mut(key).unwrap().duals[0] = f64::NAN;
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Stale);

        // Wrong-dimension assignment.
        let mut cache = WarmStartCache::new();
        let mut bad = entry_for(&p, &params);
        bad.x = Matrix::filled(1, 1, 1.0);
        cache.store(key, bad);
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Stale);

        // Non-finite assignment values.
        let mut cache = WarmStartCache::new();
        cache.store(key, entry_for(&p, &params));
        cache.entry_mut(key).unwrap().x[(0, 0)] = f64::NAN;
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Stale);

        // Columns off the simplex.
        let mut cache = WarmStartCache::new();
        cache.store(key, entry_for(&p, &params));
        cache.entry_mut(key).unwrap().x[(0, 0)] = 0.9;
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Stale);
    }

    #[test]
    fn eviction_keeps_cache_bounded_and_deterministic() {
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let mut cache = WarmStartCache::with_config(WarmStartConfig {
            max_age: 8,
            max_entries: 2,
        });
        cache.store(1, entry_for(&p, &params));
        cache.advance_generation();
        cache.store(2, entry_for(&p, &params));
        cache.advance_generation();
        cache.store(3, entry_for(&p, &params));
        assert_eq!(cache.len(), 2);
        // The oldest entry (key 1, generation 0) was evicted.
        assert_eq!(cache.lookup(1, 2, 3).0, CacheOutcome::Miss);
        assert_eq!(cache.lookup(2, 2, 3).0, CacheOutcome::Hit);
        assert_eq!(cache.lookup(3, 2, 3).0, CacheOutcome::Hit);
    }

    #[test]
    fn stats_distinguish_capacity_evictions_from_staleness() {
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let mut cache = WarmStartCache::with_config(WarmStartConfig {
            max_age: 8,
            max_entries: 2,
        });
        cache.store(1, entry_for(&p, &params));
        cache.store(2, entry_for(&p, &params));
        assert_eq!(cache.stats().evicted, 0);
        cache.store(3, entry_for(&p, &params));
        cache.store(4, entry_for(&p, &params));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evicted, 2, "two capacity displacements");
        assert_eq!(stats.stale, 0, "capacity evictions are not staleness");

        // A poisoned entry goes through the stale path, not evicted.
        cache.entry_mut(4).unwrap().x[(0, 0)] = f64::NAN;
        assert_eq!(cache.lookup(4, 2, 3).0, CacheOutcome::Stale);
        let stats = cache.stats();
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.evicted, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn out_of_scale_duals_are_stale_not_warm() {
        // Regression: validation used to accept any finite dual vector of
        // the right length, so a ×1e6-scaled (but finite) dual survived
        // lookup. The shared `duals_admissible` gate now bounds the
        // magnitude exactly like the prediction repair kernel.
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let key = fingerprint(&p, &params);
        let mut cache = WarmStartCache::new();
        cache.store(key, entry_for(&p, &params));
        cache.entry_mut(key).unwrap().duals[1] = 1.0e9;
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Stale);
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Miss, "evicted");
        assert_eq!(cache.stats().stale, 1);
    }

    #[test]
    fn age_bound_expiry_exactly_at_max_age() {
        // Default config: an entry is warm at age == max_age and expires
        // one generation later; re-storing resets the clock.
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let key = fingerprint(&p, &params);
        let mut cache = WarmStartCache::new();
        let max_age = cache.config().max_age;
        cache.store(key, entry_for(&p, &params));
        for _ in 0..max_age {
            cache.advance_generation();
        }
        assert_eq!(
            cache.lookup(key, 2, 3).0,
            CacheOutcome::Hit,
            "age == max_age is still warm"
        );
        cache.advance_generation();
        assert_eq!(
            cache.lookup(key, 2, 3).0,
            CacheOutcome::Stale,
            "age == max_age + 1 expires"
        );
        // A fresh store at the current generation is warm again.
        cache.store(key, entry_for(&p, &params));
        for _ in 0..max_age {
            cache.advance_generation();
        }
        assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Hit);
    }

    #[test]
    fn generation_eviction_under_capacity_pressure() {
        // Sustained stores across generations keep the cache at the
        // capacity bound and always displace the oldest generation,
        // with ties broken by the smallest key.
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let mut cache = WarmStartCache::with_config(WarmStartConfig {
            max_age: 64,
            max_entries: 3,
        });
        for key in 0..8u64 {
            cache.store(key, entry_for(&p, &params));
            cache.advance_generation();
            assert!(cache.len() <= 3);
        }
        assert_eq!(cache.len(), 3);
        // Only the three youngest survive.
        for key in 0..5u64 {
            assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Miss, "key {key}");
        }
        for key in 5..8u64 {
            assert_eq!(cache.lookup(key, 2, 3).0, CacheOutcome::Hit, "key {key}");
        }
        assert_eq!(cache.stats().evicted, 5);

        // Same-generation tie: the smallest key is the deterministic
        // victim.
        let mut cache = WarmStartCache::with_config(WarmStartConfig {
            max_age: 64,
            max_entries: 2,
        });
        cache.store(10, entry_for(&p, &params));
        cache.store(7, entry_for(&p, &params));
        cache.store(9, entry_for(&p, &params));
        assert_eq!(cache.lookup(7, 2, 3).0, CacheOutcome::Miss);
        assert_eq!(cache.lookup(9, 2, 3).0, CacheOutcome::Hit);
        assert_eq!(cache.lookup(10, 2, 3).0, CacheOutcome::Hit);
    }

    #[test]
    fn evictions_counter_is_monotone() {
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let mut cache = WarmStartCache::with_config(WarmStartConfig {
            max_age: 2,
            max_entries: 2,
        });
        let mut last = 0;
        for key in 0..10u64 {
            cache.store(key, entry_for(&p, &params));
            let evicted = cache.stats().evicted;
            assert!(evicted >= last, "evictions counter must never decrease");
            last = evicted;
        }
        assert_eq!(last, 8, "every store beyond capacity displaced one entry");
        // Stale evictions and hits leave the capacity-eviction counter
        // untouched.
        cache.advance_generation();
        cache.advance_generation();
        cache.advance_generation();
        assert_eq!(cache.lookup(9, 2, 3).0, CacheOutcome::Stale);
        assert_eq!(cache.stats().evicted, last);
        cache.store(11, entry_for(&p, &params));
        assert_eq!(cache.lookup(11, 2, 3).0, CacheOutcome::Hit);
        assert_eq!(cache.stats().evicted, last);
    }

    #[test]
    fn warm_init_is_interior_and_close() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let w = warm_init(&x);
        assert!(w.as_slice().iter().all(|&v| v > 0.0));
        assert!(is_column_stochastic(&w, 1e-12));
        for (a, b) in x.as_slice().iter().zip(w.as_slice()) {
            assert!((a - b).abs() < 2e-3);
        }
    }

    #[test]
    fn duals_are_finite_at_interior_points() {
        let params = RelaxationParams::default();
        let p = problem(3, 4);
        let entry = entry_for(&p, &params);
        assert_eq!(entry.duals.len(), 4);
        assert!(entry.duals.iter().all(|d| d.is_finite()));
        assert_eq!(entry.kkt, Some(KktStructure::for_shape(3, 4)));
    }
}
