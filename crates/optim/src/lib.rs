//! The relaxed cluster–task matching layer of MFCP.
//!
//! This crate implements §2 and §3.2–§3.4 of the paper:
//!
//! * [`MatchingProblem`] — the integer program of Eq. (2): assign each of
//!   `N` deep-learning tasks to one of `M` clusters, minimizing the
//!   makespan `max_i ζ_i(n_i)·xᵢᵀtᵢ` (Eq. 3 / Eq. 16) subject to the
//!   platform-wide reliability constraint `g(X, A) ≥ 0` (Eq. 4).
//! * [`objective`] — the continuous relaxation: log-sum-exp smoothing of
//!   the max (Eq. 8, Theorem 1), the logarithmic interior-point barrier
//!   (Eq. 9), the hard-penalty ablation (Table 1 row 2), the linear-cost
//!   ablation (Table 1 row 1), and an entropy regularizer that makes the
//!   relaxed optimum unique and interior (a standard DFL device; see
//!   DESIGN.md).
//! * [`solver`] — Algorithm 1: projected gradient descent over the product
//!   of per-task simplices, with mirror-descent (exponentiated-gradient),
//!   literal-paper-softmax and Euclidean projections.
//! * [`rounding`] — deployment-time rounding of the relaxed solution plus
//!   reliability repair and local search (§3.2: "rounded to produce
//!   discrete solutions").
//! * [`exact`] — a branch-and-bound solver for small instances, used as
//!   ground truth in tests and benches.
//! * [`kkt`] — implicit differentiation of the optimum through the KKT
//!   stationarity system (Eq. 14–15), the MFCP-AD gradient path.
//! * [`zeroth`] — the zeroth-order forward-gradient estimator of
//!   Algorithm 2 (lines 5–11), the MFCP-FG gradient path.
//! * [`recovery`] — fault-tolerant solving: health-guarded solver runs
//!   with a fallback ladder (backed-off parameters → Newton → PGD
//!   variants → greedy rounding) and per-stage diagnostics.
//! * [`sharded`] — parallel sharded solving of large instances: task
//!   columns are partitioned across a thread pool and coordinated
//!   through the shared reliability/capacity coupling by a damped-Jacobi
//!   scheme with a global line search (see DESIGN.md, "Blocked kernels
//!   and sharded solves").
//! * [`cache`] — a fingerprint-keyed warm-start cache: successive solves
//!   of structurally identical problems seed PGD from the previous
//!   optimum instead of the uniform simplex point (see DESIGN.md,
//!   "Warm-start cache and batched solving").
//! * [`learned`] — learned dual predictions for *unseen* instances: a
//!   small `mfcp-nn` head maps structure-only problem features to
//!   per-column duals and a primal seed, with instance-robust
//!   feasibility repair before the seed reaches the ladder (see
//!   DESIGN.md, "Learned duals and instance-robust repair").
//! * [`budget`] — per-request deadlines and cooperative cancellation,
//!   checked on every guarded iterate so an online daemon can bound the
//!   latency of a single matching solve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod exact;
pub mod kkt;
pub mod learned;
pub mod objective;
pub mod problem;
pub mod recovery;
pub mod rounding;
pub mod sharded;
pub mod solver;
pub mod speedup;
pub mod zeroth;

pub use budget::{Budget, CancelToken};
pub use cache::{
    CacheOutcome, CacheStats, KktStructure, WarmStartCache, WarmStartConfig, WarmStartEntry,
};
pub use kkt::{KktGradients, KktWorkspace};
pub use learned::{DualPrediction, DualPredictor, LearnedDualHead, RepairError};
pub use objective::{BarrierKind, CostKind, RelaxationParams};
pub use problem::{Assignment, CapacityConstraint, MatchingProblem};
pub use recovery::{
    BackoffSchedule, FallbackStage, HealthPolicy, PredictionOutcome, RobustSolution, RobustSolver,
    SolveDiagnostics, SolveError, StageAttempt, StageOutcome,
};
pub use sharded::{ShardedOptions, ShardedSolver};
pub use solver::{NewtonOptions, PgdWorkspace, ProjectionKind, RelaxedSolution, SolverOptions};
pub use speedup::SpeedupCurve;
