//! The cluster–task matching problem (paper Eq. 2) and discrete solutions.

use crate::speedup::SpeedupCurve;
use mfcp_linalg::Matrix;

/// Optional per-cluster resource-capacity constraints (an extension
/// beyond the paper's single platform-wide reliability constraint):
/// cluster `i` can host at most `limits[i]` units of aggregate resource,
/// with task `j` consuming `usage[(i, j)]` units when placed there
/// (typically accelerator memory).
#[derive(Debug, Clone)]
pub struct CapacityConstraint {
    /// `M x N` per-placement resource usage `u_ij ≥ 0`.
    pub usage: Matrix,
    /// Per-cluster limits (length `M`, strictly positive).
    pub limits: Vec<f64>,
}

impl CapacityConstraint {
    /// Validates shapes and positivity.
    pub fn new(usage: Matrix, limits: Vec<f64>) -> Self {
        assert_eq!(usage.rows(), limits.len(), "one limit per cluster");
        assert!(usage.as_slice().iter().all(|&u| u >= 0.0 && u.is_finite()));
        assert!(limits.iter().all(|&c| c > 0.0 && c.is_finite()));
        CapacityConstraint { usage, limits }
    }

    /// Normalized slack of cluster `i` under relaxed matching `x`:
    /// `(limit_i − Σ_j x_ij u_ij) / limit_i`.
    pub fn slack(&self, x: &Matrix, i: usize) -> f64 {
        let used: f64 = (0..x.cols()).map(|j| x[(i, j)] * self.usage[(i, j)]).sum();
        (self.limits[i] - used) / self.limits[i]
    }
}

/// An instance of the matching problem: `M` clusters × `N` tasks.
///
/// `times[(i, j)]` is the execution time of task `j` on cluster `i`
/// (`t_ij`), `reliability[(i, j)]` the probability that task `j` completes
/// successfully on cluster `i` (`a_ij`). `gamma` is the platform-wide
/// reliability threshold of Eq. (4); `speedup[i]` is cluster `i`'s
/// parallel-execution time-adjustment curve `ζ_i` (Eq. 16) — use
/// [`SpeedupCurve::None`] for the sequential-execution setting of Eq. (3).
#[derive(Debug, Clone)]
pub struct MatchingProblem {
    /// `M x N` execution-time matrix `T`.
    pub times: Matrix,
    /// `M x N` reliability matrix `A`, entries in `[0, 1]`.
    pub reliability: Matrix,
    /// Reliability threshold `γ`.
    pub gamma: f64,
    /// Per-cluster speedup curves `ζ_i` (length `M`).
    pub speedup: Vec<SpeedupCurve>,
    /// Optional per-cluster capacity constraints.
    pub capacity: Option<CapacityConstraint>,
}

impl MatchingProblem {
    /// Builds a sequential-execution instance (`ζ_i ≡ 1`).
    ///
    /// # Panics
    /// Panics if the matrices disagree in shape or reliabilities leave
    /// `[0, 1]`.
    pub fn new(times: Matrix, reliability: Matrix, gamma: f64) -> Self {
        let m = times.rows();
        Self::with_speedup(times, reliability, gamma, vec![SpeedupCurve::None; m])
    }

    /// Builds an instance with explicit speedup curves.
    pub fn with_speedup(
        times: Matrix,
        reliability: Matrix,
        gamma: f64,
        speedup: Vec<SpeedupCurve>,
    ) -> Self {
        assert_eq!(
            times.shape(),
            reliability.shape(),
            "times/reliability shape mismatch"
        );
        assert_eq!(speedup.len(), times.rows(), "one speedup curve per cluster");
        assert!(
            reliability
                .as_slice()
                .iter()
                .all(|&a| (0.0..=1.0).contains(&a)),
            "reliabilities must lie in [0, 1]"
        );
        assert!(times.as_slice().iter().all(|&t| t >= 0.0 && t.is_finite()));
        MatchingProblem {
            times,
            reliability,
            gamma,
            speedup,
            capacity: None,
        }
    }

    /// Attaches per-cluster capacity constraints.
    ///
    /// # Panics
    /// Panics if the constraint shape does not match the problem.
    pub fn with_capacity(mut self, capacity: CapacityConstraint) -> Self {
        assert_eq!(capacity.usage.shape(), self.times.shape());
        self.capacity = Some(capacity);
        self
    }

    /// Number of clusters `M`.
    pub fn clusters(&self) -> usize {
        self.times.rows()
    }

    /// Number of tasks `N`.
    pub fn tasks(&self) -> usize {
        self.times.cols()
    }

    /// Replaces row `i` of the time matrix (used when splicing one
    /// cluster's *predicted* performance into otherwise-true matrices, as
    /// Algorithm 2 line 3 does).
    pub fn with_time_row(&self, i: usize, row: &[f64]) -> MatchingProblem {
        assert_eq!(row.len(), self.tasks());
        let mut p = self.clone();
        p.times.row_mut(i).copy_from_slice(row);
        p
    }

    /// Replaces row `i` of the reliability matrix (entries clamped to
    /// `[0, 1]` — predictors can overshoot slightly).
    pub fn with_reliability_row(&self, i: usize, row: &[f64]) -> MatchingProblem {
        assert_eq!(row.len(), self.tasks());
        let mut p = self.clone();
        for (dst, &v) in p.reliability.row_mut(i).iter_mut().zip(row) {
            *dst = v.clamp(0.0, 1.0);
        }
        p
    }
}

/// A discrete matching: `cluster_of[j]` is the cluster task `j` runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Cluster index per task.
    pub cluster_of: Vec<usize>,
}

impl Assignment {
    /// Builds an assignment from per-task cluster indices.
    pub fn new(cluster_of: Vec<usize>) -> Self {
        Assignment { cluster_of }
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.cluster_of.len()
    }

    /// Number of tasks on each of the `m` clusters.
    pub fn loads(&self, m: usize) -> Vec<usize> {
        let mut counts = vec![0usize; m];
        for &c in &self.cluster_of {
            assert!(c < m, "cluster index out of range");
            counts[c] += 1;
        }
        counts
    }

    /// The dense 0/1 matrix `X` (`m x n`) representing this assignment.
    pub fn to_matrix(&self, m: usize) -> Matrix {
        let n = self.tasks();
        let mut x = Matrix::zeros(m, n);
        for (j, &c) in self.cluster_of.iter().enumerate() {
            x[(c, j)] = 1.0;
        }
        x
    }

    /// Per-cluster completion time `ζ_i(n_i) · Σ_{j on i} t_ij`.
    pub fn cluster_times(&self, problem: &MatchingProblem) -> Vec<f64> {
        let m = problem.clusters();
        let mut sums = vec![0.0; m];
        let mut counts = vec![0.0; m];
        for (j, &c) in self.cluster_of.iter().enumerate() {
            sums[c] += problem.times[(c, j)];
            counts[c] += 1.0;
        }
        (0..m)
            .map(|i| problem.speedup[i].eval(counts[i]) * sums[i])
            .collect()
    }

    /// The makespan `f(X, T)` of Eq. (3)/(16): the slowest cluster's
    /// completion time.
    pub fn makespan(&self, problem: &MatchingProblem) -> f64 {
        self.cluster_times(problem).into_iter().fold(0.0, f64::max)
    }

    /// Mean per-task success probability `(1/N) Σ_j a_{c(j), j}` — the
    /// evaluation-metric form of the paper's reliability.
    pub fn mean_reliability(&self, problem: &MatchingProblem) -> f64 {
        if self.cluster_of.is_empty() {
            return 1.0;
        }
        let total: f64 = self
            .cluster_of
            .iter()
            .enumerate()
            .map(|(j, &c)| problem.reliability[(c, j)])
            .sum();
        total / self.tasks() as f64
    }

    /// Whether every capacity limit holds (vacuously true without
    /// capacity constraints).
    pub fn capacity_feasible(&self, problem: &MatchingProblem) -> bool {
        let Some(cap) = &problem.capacity else {
            return true;
        };
        let m = problem.clusters();
        let mut used = vec![0.0; m];
        for (j, &c) in self.cluster_of.iter().enumerate() {
            used[c] += cap.usage[(c, j)];
        }
        (0..m).all(|i| used[i] <= cap.limits[i] + 1e-9)
    }

    /// Whether the reliability constraint `mean_reliability ≥ γ` and all
    /// capacity limits hold.
    pub fn is_feasible(&self, problem: &MatchingProblem) -> bool {
        self.mean_reliability(problem) >= problem.gamma - 1e-12 && self.capacity_feasible(problem)
    }

    /// Cluster utilization: total busy time divided by `M · makespan`
    /// (the paper's §4.1.3 metric — low when some clusters idle while the
    /// slowest finishes).
    pub fn utilization(&self, problem: &MatchingProblem) -> f64 {
        let times = self.cluster_times(problem);
        let makespan = times.iter().cloned().fold(0.0, f64::max);
        if makespan <= 0.0 {
            return 1.0;
        }
        times.iter().sum::<f64>() / (problem.clusters() as f64 * makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> MatchingProblem {
        // 2 clusters, 3 tasks.
        let t = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 1.0, 1.0]]);
        let a = Matrix::from_rows(&[&[0.9, 0.8, 0.7], &[0.6, 0.95, 0.85]]);
        MatchingProblem::new(t, a, 0.8)
    }

    #[test]
    fn construction_validates() {
        let p = toy_problem();
        assert_eq!(p.clusters(), 2);
        assert_eq!(p.tasks(), 3);
    }

    #[test]
    #[should_panic(expected = "reliabilities must lie in")]
    fn rejects_bad_reliability() {
        MatchingProblem::new(Matrix::zeros(1, 1), Matrix::filled(1, 1, 1.5), 0.5);
    }

    #[test]
    fn makespan_and_loads() {
        let p = toy_problem();
        let a = Assignment::new(vec![0, 1, 1]);
        assert_eq!(a.loads(2), vec![1, 2]);
        // Cluster 0: t=1; cluster 1: 1+1=2 → makespan 2.
        assert_eq!(a.makespan(&p), 2.0);
        let times = a.cluster_times(&p);
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn reliability_metric() {
        let p = toy_problem();
        let a = Assignment::new(vec![0, 1, 1]);
        let expected = (0.9 + 0.95 + 0.85) / 3.0;
        assert!((a.mean_reliability(&p) - expected).abs() < 1e-12);
        assert!(a.is_feasible(&p));
        let bad = Assignment::new(vec![1, 0, 0]); // 0.6+0.8+0.7 = 0.7 mean
        assert!(!bad.is_feasible(&p));
    }

    #[test]
    fn utilization_bounds() {
        let p = toy_problem();
        let a = Assignment::new(vec![0, 1, 1]);
        let u = a.utilization(&p);
        assert!((0.0..=1.0).contains(&u));
        // busy = 1 + 2 = 3, denom = 2 * 2 → 0.75
        assert!((u - 0.75).abs() < 1e-12);
    }

    #[test]
    fn to_matrix_roundtrip() {
        let a = Assignment::new(vec![0, 1, 1]);
        let x = a.to_matrix(2);
        assert_eq!(x[(0, 0)], 1.0);
        assert_eq!(x[(1, 0)], 0.0);
        assert_eq!(x[(1, 2)], 1.0);
        // Columns sum to one.
        for j in 0..3 {
            assert_eq!(x[(0, j)] + x[(1, j)], 1.0);
        }
    }

    #[test]
    fn speedup_changes_makespan() {
        let t = Matrix::from_rows(&[&[1.0, 1.0]]);
        let a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let curve = SpeedupCurve::ExpDecay {
            floor: 0.5,
            rate: 10.0, // effectively floor for n >= 2
        };
        let p = MatchingProblem::with_speedup(t, a, 0.0, vec![curve]);
        let asg = Assignment::new(vec![0, 0]);
        // 2 tasks in parallel: ζ(2) ≈ 0.5, total ≈ 1.0 instead of 2.0.
        assert!((asg.makespan(&p) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn row_splicing() {
        let p = toy_problem();
        let p2 = p.with_time_row(0, &[9.0, 9.0, 9.0]);
        assert_eq!(p2.times[(0, 1)], 9.0);
        assert_eq!(p2.times[(1, 1)], 1.0);
        let p3 = p.with_reliability_row(1, &[2.0, -1.0, 0.5]);
        assert_eq!(p3.reliability[(1, 0)], 1.0); // clamped
        assert_eq!(p3.reliability[(1, 1)], 0.0); // clamped
        assert_eq!(p3.reliability[(1, 2)], 0.5);
    }

    #[test]
    fn empty_assignment_edge_cases() {
        let p = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let a = Assignment::new(vec![]);
        assert_eq!(a.makespan(&p), 0.0);
        assert_eq!(a.mean_reliability(&p), 1.0);
        assert_eq!(a.utilization(&p), 1.0);
    }
}
