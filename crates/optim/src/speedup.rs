//! Parallel-execution time-adjustment curves `ζ_i` (paper §3.4).
//!
//! `ζ_i(n)` multiplies the summed execution time of the `n` tasks on
//! cluster `i`: `ζ ≡ 1` recovers the sequential setting of Eq. (3), while
//! the paper's §4.5 evaluation uses "an exponential decay curve from 1 to
//! 0.6, reflecting the diminishing marginal effect" of batching more tasks.
//! The curve must be differentiable in `n` because the relaxation treats
//! `n_i = xᵢᵀ1` as a continuous quantity.

/// A differentiable speedup curve `ζ(n)` over the (fractional) task count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedupCurve {
    /// Sequential execution: `ζ(n) = 1`.
    None,
    /// `ζ(n) = floor + (1 - floor) · exp(-rate · (n - 1))` for `n ≥ 1`,
    /// and `ζ(n) = 1` for `n < 1` (a single task cannot speed up).
    ///
    /// `ζ(1) = 1`, `ζ(∞) = floor`. With `floor = 0.6` this is the paper's
    /// §4.5 curve.
    ExpDecay {
        /// Asymptotic speedup ratio in `(0, 1]`.
        floor: f64,
        /// Decay rate per additional task, `> 0`.
        rate: f64,
    },
}

impl SpeedupCurve {
    /// The paper's §4.5 configuration: exponential decay from 1 to 0.6.
    pub fn paper_parallel() -> Self {
        SpeedupCurve::ExpDecay {
            floor: 0.6,
            rate: 0.35,
        }
    }

    /// Evaluates `ζ(n)`.
    pub fn eval(self, n: f64) -> f64 {
        match self {
            SpeedupCurve::None => 1.0,
            SpeedupCurve::ExpDecay { floor, rate } => {
                if n <= 1.0 {
                    1.0
                } else {
                    floor + (1.0 - floor) * (-rate * (n - 1.0)).exp()
                }
            }
        }
    }

    /// Derivative `dζ/dn`.
    pub fn derivative(self, n: f64) -> f64 {
        match self {
            SpeedupCurve::None => 0.0,
            SpeedupCurve::ExpDecay { floor, rate } => {
                if n <= 1.0 {
                    0.0
                } else {
                    -rate * (1.0 - floor) * (-rate * (n - 1.0)).exp()
                }
            }
        }
    }

    /// Whether the curve is identically one (the convex case).
    pub fn is_trivial(self) -> bool {
        matches!(self, SpeedupCurve::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let c = SpeedupCurve::None;
        for n in [0.0, 1.0, 5.0, 100.0] {
            assert_eq!(c.eval(n), 1.0);
            assert_eq!(c.derivative(n), 0.0);
        }
        assert!(c.is_trivial());
    }

    #[test]
    fn exp_decay_endpoints() {
        let c = SpeedupCurve::paper_parallel();
        assert_eq!(c.eval(1.0), 1.0);
        assert!((c.eval(1000.0) - 0.6).abs() < 1e-9);
        assert!(!c.is_trivial());
    }

    #[test]
    fn exp_decay_monotone_decreasing() {
        let c = SpeedupCurve::paper_parallel();
        let mut prev = c.eval(1.0);
        for k in 2..20 {
            let v = c.eval(k as f64);
            assert!(v < prev, "ζ must strictly decrease past n=1");
            assert!(v >= 0.6);
            prev = v;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let c = SpeedupCurve::ExpDecay {
            floor: 0.6,
            rate: 0.35,
        };
        for n in [1.5, 2.0, 3.7, 10.0] {
            let h = 1e-6;
            let numeric = (c.eval(n + h) - c.eval(n - h)) / (2.0 * h);
            assert!((c.derivative(n) - numeric).abs() < 1e-6, "at n={n}");
        }
    }

    #[test]
    fn total_time_still_grows_with_tasks() {
        // ζ(n)·n must be increasing: adding work never reduces wall time.
        let c = SpeedupCurve::paper_parallel();
        let mut prev = 0.0;
        for k in 1..30 {
            let total = c.eval(k as f64) * k as f64;
            assert!(total > prev);
            prev = total;
        }
    }
}
