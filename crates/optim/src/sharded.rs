//! Sharded dual-decomposition solving of the relaxed matching problem.
//!
//! [`ShardedSolver`] partitions the task columns of one large instance
//! into contiguous shards and solves them in parallel on a shared
//! [`ThreadPool`] via [`solve_batch_on_pool`]. The per-task simplex
//! constraints are separable across shards; the only coupling between
//! shards runs through `M`-dimensional aggregates — per-cluster load
//! `ℓ_i` and count `n_i` (the smooth-max weights), the platform
//! reliability mass (the barrier multiplier `φ'(g)`), and per-cluster
//! capacity usage. The solver exploits that structure with a damped
//! Jacobi scheme:
//!
//! 1. **Freeze** each shard's complement: from the current global
//!    iterate, per-shard partial aggregates are summed (in shard order,
//!    so the arithmetic is independent of thread count) and every shard
//!    receives the totals contributed by all *other* shards as fixed
//!    offsets.
//! 2. **Solve** every shard in parallel: a few mirror-descent iterations
//!    on the shard's own columns, re-deriving the coupling multipliers
//!    (`w_i`, `φ'(g)`, capacity `φ'`) each iteration from
//!    `offset + live shard contribution` — exact block minimization of
//!    the global objective over the shard's columns with the complement
//!    frozen.
//! 3. **Coordinate**: the concatenated shard proposals form a joint
//!    direction `D = X' − X`; a backtracking Armijo line search on the
//!    *global* objective picks the damping `α` and accepts `X + αD`.
//!    Pure Jacobi can overshoot when the coupling multipliers move;
//!    the line search restores the monotone descent each block update
//!    has individually.
//!
//! Determinism: each shard's inner solve is sequential; results are
//! combined on the calling thread in shard (input) order; every global
//! reduction runs in a fixed order. Consequently the returned iterate is
//! **bitwise identical across pool sizes** — the `sharded_differential`
//! suite pins this under the `strict-determinism` feature.
//!
//! Memory: the problem's task-major transposes are built **once** per
//! solve and shared across shards and rounds via [`Arc`]; each shard
//! owns only its persistent iterate block (re-seeded in place each
//! round and moved through the pool and back). Peak and cumulative
//! memory are therefore `O(problem + iterate)` — independent of the
//! round count — where earlier revisions cloned every shard's columns
//! of every matrix every round (`O(problem × rounds)` cumulative).
//!
//! Non-trivial speedup curves are handled natively: each shard
//! re-derives `ζ_i(n_i)`, `ζ_i'(n_i)` from `offset + live` counts every
//! inner iteration, mirroring [`objective::grad_x_into`] exactly (for
//! trivial curves the extra terms are exact identities — `ζ ≡ 1`,
//! `ζ' ≡ 0` — so the arithmetic is bitwise unchanged). The objective is
//! then non-convex, but the Armijo-damped coordination retains monotone
//! descent and block-coordinate convergence to a stationary point —
//! the same guarantee the monolithic mirror-descent solver offers
//! there. Only degenerate shapes (fewer than 2 effective shards) fall
//! back to the monolithic [`solve_relaxed`] solver.

use crate::kkt::KktWorkspace;
use crate::objective::{self, ClusterStats, CostKind, RelaxationParams, X_FLOOR};
use crate::problem::MatchingProblem;
use crate::solver::{
    solve_relaxed, solve_relaxed_newton_with_workspace, uniform_init, NewtonOptions,
    ProjectionKind, RelaxedSolution, SolverOptions,
};
use crate::speedup::SpeedupCurve;
use mfcp_linalg::{vector, Matrix};
use mfcp_parallel::{solve_batch_on_pool, ThreadPool};
use std::sync::Arc;

/// Options for [`ShardedSolver`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedOptions {
    /// Number of task-column shards (clamped to the task count; fewer
    /// than 2 effective shards falls back to the monolithic solver).
    pub shards: usize,
    /// Maximum outer Jacobi coordination rounds.
    pub max_rounds: usize,
    /// Mirror-descent iterations per shard per round. Larger values
    /// amortize the per-round coordination cost (global aggregates,
    /// gradient, line search) over more parallel work.
    pub inner_iters: usize,
    /// Mirror-descent step size `η` (same role as [`SolverOptions::lr`]).
    pub lr: f64,
    /// Outer convergence tolerance on `α · max |X' − X|`.
    pub tol: f64,
    /// Armijo sufficient-decrease coefficient for the coordination line
    /// search.
    pub armijo_c: f64,
    /// Maximum halvings of `α` per round before declaring convergence.
    pub max_backtracks: usize,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            shards: 4,
            max_rounds: 400,
            inner_iters: 16,
            lr: 0.8,
            tol: 1e-8,
            armijo_c: 1e-4,
            max_backtracks: 30,
        }
    }
}

/// Parallel sharded solver for large relaxed matching instances; see the
/// module docs for the coordination scheme.
#[derive(Debug)]
pub struct ShardedSolver {
    opts: ShardedOptions,
    pool: ThreadPool,
}

/// One shard's view of the problem plus its frozen complement offsets;
/// `run` is the shard-local block minimization (step 2 above).
///
/// The problem matrices are `Arc`-shared task-major transposes built
/// once per solve — a job holds only its column range into them. The
/// iterate block `xt` and the scratch vectors are owned and persistent:
/// the job struct is moved into the pool closure, consumed by `run`, and
/// handed back for the next round, so steady-state rounds allocate
/// nothing proportional to the problem.
struct ShardJob {
    n_total: usize,
    gamma: f64,
    params: RelaxationParams,
    lr: f64,
    inner_iters: usize,
    inner_tol: f64,
    /// Task range `[c0, c1)` of this shard in the global column order.
    c0: usize,
    c1: usize,
    /// Full `times`, task-major (`N × M`), shared across shards/rounds.
    tt: Arc<Matrix>,
    /// Full `reliability`, task-major, shared.
    at: Arc<Matrix>,
    /// Full capacity usage, task-major, shared (when constrained).
    ut: Option<Arc<Matrix>>,
    /// Per-cluster capacity limits (empty without capacity constraints).
    limits: Arc<Vec<f64>>,
    /// Per-cluster speedup curves `ζ_i` (non-trivial curves supported).
    speedup: Arc<Vec<SpeedupCurve>>,
    /// Shard block of the iterate, task-major (`n_s × M`); owned and
    /// persistent, re-seeded from the global iterate each round.
    xt: Matrix,
    off_count: Vec<f64>,
    off_load: Vec<f64>,
    off_rel: Vec<f64>,
    off_cap: Vec<f64>,
    // Persistent inner-loop scratch (`M` each).
    count: Vec<f64>,
    load: Vec<f64>,
    rel: Vec<f64>,
    cap_used: Vec<f64>,
    weights: Vec<f64>,
    zeta: Vec<f64>,
    dzeta: Vec<f64>,
    cap_dphi: Vec<f64>,
    col: Vec<f64>,
}

impl ShardJob {
    /// Consumes and returns `self` so the caller can move the job through
    /// the thread pool and keep its buffers for the next round.
    fn run(mut self) -> ShardJob {
        let (ns, m) = self.xt.shape();
        debug_assert_eq!(ns, self.c1 - self.c0);
        let inv_n = 1.0 / self.n_total as f64;
        for _ in 0..self.inner_iters {
            // Global aggregates = frozen complement + live shard sums.
            self.count.copy_from_slice(&self.off_count);
            self.load.copy_from_slice(&self.off_load);
            self.rel.copy_from_slice(&self.off_rel);
            self.cap_used.copy_from_slice(&self.off_cap);
            for j in 0..ns {
                let xr = self.xt.row(j);
                let tr = self.tt.row(self.c0 + j);
                let ar = self.at.row(self.c0 + j);
                for i in 0..m {
                    self.count[i] += xr[i];
                    self.load[i] += xr[i] * tr[i];
                    self.rel[i] += xr[i] * ar[i];
                }
                if let Some(ut) = &self.ut {
                    let ur = ut.row(self.c0 + j);
                    for i in 0..m {
                        self.cap_used[i] += xr[i] * ur[i];
                    }
                }
            }
            // Coupling multipliers at the current global point, mirroring
            // `objective::grad_x_into` exactly: ζ, ζ' from the live
            // counts; weights from the softmax of β·ζ·ℓ. For trivial
            // curves ζ ≡ 1 and ζ' ≡ 0, so every extra term is an exact
            // identity and the arithmetic is bitwise unchanged.
            for i in 0..m {
                self.zeta[i] = self.speedup[i].eval(self.count[i]);
                self.dzeta[i] = self.speedup[i].derivative(self.count[i]);
            }
            let mut rel_acc = 0.0;
            for &r in self.rel.iter() {
                rel_acc += r;
            }
            let g = rel_acc * inv_n - self.gamma;
            let dphi = objective::barrier_derivative(&self.params, g);
            match self.params.cost {
                CostKind::SmoothMax => {
                    for i in 0..m {
                        self.weights[i] = self.params.beta * (self.zeta[i] * self.load[i]);
                    }
                    vector::softmax_inplace(&mut self.weights);
                }
                CostKind::LinearSum => self.weights.fill(1.0),
            }
            if !self.limits.is_empty() {
                for i in 0..m {
                    let slack = (self.limits[i] - self.cap_used[i]) / self.limits[i];
                    self.cap_dphi[i] = objective::barrier_derivative(&self.params, slack);
                }
            }
            // Mirror-descent step per shard column (same log-space
            // arithmetic as the monolithic PGD hot loop).
            let mut max_change: f64 = 0.0;
            for j in 0..ns {
                let tr = self.tt.row(self.c0 + j);
                let ar = self.at.row(self.c0 + j);
                let ur = self.ut.as_ref().map(|u| u.row(self.c0 + j));
                let xr = self.xt.row_mut(j);
                for i in 0..m {
                    let ds = self.zeta[i] * tr[i] + self.dzeta[i] * self.load[i];
                    let mut gij = self.weights[i] * ds + dphi * ar[i] * inv_n;
                    if let Some(ur) = ur {
                        gij -= self.cap_dphi[i] * ur[i] / self.limits[i];
                    }
                    if self.params.rho != 0.0 {
                        gij += self.params.rho * (1.0 + xr[i].max(X_FLOOR).ln());
                    }
                    self.col[i] = xr[i].max(1e-300).ln() - self.lr * gij;
                }
                vector::softmax_inplace(&mut self.col);
                for (xv, &c) in xr.iter_mut().zip(self.col.iter()) {
                    max_change = max_change.max((c - *xv).abs());
                    *xv = c;
                }
            }
            if max_change < self.inner_tol {
                break;
            }
        }
        self
    }
}

impl ShardedSolver {
    /// A solver with `threads` pool workers and explicit options.
    pub fn new(opts: ShardedOptions, threads: usize) -> Self {
        ShardedSolver {
            opts,
            pool: ThreadPool::new(threads),
        }
    }

    /// Default options with one shard per pool worker.
    pub fn with_threads(threads: usize) -> Self {
        let opts = ShardedOptions {
            shards: threads.max(1),
            ..Default::default()
        };
        Self::new(opts, threads)
    }

    /// The configured options.
    pub fn options(&self) -> &ShardedOptions {
        &self.opts
    }

    /// Monolithic [`SolverOptions`] matching this solver's iteration
    /// budget — the fallback path, and the natural head-to-head baseline.
    pub fn fallback_options(&self) -> SolverOptions {
        SolverOptions {
            max_iters: self.opts.max_rounds.saturating_mul(self.opts.inner_iters),
            lr: self.opts.lr,
            tol: self.opts.tol,
            projection: ProjectionKind::MirrorDescent,
        }
    }

    /// Second-order solve with the sharded KKT Schur path: damped Newton
    /// steps (same algorithm as [`crate::solver::solve_relaxed_newton`])
    /// whose per-iteration structured KKT solve applies the N×N Schur
    /// inverse through the shared rank-≤(2M+2) capacitance per task shard
    /// (see [`KktWorkspace::set_schur_shards`]) instead of assembling and
    /// Cholesky-factoring it. The iterate sequence is exact — both Schur
    /// recipes are polished by the same iterative-refinement step — so
    /// this agrees with the monolithic Newton solver to solver precision;
    /// the `sharded_differential` suite pins the comparison. Restricted
    /// to the convex (trivial speedup-curve) setting like every Newton
    /// path.
    pub fn solve_newton(
        &self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
        opts: &NewtonOptions,
    ) -> RelaxedSolution {
        let _span = mfcp_obs::span("solve_sharded_newton");
        let mut ws = KktWorkspace::new();
        ws.set_schur_shards(self.opts.shards.max(1));
        solve_relaxed_newton_with_workspace(problem, params, opts, &mut ws)
    }

    /// Solves the relaxed matching problem from the uniform initial
    /// point, sharding across task columns when the instance qualifies
    /// (convex setting, at least 2 effective shards) and falling back to
    /// the monolithic mirror-descent solver otherwise.
    ///
    /// `iterations` on the returned solution counts outer coordination
    /// rounds for the sharded path and PGD iterations for the fallback.
    pub fn solve(&self, problem: &MatchingProblem, params: &RelaxationParams) -> RelaxedSolution {
        let _span = mfcp_obs::span("solve_sharded");
        let (m, n) = (problem.clusters(), problem.tasks());
        let shards = self.opts.shards.min(n);
        if m == 0 || n == 0 || shards < 2 || self.opts.inner_iters == 0 {
            mfcp_obs::counter("optim.sharded.fallback").inc();
            return solve_relaxed(problem, params, &self.fallback_options());
        }
        mfcp_obs::counter("optim.sharded.solves").inc();

        // Contiguous column ranges, sizes differing by at most one.
        let base = n / shards;
        let rem = n % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            ranges.push((start, start + len));
            start += len;
        }

        let cap = problem.capacity.as_ref();
        // Task-major transposes of the problem, built once and shared by
        // every shard across every round.
        let tt_all = Arc::new(Matrix::from_fn(n, m, |j, i| problem.times[(i, j)]));
        let at_all = Arc::new(Matrix::from_fn(n, m, |j, i| problem.reliability[(i, j)]));
        let ut_all = cap.map(|c| Arc::new(Matrix::from_fn(n, m, |j, i| c.usage[(i, j)])));
        let limits = Arc::new(cap.map(|c| c.limits.clone()).unwrap_or_default());
        let speedup = Arc::new(problem.speedup.clone());
        let mut x = uniform_init(m, n);
        let mut f0 = objective::value(problem, params, &x);
        let mut stats = ClusterStats::default();
        let mut grad = Matrix::zeros(m, n);
        // Persistent per-shard jobs: buffers live across rounds; only the
        // offsets and the iterate block are rewritten (in place) per round.
        let mut jobs: Vec<ShardJob> = ranges
            .iter()
            .map(|&(c0, c1)| ShardJob {
                n_total: n,
                gamma: problem.gamma,
                params: *params,
                lr: self.opts.lr,
                inner_iters: self.opts.inner_iters,
                inner_tol: self.opts.tol,
                c0,
                c1,
                tt: Arc::clone(&tt_all),
                at: Arc::clone(&at_all),
                ut: ut_all.as_ref().map(Arc::clone),
                limits: Arc::clone(&limits),
                speedup: Arc::clone(&speedup),
                xt: Matrix::zeros(c1 - c0, m),
                off_count: vec![0.0; m],
                off_load: vec![0.0; m],
                off_rel: vec![0.0; m],
                off_cap: vec![0.0; m],
                count: vec![0.0; m],
                load: vec![0.0; m],
                rel: vec![0.0; m],
                cap_used: vec![0.0; m],
                weights: vec![0.0; m],
                zeta: vec![0.0; m],
                dzeta: vec![0.0; m],
                cap_dphi: vec![0.0; m],
                col: vec![0.0; m],
            })
            .collect();
        // Per-shard partial aggregates, `shards × M` each.
        let mut p_count = vec![vec![0.0; m]; shards];
        let mut p_load = vec![vec![0.0; m]; shards];
        let mut p_rel = vec![vec![0.0; m]; shards];
        let mut p_cap = vec![vec![0.0; m]; shards];
        // Persistent round buffers for the coordination step.
        let mut dir = Matrix::zeros(m, n);
        let mut trial = Matrix::zeros(m, n);
        let mut converged = false;
        let mut rounds = 0;
        let mut stagnant = 0usize;
        for round in 0..self.opts.max_rounds {
            rounds = round + 1;
            for (s, &(c0, c1)) in ranges.iter().enumerate() {
                for i in 0..m {
                    let xr = &x.row(i)[c0..c1];
                    let tr = &problem.times.row(i)[c0..c1];
                    let ar = &problem.reliability.row(i)[c0..c1];
                    let (mut cs, mut ls, mut rs) = (0.0, 0.0, 0.0);
                    for k in 0..xr.len() {
                        cs += xr[k];
                        ls += xr[k] * tr[k];
                        rs += xr[k] * ar[k];
                    }
                    p_count[s][i] = cs;
                    p_load[s][i] = ls;
                    p_rel[s][i] = rs;
                    if let Some(c) = cap {
                        let ur = &c.usage.row(i)[c0..c1];
                        p_cap[s][i] = xr.iter().zip(ur).map(|(xv, uv)| xv * uv).sum();
                    }
                }
            }
            // Refresh each job in place: complement offsets summed in
            // ascending shard order (fixed arithmetic independent of pool
            // size) and the iterate block re-seeded from the global x.
            for (s, job) in jobs.iter_mut().enumerate() {
                let offset = |p: &[Vec<f64>], off: &mut [f64]| {
                    off.fill(0.0);
                    for (sp, part) in p.iter().enumerate() {
                        if sp == s {
                            continue;
                        }
                        for (o, v) in off.iter_mut().zip(part) {
                            *o += v;
                        }
                    }
                };
                offset(&p_count, &mut job.off_count);
                offset(&p_load, &mut job.off_load);
                offset(&p_rel, &mut job.off_rel);
                offset(&p_cap, &mut job.off_cap);
                for j in 0..(job.c1 - job.c0) {
                    let xr = job.xt.row_mut(j);
                    for (i, xv) in xr.iter_mut().enumerate() {
                        *xv = x[(i, job.c0 + j)];
                    }
                }
            }
            let closures: Vec<_> = jobs.drain(..).map(|job| move || job.run()).collect();
            let results = solve_batch_on_pool(&self.pool, closures);
            jobs.extend(
                results
                    .into_iter()
                    .map(|res| res.expect("shard jobs are panic-free")),
            );

            // Joint direction D = X' − X, assembled in shard (input)
            // order into the persistent buffer.
            dir.as_mut_slice().fill(0.0);
            for job in &jobs {
                debug_assert_eq!(job.xt.shape(), (job.c1 - job.c0, m));
                for j in 0..(job.c1 - job.c0) {
                    let xr = job.xt.row(j);
                    for i in 0..m {
                        dir[(i, job.c0 + j)] = xr[i] - x[(i, job.c0 + j)];
                    }
                }
            }
            objective::grad_x_into(problem, params, &x, &mut stats, &mut grad);
            let slope: f64 = grad
                .as_slice()
                .iter()
                .zip(dir.as_slice())
                .map(|(g, d)| g * d)
                .sum();
            if slope >= 0.0 {
                // Every block is at (or numerically past) its minimum.
                converged = true;
                break;
            }
            let mut alpha: f64 = 1.0;
            let mut accepted = false;
            for _ in 0..self.opts.max_backtracks {
                for ((t, &xv), &dv) in trial
                    .as_mut_slice()
                    .iter_mut()
                    .zip(x.as_slice())
                    .zip(dir.as_slice())
                {
                    *t = xv + alpha * dv;
                }
                let f_trial = objective::value(problem, params, &trial);
                if f_trial <= f0 + self.opts.armijo_c * alpha * slope {
                    std::mem::swap(&mut x, &mut trial);
                    // Objective stagnation: two consecutive rounds below
                    // floating-point resolution mean the iterate is
                    // optimal to within reproducibility, even if the raw
                    // step-change noise floor sits above `tol`.
                    if (f0 - f_trial).abs() <= 1e-12 * (1.0 + f_trial.abs()) {
                        stagnant += 1;
                    } else {
                        stagnant = 0;
                    }
                    f0 = f_trial;
                    accepted = true;
                    break;
                }
                alpha *= 0.5;
            }
            if !accepted || stagnant >= 2 {
                converged = true;
                break;
            }
            if alpha * dir.max_abs() < self.opts.tol {
                converged = true;
                break;
            }
        }
        mfcp_obs::histogram("optim.sharded.rounds").record(rounds as f64);
        let objective = objective::value(problem, params, &x);
        RelaxedSolution {
            x,
            objective,
            iterations: rounds,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CapacityConstraint;
    use crate::solver::is_column_stochastic;
    use crate::speedup::SpeedupCurve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
        MatchingProblem::new(t, a, 0.75)
    }

    fn tight_opts() -> ShardedOptions {
        ShardedOptions {
            shards: 4,
            max_rounds: 3000,
            inner_iters: 8,
            lr: 0.2,
            tol: 1e-10,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_matches_monolithic_objective() {
        for (seed, with_cap) in [(3u64, false), (4, false), (5, true)] {
            let mut problem = random_problem(seed, 4, 37);
            if with_cap {
                let mut rng = StdRng::seed_from_u64(seed + 90);
                problem.capacity = Some(CapacityConstraint::new(
                    Matrix::from_fn(4, 37, |_, _| rng.gen_range(0.1..1.0)),
                    vec![30.0; 4],
                ));
            }
            let params = RelaxationParams::default();
            let solver = ShardedSolver::new(tight_opts(), 4);
            let sharded = solver.solve(&problem, &params);
            let mono = solve_relaxed(
                &problem,
                &params,
                &SolverOptions {
                    max_iters: 60_000,
                    lr: 0.2,
                    tol: 1e-12,
                    ..Default::default()
                },
            );
            assert!(sharded.converged, "seed {seed}: sharded did not converge");
            assert!(is_column_stochastic(&sharded.x, 1e-8), "seed {seed}");
            assert!(
                (sharded.objective - mono.objective).abs() <= 1e-6,
                "seed {seed} cap={with_cap}: sharded {} vs monolithic {}",
                sharded.objective,
                mono.objective
            );
        }
    }

    #[test]
    fn bitwise_identical_across_pool_sizes() {
        let problem = random_problem(11, 3, 29);
        let params = RelaxationParams::default();
        let opts = ShardedOptions {
            shards: 4,
            max_rounds: 40,
            ..Default::default()
        };
        let a = ShardedSolver::new(opts, 1).solve(&problem, &params);
        let b = ShardedSolver::new(opts, 4).solve(&problem, &params);
        assert_eq!(a.iterations, b.iterations);
        for (va, vb) in a.x.as_slice().iter().zip(b.x.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }

    #[test]
    fn nontrivial_speedup_solves_natively() {
        // Non-trivial curves used to force a monolithic fallback; the
        // shard jobs now re-derive zeta/zeta' locally, so the sharded
        // path must engage and land near the monolithic solution.
        let mut rng = StdRng::seed_from_u64(7);
        let t = Matrix::from_fn(3, 12, |_, _| rng.gen_range(0.5..2.0));
        let a = Matrix::from_fn(3, 12, |_, _| rng.gen_range(0.7..1.0));
        let problem =
            MatchingProblem::with_speedup(t, a, 0.7, vec![SpeedupCurve::paper_parallel(); 3]);
        let params = RelaxationParams::default();
        let before_fallback = mfcp_obs::counter("optim.sharded.fallback").get();
        let before_solves = mfcp_obs::counter("optim.sharded.solves").get();
        let solver = ShardedSolver::new(ShardedOptions::default(), 2);
        let sharded = solver.solve(&problem, &params);
        assert_eq!(
            mfcp_obs::counter("optim.sharded.fallback").get(),
            before_fallback,
            "non-trivial curves must no longer trigger the fallback"
        );
        assert!(mfcp_obs::counter("optim.sharded.solves").get() > before_solves);
        assert!(is_column_stochastic(&sharded.x, 1e-8));
        let mono = solve_relaxed(&problem, &params, &solver.fallback_options());
        let gap = (sharded.objective - mono.objective).abs();
        assert!(
            gap <= 1e-6 * (1.0 + mono.objective.abs()),
            "objective gap {gap:.3e} (sharded {}, mono {})",
            sharded.objective,
            mono.objective
        );
    }

    #[test]
    fn tiny_task_count_falls_back() {
        // One task cannot form 2 shards; the fallback must still solve.
        let problem = random_problem(13, 3, 1);
        let solver = ShardedSolver::new(ShardedOptions::default(), 2);
        let sol = solver.solve(&problem, &RelaxationParams::default());
        assert!(is_column_stochastic(&sol.x, 1e-6));
    }

    #[test]
    fn empty_problem() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let solver = ShardedSolver::new(ShardedOptions::default(), 2);
        let sol = solver.solve(&problem, &RelaxationParams::default());
        assert!(sol.converged);
        assert_eq!(sol.x.shape(), (2, 0));
    }

    #[test]
    fn shard_count_exceeding_tasks_is_clamped() {
        let problem = random_problem(17, 3, 5);
        let params = RelaxationParams::default();
        let opts = ShardedOptions {
            shards: 64,
            max_rounds: 500,
            inner_iters: 8,
            lr: 0.2,
            tol: 1e-10,
            ..Default::default()
        };
        let sol = ShardedSolver::new(opts, 4).solve(&problem, &params);
        assert!(is_column_stochastic(&sol.x, 1e-8));
        assert!(sol.objective.is_finite());
    }
}
