//! Sharded dual-decomposition solving of the relaxed matching problem.
//!
//! [`ShardedSolver`] partitions the task columns of one large instance
//! into contiguous shards and solves them in parallel on a shared
//! [`ThreadPool`] via [`solve_batch_on_pool`]. The per-task simplex
//! constraints are separable across shards; the only coupling between
//! shards runs through `M`-dimensional aggregates — per-cluster load
//! `ℓ_i` and count `n_i` (the smooth-max weights), the platform
//! reliability mass (the barrier multiplier `φ'(g)`), and per-cluster
//! capacity usage. The solver exploits that structure with a damped
//! Jacobi scheme:
//!
//! 1. **Freeze** each shard's complement: from the current global
//!    iterate, per-shard partial aggregates are summed (in shard order,
//!    so the arithmetic is independent of thread count) and every shard
//!    receives the totals contributed by all *other* shards as fixed
//!    offsets.
//! 2. **Solve** every shard in parallel: a few mirror-descent iterations
//!    on the shard's own columns, re-deriving the coupling multipliers
//!    (`w_i`, `φ'(g)`, capacity `φ'`) each iteration from
//!    `offset + live shard contribution` — exact block minimization of
//!    the global objective over the shard's columns with the complement
//!    frozen.
//! 3. **Coordinate**: the concatenated shard proposals form a joint
//!    direction `D = X' − X`; a backtracking Armijo line search on the
//!    *global* objective picks the damping `α` and accepts `X + αD`.
//!    Pure Jacobi can overshoot when the coupling multipliers move;
//!    the line search restores the monotone descent each block update
//!    has individually.
//!
//! Determinism: each shard's inner solve is sequential and owns cloned
//! data; results are combined on the calling thread in shard (input)
//! order; every global reduction runs in a fixed order. Consequently the
//! returned iterate is **bitwise identical across pool sizes** — the
//! `sharded_differential` suite pins this under the `strict-determinism`
//! feature.
//!
//! Like the Newton path, the sharded scheme is restricted to the convex
//! (trivial speedup-curve) setting, where block-coordinate descent on
//! the strictly convex entropy-regularized objective converges to the
//! unique global optimum; non-trivial `ζ_i` (or degenerate shapes) fall
//! back to the monolithic [`solve_relaxed`] solver.

use crate::objective::{self, ClusterStats, CostKind, RelaxationParams, X_FLOOR};
use crate::problem::MatchingProblem;
use crate::solver::{solve_relaxed, uniform_init, ProjectionKind, RelaxedSolution, SolverOptions};
use mfcp_linalg::{vector, Matrix};
use mfcp_parallel::{solve_batch_on_pool, ThreadPool};

/// Options for [`ShardedSolver`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedOptions {
    /// Number of task-column shards (clamped to the task count; fewer
    /// than 2 effective shards falls back to the monolithic solver).
    pub shards: usize,
    /// Maximum outer Jacobi coordination rounds.
    pub max_rounds: usize,
    /// Mirror-descent iterations per shard per round. Larger values
    /// amortize the per-round coordination cost (global aggregates,
    /// gradient, line search) over more parallel work.
    pub inner_iters: usize,
    /// Mirror-descent step size `η` (same role as [`SolverOptions::lr`]).
    pub lr: f64,
    /// Outer convergence tolerance on `α · max |X' − X|`.
    pub tol: f64,
    /// Armijo sufficient-decrease coefficient for the coordination line
    /// search.
    pub armijo_c: f64,
    /// Maximum halvings of `α` per round before declaring convergence.
    pub max_backtracks: usize,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            shards: 4,
            max_rounds: 400,
            inner_iters: 16,
            lr: 0.8,
            tol: 1e-8,
            armijo_c: 1e-4,
            max_backtracks: 30,
        }
    }
}

/// Parallel sharded solver for large relaxed matching instances; see the
/// module docs for the coordination scheme.
#[derive(Debug)]
pub struct ShardedSolver {
    opts: ShardedOptions,
    pool: ThreadPool,
}

/// One shard's cloned slice of the problem plus its frozen complement
/// offsets; `run` is the shard-local block minimization (step 2 above).
struct ShardJob {
    n_total: usize,
    gamma: f64,
    params: RelaxationParams,
    lr: f64,
    inner_iters: usize,
    inner_tol: f64,
    /// Shard columns of `times`, task-major (`n_s × M`).
    tt: Matrix,
    /// Shard columns of `reliability`, task-major.
    at: Matrix,
    /// Shard columns of capacity usage, task-major (when constrained).
    ut: Option<Matrix>,
    /// Per-cluster capacity limits (empty without capacity constraints).
    limits: Vec<f64>,
    /// Shard block of the iterate, task-major; updated in place.
    xt: Matrix,
    off_count: Vec<f64>,
    off_load: Vec<f64>,
    off_rel: Vec<f64>,
    off_cap: Vec<f64>,
}

impl ShardJob {
    fn run(mut self) -> Matrix {
        let (ns, m) = self.xt.shape();
        let mut count = vec![0.0; m];
        let mut load = vec![0.0; m];
        let mut rel = vec![0.0; m];
        let mut cap_used = vec![0.0; m];
        let mut weights = vec![0.0; m];
        let mut cap_dphi = vec![0.0; m];
        let mut col = vec![0.0; m];
        let inv_n = 1.0 / self.n_total as f64;
        for _ in 0..self.inner_iters {
            // Global aggregates = frozen complement + live shard sums.
            count.copy_from_slice(&self.off_count);
            load.copy_from_slice(&self.off_load);
            rel.copy_from_slice(&self.off_rel);
            cap_used.copy_from_slice(&self.off_cap);
            for j in 0..ns {
                let xr = self.xt.row(j);
                let tr = self.tt.row(j);
                let ar = self.at.row(j);
                for i in 0..m {
                    count[i] += xr[i];
                    load[i] += xr[i] * tr[i];
                    rel[i] += xr[i] * ar[i];
                }
                if let Some(ut) = &self.ut {
                    let ur = ut.row(j);
                    for i in 0..m {
                        cap_used[i] += xr[i] * ur[i];
                    }
                }
            }
            // Coupling multipliers at the current global point. Trivial
            // speedup curves mean ζ ≡ 1, ζ' ≡ 0, so the adjusted time is
            // the load itself (the fallback guard enforces this).
            let mut rel_acc = 0.0;
            for &r in rel.iter() {
                rel_acc += r;
            }
            let g = rel_acc * inv_n - self.gamma;
            let dphi = objective::barrier_derivative(&self.params, g);
            match self.params.cost {
                CostKind::SmoothMax => {
                    for i in 0..m {
                        weights[i] = self.params.beta * load[i];
                    }
                    vector::softmax_inplace(&mut weights);
                }
                CostKind::LinearSum => weights.fill(1.0),
            }
            if !self.limits.is_empty() {
                for i in 0..m {
                    let slack = (self.limits[i] - cap_used[i]) / self.limits[i];
                    cap_dphi[i] = objective::barrier_derivative(&self.params, slack);
                }
            }
            // Mirror-descent step per shard column (same log-space
            // arithmetic as the monolithic PGD hot loop).
            let mut max_change: f64 = 0.0;
            for j in 0..ns {
                let tr = self.tt.row(j);
                let ar = self.at.row(j);
                let ur = self.ut.as_ref().map(|u| u.row(j));
                let xr = self.xt.row_mut(j);
                for i in 0..m {
                    let mut gij = weights[i] * tr[i] + dphi * ar[i] * inv_n;
                    if let Some(ur) = ur {
                        gij -= cap_dphi[i] * ur[i] / self.limits[i];
                    }
                    if self.params.rho != 0.0 {
                        gij += self.params.rho * (1.0 + xr[i].max(X_FLOOR).ln());
                    }
                    col[i] = xr[i].max(1e-300).ln() - self.lr * gij;
                }
                vector::softmax_inplace(&mut col);
                for (xv, &c) in xr.iter_mut().zip(col.iter()) {
                    max_change = max_change.max((c - *xv).abs());
                    *xv = c;
                }
            }
            if max_change < self.inner_tol {
                break;
            }
        }
        self.xt
    }
}

impl ShardedSolver {
    /// A solver with `threads` pool workers and explicit options.
    pub fn new(opts: ShardedOptions, threads: usize) -> Self {
        ShardedSolver {
            opts,
            pool: ThreadPool::new(threads),
        }
    }

    /// Default options with one shard per pool worker.
    pub fn with_threads(threads: usize) -> Self {
        let opts = ShardedOptions {
            shards: threads.max(1),
            ..Default::default()
        };
        Self::new(opts, threads)
    }

    /// The configured options.
    pub fn options(&self) -> &ShardedOptions {
        &self.opts
    }

    /// Monolithic [`SolverOptions`] matching this solver's iteration
    /// budget — the fallback path, and the natural head-to-head baseline.
    pub fn fallback_options(&self) -> SolverOptions {
        SolverOptions {
            max_iters: self.opts.max_rounds.saturating_mul(self.opts.inner_iters),
            lr: self.opts.lr,
            tol: self.opts.tol,
            projection: ProjectionKind::MirrorDescent,
        }
    }

    /// Solves the relaxed matching problem from the uniform initial
    /// point, sharding across task columns when the instance qualifies
    /// (convex setting, at least 2 effective shards) and falling back to
    /// the monolithic mirror-descent solver otherwise.
    ///
    /// `iterations` on the returned solution counts outer coordination
    /// rounds for the sharded path and PGD iterations for the fallback.
    pub fn solve(&self, problem: &MatchingProblem, params: &RelaxationParams) -> RelaxedSolution {
        let _span = mfcp_obs::span("solve_sharded");
        let (m, n) = (problem.clusters(), problem.tasks());
        let shards = self.opts.shards.min(n);
        if m == 0
            || n == 0
            || shards < 2
            || self.opts.inner_iters == 0
            || !problem.speedup.iter().all(|c| c.is_trivial())
        {
            mfcp_obs::counter("optim.sharded.fallback").inc();
            return solve_relaxed(problem, params, &self.fallback_options());
        }
        mfcp_obs::counter("optim.sharded.solves").inc();

        // Contiguous column ranges, sizes differing by at most one.
        let base = n / shards;
        let rem = n % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            ranges.push((start, start + len));
            start += len;
        }

        let cap = problem.capacity.as_ref();
        let limits: Vec<f64> = cap.map(|c| c.limits.clone()).unwrap_or_default();
        let mut x = uniform_init(m, n);
        let mut f0 = objective::value(problem, params, &x);
        let mut stats = ClusterStats::default();
        let mut grad = Matrix::zeros(m, n);
        // Per-shard partial aggregates, `shards × M` each.
        let mut p_count = vec![vec![0.0; m]; shards];
        let mut p_load = vec![vec![0.0; m]; shards];
        let mut p_rel = vec![vec![0.0; m]; shards];
        let mut p_cap = vec![vec![0.0; m]; shards];
        let mut converged = false;
        let mut rounds = 0;
        let mut stagnant = 0usize;
        for round in 0..self.opts.max_rounds {
            rounds = round + 1;
            for (s, &(c0, c1)) in ranges.iter().enumerate() {
                for i in 0..m {
                    let xr = &x.row(i)[c0..c1];
                    let tr = &problem.times.row(i)[c0..c1];
                    let ar = &problem.reliability.row(i)[c0..c1];
                    let (mut cs, mut ls, mut rs) = (0.0, 0.0, 0.0);
                    for k in 0..xr.len() {
                        cs += xr[k];
                        ls += xr[k] * tr[k];
                        rs += xr[k] * ar[k];
                    }
                    p_count[s][i] = cs;
                    p_load[s][i] = ls;
                    p_rel[s][i] = rs;
                    if let Some(c) = cap {
                        let ur = &c.usage.row(i)[c0..c1];
                        p_cap[s][i] = xr.iter().zip(ur).map(|(xv, uv)| xv * uv).sum();
                    }
                }
            }
            let jobs: Vec<_> = ranges
                .iter()
                .enumerate()
                .map(|(s, &(c0, c1))| {
                    let ns = c1 - c0;
                    let slice_t = |src: &Matrix| Matrix::from_fn(ns, m, |j, i| src[(i, c0 + j)]);
                    // Complement offsets summed in ascending shard order —
                    // fixed arithmetic independent of pool size.
                    let offset = |p: &[Vec<f64>]| {
                        let mut off = vec![0.0; m];
                        for (sp, part) in p.iter().enumerate() {
                            if sp == s {
                                continue;
                            }
                            for (o, v) in off.iter_mut().zip(part) {
                                *o += v;
                            }
                        }
                        off
                    };
                    let job = ShardJob {
                        n_total: n,
                        gamma: problem.gamma,
                        params: *params,
                        lr: self.opts.lr,
                        inner_iters: self.opts.inner_iters,
                        inner_tol: self.opts.tol,
                        tt: slice_t(&problem.times),
                        at: slice_t(&problem.reliability),
                        ut: cap.map(|c| slice_t(&c.usage)),
                        limits: limits.clone(),
                        xt: slice_t(&x),
                        off_count: offset(&p_count),
                        off_load: offset(&p_load),
                        off_rel: offset(&p_rel),
                        off_cap: offset(&p_cap),
                    };
                    move || job.run()
                })
                .collect();
            let results = solve_batch_on_pool(&self.pool, jobs);

            // Assemble the joint proposal in shard (input) order.
            let mut proposal = x.clone();
            for (res, &(c0, c1)) in results.into_iter().zip(&ranges) {
                let xs = res.expect("shard jobs are panic-free");
                debug_assert_eq!(xs.shape(), (c1 - c0, m));
                for j in 0..(c1 - c0) {
                    let xr = xs.row(j);
                    for i in 0..m {
                        proposal[(i, c0 + j)] = xr[i];
                    }
                }
            }
            let dir = proposal.axpy(-1.0, &x).expect("shape");
            objective::grad_x_into(problem, params, &x, &mut stats, &mut grad);
            let slope: f64 = grad
                .as_slice()
                .iter()
                .zip(dir.as_slice())
                .map(|(g, d)| g * d)
                .sum();
            if slope >= 0.0 {
                // Every block is at (or numerically past) its minimum.
                converged = true;
                break;
            }
            let mut alpha: f64 = 1.0;
            let mut accepted = false;
            for _ in 0..self.opts.max_backtracks {
                let trial = x.axpy(alpha, &dir).expect("shape");
                let f_trial = objective::value(problem, params, &trial);
                if f_trial <= f0 + self.opts.armijo_c * alpha * slope {
                    x = trial;
                    // Objective stagnation: two consecutive rounds below
                    // floating-point resolution mean the iterate is
                    // optimal to within reproducibility, even if the raw
                    // step-change noise floor sits above `tol`.
                    if (f0 - f_trial).abs() <= 1e-12 * (1.0 + f_trial.abs()) {
                        stagnant += 1;
                    } else {
                        stagnant = 0;
                    }
                    f0 = f_trial;
                    accepted = true;
                    break;
                }
                alpha *= 0.5;
            }
            if !accepted || stagnant >= 2 {
                converged = true;
                break;
            }
            if alpha * dir.max_abs() < self.opts.tol {
                converged = true;
                break;
            }
        }
        mfcp_obs::histogram("optim.sharded.rounds").record(rounds as f64);
        let objective = objective::value(problem, params, &x);
        RelaxedSolution {
            x,
            objective,
            iterations: rounds,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CapacityConstraint;
    use crate::solver::is_column_stochastic;
    use crate::speedup::SpeedupCurve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
        MatchingProblem::new(t, a, 0.75)
    }

    fn tight_opts() -> ShardedOptions {
        ShardedOptions {
            shards: 4,
            max_rounds: 3000,
            inner_iters: 8,
            lr: 0.2,
            tol: 1e-10,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_matches_monolithic_objective() {
        for (seed, with_cap) in [(3u64, false), (4, false), (5, true)] {
            let mut problem = random_problem(seed, 4, 37);
            if with_cap {
                let mut rng = StdRng::seed_from_u64(seed + 90);
                problem.capacity = Some(CapacityConstraint::new(
                    Matrix::from_fn(4, 37, |_, _| rng.gen_range(0.1..1.0)),
                    vec![30.0; 4],
                ));
            }
            let params = RelaxationParams::default();
            let solver = ShardedSolver::new(tight_opts(), 4);
            let sharded = solver.solve(&problem, &params);
            let mono = solve_relaxed(
                &problem,
                &params,
                &SolverOptions {
                    max_iters: 60_000,
                    lr: 0.2,
                    tol: 1e-12,
                    ..Default::default()
                },
            );
            assert!(sharded.converged, "seed {seed}: sharded did not converge");
            assert!(is_column_stochastic(&sharded.x, 1e-8), "seed {seed}");
            assert!(
                (sharded.objective - mono.objective).abs() <= 1e-6,
                "seed {seed} cap={with_cap}: sharded {} vs monolithic {}",
                sharded.objective,
                mono.objective
            );
        }
    }

    #[test]
    fn bitwise_identical_across_pool_sizes() {
        let problem = random_problem(11, 3, 29);
        let params = RelaxationParams::default();
        let opts = ShardedOptions {
            shards: 4,
            max_rounds: 40,
            ..Default::default()
        };
        let a = ShardedSolver::new(opts, 1).solve(&problem, &params);
        let b = ShardedSolver::new(opts, 4).solve(&problem, &params);
        assert_eq!(a.iterations, b.iterations);
        for (va, vb) in a.x.as_slice().iter().zip(b.x.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }

    #[test]
    fn nontrivial_speedup_falls_back_to_monolithic() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Matrix::from_fn(3, 12, |_, _| rng.gen_range(0.5..2.0));
        let a = Matrix::from_fn(3, 12, |_, _| rng.gen_range(0.7..1.0));
        let problem =
            MatchingProblem::with_speedup(t, a, 0.7, vec![SpeedupCurve::paper_parallel(); 3]);
        let params = RelaxationParams::default();
        let solver = ShardedSolver::new(ShardedOptions::default(), 2);
        let sharded = solver.solve(&problem, &params);
        let mono = solve_relaxed(&problem, &params, &solver.fallback_options());
        assert_eq!(sharded.x.as_slice(), mono.x.as_slice());
        assert_eq!(sharded.iterations, mono.iterations);
    }

    #[test]
    fn tiny_task_count_falls_back() {
        // One task cannot form 2 shards; the fallback must still solve.
        let problem = random_problem(13, 3, 1);
        let solver = ShardedSolver::new(ShardedOptions::default(), 2);
        let sol = solver.solve(&problem, &RelaxationParams::default());
        assert!(is_column_stochastic(&sol.x, 1e-6));
    }

    #[test]
    fn empty_problem() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let solver = ShardedSolver::new(ShardedOptions::default(), 2);
        let sol = solver.solve(&problem, &RelaxationParams::default());
        assert!(sol.converged);
        assert_eq!(sol.x.shape(), (2, 0));
    }

    #[test]
    fn shard_count_exceeding_tasks_is_clamped() {
        let problem = random_problem(17, 3, 5);
        let params = RelaxationParams::default();
        let opts = ShardedOptions {
            shards: 64,
            max_rounds: 500,
            inner_iters: 8,
            lr: 0.2,
            tol: 1e-10,
            ..Default::default()
        };
        let sol = ShardedSolver::new(opts, 4).solve(&problem, &params);
        assert!(is_column_stochastic(&sol.x, 1e-8));
        assert!(sol.objective.is_finite());
    }
}
