//! Fault-tolerant solving: health-guarded solver runs plus a fallback
//! ladder.
//!
//! The plain solvers in [`crate::solver`] assume well-posed inputs and
//! well-behaved parameters. Production traces are messier: predictors
//! occasionally emit `NaN` execution times, barrier parameters get tuned
//! to the edge of numerical validity, and a diverging run silently
//! poisons everything downstream. [`RobustSolver`] wraps the existing
//! solvers with per-iterate health checks (finiteness, objective
//! divergence, stall and wall-clock budgets) and, on failure, walks a
//! configurable ladder of progressively more conservative methods:
//!
//! 1. the configured first-order solver with the caller's parameters
//!    ([`FallbackStage::Primary`]),
//! 2. the same solver with backed-off relaxation parameters — smaller
//!    smooth-max `β`, larger entropy `ρ`, softer barrier `ε`
//!    ([`FallbackStage::BackedOff`]),
//! 3. damped Newton on the barrier problem, skipped outside the convex
//!    sequential setting ([`FallbackStage::Newton`]),
//! 4. mirror-descent PGD with conservative parameters
//!    ([`FallbackStage::MirrorDescent`]),
//! 5. Euclidean PGD with conservative parameters
//!    ([`FallbackStage::EuclideanPgd`]),
//! 6. feasible greedy rounding — LPT assignment plus reliability and
//!    capacity repair, which always produces a 0/1 column-stochastic
//!    matching ([`FallbackStage::GreedyRounding`]).
//!
//! Every attempt is recorded in [`SolveDiagnostics`] so callers can see
//! the recovery path taken instead of just a final answer.
//!
//! [`RobustSolver::solve_with_cache`] additionally seeds the primary
//! attempt from a [`crate::cache::WarmStartCache`]: a validated cache
//! hit runs one warm attempt before the cold ladder, and a diverging
//! warm attempt marks the entry stale and falls back to the exact cold
//! path, so warm starts can change only speed — never the answer.
//!
//! [`RobustSolver::solve_with_predictor`] adds one more rung ahead of
//! the cold ladder but *behind* exact cache hits: on a cache miss (or
//! stale entry), a [`crate::learned::DualPredictor`] may supply a
//! predicted seed, which is feasibility-repaired
//! ([`crate::learned::repair`]) before one predicted primary attempt
//! runs. A rejected or diverging prediction falls through the existing
//! ladder with a typed [`PredictionOutcome`] in the diagnostics, so a
//! wrong model costs at most one rung — never a wrong answer.

use std::fmt;
use std::time::{Duration, Instant};

use crate::budget::Budget;
use crate::cache::{fingerprint, warm_init, CacheOutcome, WarmStartCache, WarmStartEntry};
use crate::kkt::KktWorkspace;
use crate::learned::{repair, DualPredictor, RepairError};
use crate::objective::{self, BarrierKind, RelaxationParams};
use crate::problem::{Assignment, MatchingProblem};
use crate::solver::{
    is_column_stochastic, solve_relaxed_from_guarded, solve_relaxed_newton_guarded, uniform_init,
    NewtonOptions, PgdWorkspace, ProjectionKind, RelaxedSolution, SolverOptions,
};
use mfcp_linalg::Matrix;

/// A rung of the fallback ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackStage {
    /// The configured first-order solver with the caller's parameters.
    Primary,
    /// The primary solver re-run with backed-off relaxation parameters.
    BackedOff,
    /// Damped Newton on the barrier problem (convex setting only).
    Newton,
    /// Mirror-descent PGD with conservative parameters.
    MirrorDescent,
    /// Euclidean-projection PGD with conservative parameters.
    EuclideanPgd,
    /// Greedy LPT rounding plus reliability/capacity repair.
    GreedyRounding,
}

impl fmt::Display for FallbackStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FallbackStage::Primary => "primary",
            FallbackStage::BackedOff => "backoff",
            FallbackStage::Newton => "newton",
            FallbackStage::MirrorDescent => "mirror-descent",
            FallbackStage::EuclideanPgd => "euclidean-pgd",
            FallbackStage::GreedyRounding => "greedy-rounding",
        };
        f.write_str(name)
    }
}

/// Typed failure modes surfaced by [`RobustSolver`] instead of panics or
/// silent `NaN` propagation.
#[derive(Debug, Clone)]
pub enum SolveError {
    /// The problem data or relaxation parameters failed validation.
    InvalidInput(String),
    /// An iterate or its objective became `NaN`/`±∞`.
    NonFinite {
        /// Stage that produced the non-finite value.
        stage: FallbackStage,
        /// Iteration at which it was detected.
        iteration: usize,
    },
    /// The objective rose far above the best value seen in this stage.
    Diverged {
        /// Diverging stage.
        stage: FallbackStage,
        /// Iteration at which divergence was detected.
        iteration: usize,
        /// Objective value at detection.
        objective: f64,
        /// Best objective seen before divergence.
        reference: f64,
    },
    /// No measurable objective improvement for the configured window
    /// while the step-change tolerance was still unmet.
    Stalled {
        /// Stalled stage.
        stage: FallbackStage,
        /// Iteration at which the stall was declared.
        iteration: usize,
    },
    /// The caller's per-request [`Budget`] expired mid-stage: its
    /// deadline passed or its cancel token fired. Unlike
    /// [`SolveError::WallBudget`] (the solver's own safety limit), this
    /// is the *request's* latency contract; the ladder responds by
    /// skipping straight to the greedy rung.
    DeadlineExceeded {
        /// Stage that was running when the budget expired.
        stage: FallbackStage,
        /// Iteration at which the expiry was observed.
        iteration: usize,
    },
    /// The shared wall-clock budget ran out mid-stage.
    WallBudget {
        /// Stage that exceeded the budget.
        stage: FallbackStage,
        /// Iteration at which the budget check fired.
        iteration: usize,
        /// Elapsed seconds since the solve started.
        elapsed_secs: f64,
    },
    /// The Newton KKT system was singular.
    SingularKkt {
        /// Stage running the Newton iteration.
        stage: FallbackStage,
        /// Iteration whose factorization failed.
        iteration: usize,
    },
    /// A stage returned an iterate whose columns left the simplex.
    OffSimplex {
        /// Offending stage.
        stage: FallbackStage,
    },
    /// Every zeroth-order perturbation sample produced a non-finite
    /// directional derivative (see
    /// [`crate::zeroth::estimate_gradient_checked`]).
    AllSamplesNonFinite {
        /// Number of samples attempted.
        samples: usize,
    },
    /// Every rung of the ladder failed; diagnostics record each attempt.
    Exhausted {
        /// Full per-stage record of the failed solve.
        diagnostics: Box<SolveDiagnostics>,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidInput(reason) => write!(f, "invalid input: {reason}"),
            SolveError::NonFinite { stage, iteration } => {
                write!(f, "{stage}: non-finite iterate at iteration {iteration}")
            }
            SolveError::Diverged {
                stage,
                iteration,
                objective,
                reference,
            } => write!(
                f,
                "{stage}: objective diverged at iteration {iteration} ({objective} vs best {reference})"
            ),
            SolveError::Stalled { stage, iteration } => {
                write!(f, "{stage}: stalled without progress at iteration {iteration}")
            }
            SolveError::DeadlineExceeded { stage, iteration } => {
                write!(
                    f,
                    "{stage}: request budget expired at iteration {iteration}"
                )
            }
            SolveError::WallBudget {
                stage,
                iteration,
                elapsed_secs,
            } => write!(
                f,
                "{stage}: wall-clock budget exhausted at iteration {iteration} after {elapsed_secs:.3}s"
            ),
            SolveError::SingularKkt { stage, iteration } => {
                write!(f, "{stage}: singular KKT system at iteration {iteration}")
            }
            SolveError::OffSimplex { stage } => {
                write!(f, "{stage}: result columns left the probability simplex")
            }
            SolveError::AllSamplesNonFinite { samples } => {
                write!(
                    f,
                    "all {samples} zeroth-order samples gave non-finite directional derivatives"
                )
            }
            SolveError::Exhausted { diagnostics } => {
                write!(f, "all fallback stages failed: {}", diagnostics.path())
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Per-iterate health thresholds applied by [`RobustSolver`].
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Objective-based checks run every this many iterations (finiteness
    /// of the iterate itself is checked on every iteration).
    pub check_every: usize,
    /// Declare divergence when the objective exceeds
    /// `best + slack + ratio·|best|`.
    pub divergence_ratio: f64,
    /// Additive part of the divergence threshold.
    pub divergence_slack: f64,
    /// Declare a stall after this many consecutive objective checks
    /// without relative improvement beyond [`HealthPolicy::stall_tol`].
    pub stall_checks: usize,
    /// Relative improvement below which a check counts as stalled.
    pub stall_tol: f64,
    /// Stall checks only count while the solver's step magnitude exceeds
    /// this floor — an iterate crawling toward its step-change tolerance
    /// is converging, not stalled; large steps with no objective
    /// improvement are an oscillation.
    pub stall_step_floor: f64,
    /// Shared wall-clock budget for the whole ladder; `None` disables
    /// the budget. Greedy rounding always runs regardless.
    pub wall_limit: Option<Duration>,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            check_every: 10,
            divergence_ratio: 5.0,
            divergence_slack: 5.0,
            stall_checks: 25,
            stall_tol: 1e-12,
            stall_step_floor: 1e-4,
            wall_limit: Some(Duration::from_secs(30)),
        }
    }
}

/// Parameter back-off schedule used by [`FallbackStage::BackedOff`] and,
/// at full strength, by the conservative fallback rungs.
#[derive(Debug, Clone, Copy)]
pub struct BackoffSchedule {
    /// Number of backed-off retries before moving down the ladder.
    pub retries: usize,
    /// Multiplicative shrink applied to the smooth-max sharpness `β`
    /// per retry.
    pub beta_factor: f64,
    /// Lower clamp for the backed-off `β`.
    pub beta_floor: f64,
    /// Multiplicative growth applied to the entropy weight `ρ` per
    /// retry (a larger `ρ` keeps the KKT system better conditioned).
    pub rho_factor: f64,
    /// `ρ` is raised to at least this value before growing.
    pub rho_floor: f64,
    /// Multiplicative growth applied to the log-barrier cutoff `ε` per
    /// retry (a softer barrier keeps gradients finite near the
    /// constraint boundary).
    pub eps_factor: f64,
    /// `ε` is raised to at least this value before growing.
    pub eps_floor: f64,
}

impl Default for BackoffSchedule {
    fn default() -> Self {
        BackoffSchedule {
            retries: 2,
            beta_factor: 0.5,
            beta_floor: 0.5,
            rho_factor: 4.0,
            rho_floor: 1e-3,
            eps_factor: 10.0,
            eps_floor: 1e-4,
        }
    }
}

impl BackoffSchedule {
    /// Relaxation parameters after `level` rounds of back-off
    /// (`level = 0` returns `params` unchanged).
    pub fn backed_off(&self, params: &RelaxationParams, level: usize) -> RelaxationParams {
        let mut out = *params;
        for _ in 0..level {
            out.beta = (out.beta * self.beta_factor).max(self.beta_floor);
            out.rho = out.rho.max(self.rho_floor) * self.rho_factor;
            if let BarrierKind::Log { eps } = out.barrier {
                let softened = (eps.max(self.eps_floor) * self.eps_factor).min(0.1);
                out.barrier = BarrierKind::Log { eps: softened };
            }
        }
        out
    }
}

/// How a single ladder attempt ended.
#[derive(Debug, Clone)]
pub enum StageOutcome {
    /// The stage produced a healthy solution.
    Success,
    /// The stage aborted with a typed error.
    Failed(SolveError),
    /// The stage was not applicable and was skipped (reason attached).
    Skipped(String),
}

/// Record of one attempt at one rung of the ladder.
#[derive(Debug, Clone)]
pub struct StageAttempt {
    /// The rung attempted.
    pub stage: FallbackStage,
    /// Retry index within the rung (only [`FallbackStage::BackedOff`]
    /// retries; every other rung uses `0`).
    pub retry: usize,
    /// Iterations the underlying solver performed.
    pub iterations: usize,
    /// Whether the underlying solver reported convergence.
    pub converged: bool,
    /// Final objective of the attempt, when one was computed.
    pub objective: Option<f64>,
    /// Wall-clock seconds spent in this attempt.
    pub elapsed_secs: f64,
    /// Whether the attempt was seeded from a cached warm start instead
    /// of the uniform simplex point (see [`crate::cache`]).
    pub warm_start: bool,
    /// Whether the attempt was seeded from a repaired learned-dual
    /// prediction (see [`crate::learned`]). Mutually exclusive with
    /// `warm_start`: exact cache hits beat predictions.
    pub predicted: bool,
    /// Outcome of the attempt.
    pub outcome: StageOutcome,
}

/// How a learned-dual prediction fared during one
/// [`RobustSolver::solve_with_predictor`] call — the typed recovery
/// event for a bad model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionOutcome {
    /// The repaired prediction seeded the successful first attempt.
    Seeded,
    /// The raw prediction failed [`crate::learned::repair`] and never
    /// reached the solver; the cold ladder ran.
    Rejected(RepairError),
    /// The repaired prediction seeded an attempt that failed; the
    /// ladder fell through to the cold path (cost: exactly one rung).
    FellBack,
}

impl fmt::Display for PredictionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictionOutcome::Seeded => f.write_str("seeded"),
            PredictionOutcome::Rejected(err) => write!(f, "rejected ({err})"),
            PredictionOutcome::FellBack => f.write_str("fell-back"),
        }
    }
}

/// Diagnostics for a whole [`RobustSolver::solve`] call: every attempt in
/// order, whether recovery was needed, and total wall time.
#[derive(Debug, Clone)]
pub struct SolveDiagnostics {
    /// Every stage attempt, in execution order.
    pub attempts: Vec<StageAttempt>,
    /// True when at least one attempt failed before a later one
    /// succeeded (i.e. the ladder actually recovered something).
    pub recovered: bool,
    /// Total wall-clock seconds across all attempts.
    pub total_secs: f64,
    /// Warm-start cache outcome for this solve; `None` for plain
    /// [`RobustSolver::solve`] calls that never consulted a cache.
    pub cache: Option<CacheOutcome>,
    /// What happened to the learned-dual prediction, when a predictor
    /// was consulted and produced one; `None` when no prediction was
    /// attempted (no predictor, predictor abstained, or a cache hit
    /// pre-empted it).
    pub prediction: Option<PredictionOutcome>,
    /// Structured KKT factorizations performed during this solve (the
    /// Newton rung is currently the only in-solve KKT consumer).
    pub kkt_structured: u64,
    /// KKT factorizations that fell back to the dense LU path during
    /// this solve (non-positive `ρ`, near-active log barrier, or a
    /// structured factorization error).
    pub kkt_dense_fallbacks: u64,
}

impl SolveDiagnostics {
    /// Human-readable recovery path, e.g.
    /// `"primary x(non-finite) -> backoff#1 ok"`.
    pub fn path(&self) -> String {
        let mut parts = Vec::with_capacity(self.attempts.len());
        for a in &self.attempts {
            let mut label = if a.stage == FallbackStage::BackedOff {
                format!("{}#{}", a.stage, a.retry)
            } else {
                a.stage.to_string()
            };
            if a.warm_start {
                label = format!("warm-{label}");
            } else if a.predicted {
                label = format!("pred-{label}");
            }
            let mark = match &a.outcome {
                StageOutcome::Success => "ok".to_string(),
                StageOutcome::Failed(err) => format!("x({})", short_reason(err)),
                StageOutcome::Skipped(_) => "skipped".to_string(),
            };
            parts.push(format!("{label} {mark}"));
        }
        parts.join(" -> ")
    }

    /// Number of attempts that ended in [`StageOutcome::Failed`].
    pub fn failures(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| matches!(a.outcome, StageOutcome::Failed(_)))
            .count()
    }
}

fn short_reason(err: &SolveError) -> &'static str {
    match err {
        SolveError::InvalidInput(_) => "invalid-input",
        SolveError::NonFinite { .. } => "non-finite",
        SolveError::Diverged { .. } => "diverged",
        SolveError::Stalled { .. } => "stalled",
        SolveError::DeadlineExceeded { .. } => "deadline",
        SolveError::WallBudget { .. } => "wall-budget",
        SolveError::SingularKkt { .. } => "singular-kkt",
        SolveError::OffSimplex { .. } => "off-simplex",
        SolveError::AllSamplesNonFinite { .. } => "non-finite-samples",
        SolveError::Exhausted { .. } => "exhausted",
    }
}

/// A successful robust solve: the matching plus how it was obtained.
#[derive(Debug, Clone)]
pub struct RobustSolution {
    /// Column-stochastic matching (fractional, or 0/1 from the greedy
    /// rung).
    pub x: Matrix,
    /// Objective value of `x` (for the greedy rung, evaluated under the
    /// conservative backed-off parameters so it stays finite even when
    /// the caller's parameters are degenerate).
    pub objective: f64,
    /// The rung that produced the result.
    pub stage: FallbackStage,
    /// Discrete assignment, present when the greedy rung produced the
    /// result.
    pub assignment: Option<Assignment>,
    /// Full record of the recovery path.
    pub diagnostics: SolveDiagnostics,
}

/// Origin of a non-uniform primary seed threaded through the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedKind {
    /// A validated cache hit (previous optimum of this fingerprint).
    Warm,
    /// A repaired learned-dual prediction.
    Predicted,
}

/// The default rung order: primary, backed-off retries, Newton, mirror
/// descent, Euclidean PGD, greedy rounding.
pub fn default_ladder() -> Vec<FallbackStage> {
    vec![
        FallbackStage::Primary,
        FallbackStage::BackedOff,
        FallbackStage::Newton,
        FallbackStage::MirrorDescent,
        FallbackStage::EuclideanPgd,
        FallbackStage::GreedyRounding,
    ]
}

/// Fault-tolerant wrapper around the relaxed-matching solvers.
///
/// ```
/// use mfcp_linalg::Matrix;
/// use mfcp_optim::recovery::RobustSolver;
/// use mfcp_optim::{MatchingProblem, RelaxationParams};
///
/// let times = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
/// let rel = Matrix::filled(2, 2, 0.9);
/// let problem = MatchingProblem::new(times, rel, 0.8);
/// let sol = RobustSolver::new(RelaxationParams::default())
///     .solve(&problem)
///     .expect("healthy instance solves");
/// assert!(sol.objective.is_finite());
/// assert!(!sol.diagnostics.recovered);
/// ```
#[derive(Debug, Clone)]
pub struct RobustSolver {
    /// Relaxation parameters for the primary attempt.
    pub params: RelaxationParams,
    /// First-order solver options (projection kind, step size, budget).
    pub solver_opts: SolverOptions,
    /// Newton options for the [`FallbackStage::Newton`] rung.
    pub newton_opts: NewtonOptions,
    /// Health thresholds applied to every guarded stage.
    pub policy: HealthPolicy,
    /// Parameter back-off schedule.
    pub backoff: BackoffSchedule,
    /// Rung order; defaults to [`default_ladder`].
    pub ladder: Vec<FallbackStage>,
    /// Per-request solve budget (deadline and/or cancel token); defaults
    /// to [`Budget::unlimited`]. When the budget expires mid-solve the
    /// running stage aborts with [`SolveError::DeadlineExceeded`] and
    /// every remaining rung except greedy rounding is skipped, so an
    /// over-budget request still gets a feasible answer with bounded
    /// extra latency.
    pub budget: Budget,
}

impl RobustSolver {
    /// A robust solver with default options around `params`.
    pub fn new(params: RelaxationParams) -> Self {
        RobustSolver {
            params,
            solver_opts: SolverOptions::default(),
            newton_opts: NewtonOptions::default(),
            policy: HealthPolicy::default(),
            backoff: BackoffSchedule::default(),
            ladder: default_ladder(),
            budget: Budget::unlimited(),
        }
    }

    /// Returns a copy of this solver carrying `budget` (builder-style,
    /// for per-request daemons that share one configured solver).
    pub fn with_budget(&self, budget: Budget) -> Self {
        let mut solver = self.clone();
        solver.budget = budget;
        solver
    }

    /// The conservative parameters used by the fallback rungs (full
    /// back-off applied to the caller's parameters).
    pub fn safe_params(&self) -> RelaxationParams {
        self.backoff
            .backed_off(&self.params, self.backoff.retries.max(1))
    }

    /// Solves `problem`, walking the fallback ladder on failure.
    ///
    /// Returns the first healthy solution together with the full
    /// per-stage diagnostics, [`SolveError::InvalidInput`] when the
    /// problem data or parameters are malformed, or
    /// [`SolveError::Exhausted`] when every configured rung failed.
    pub fn solve(&self, problem: &MatchingProblem) -> Result<RobustSolution, SolveError> {
        let mut kkt_ws = KktWorkspace::default();
        self.solve_inner(problem, None, &mut kkt_ws)
    }

    /// Solves `problem`, seeding the primary attempt from `cache` when a
    /// valid entry exists for the problem's [`fingerprint`].
    ///
    /// A cache hit blends the cached optimum toward the interior (see
    /// [`crate::cache::warm_init`]) and runs one warm primary attempt
    /// before the regular ladder; if that attempt diverges the entry is
    /// marked stale (`cache.stale`) and the full cold ladder runs, so a
    /// poisoned entry can cost at most one failed attempt — never a
    /// wrong answer. Successful non-greedy solves refresh the cache.
    /// [`SolveDiagnostics::cache`] records the outcome.
    pub fn solve_with_cache(
        &self,
        problem: &MatchingProblem,
        cache: &mut WarmStartCache,
    ) -> Result<RobustSolution, SolveError> {
        self.solve_with_predictor(problem, cache, None)
    }

    /// Solves `problem` like [`RobustSolver::solve_with_cache`], but on a
    /// cache miss (or stale entry) consults `predictor` for a learned
    /// seed first.
    ///
    /// Seed precedence, best to worst: an exact cache hit (a previous
    /// optimum of this fingerprint), then a repaired prediction, then
    /// the cold uniform start. The raw prediction is passed through
    /// [`crate::learned::repair`]; a rejected prediction
    /// ([`PredictionOutcome::Rejected`]) never reaches the solver, and a
    /// repaired prediction whose attempt fails falls through the
    /// regular ladder ([`PredictionOutcome::FellBack`], counter
    /// `optim.learned.fallback`) — a wrong model costs at most one rung
    /// and can never change the answer. A successful predicted solve is
    /// reported as [`CacheOutcome::Predicted`] and stores its optimum in
    /// the cache, so later solves of the same fingerprint hit directly.
    pub fn solve_with_predictor(
        &self,
        problem: &MatchingProblem,
        cache: &mut WarmStartCache,
        predictor: Option<&dyn DualPredictor>,
    ) -> Result<RobustSolution, SolveError> {
        validate_problem(problem)?;
        validate_params(&self.params)?;
        let (m, n) = (problem.clusters(), problem.tasks());
        let key = fingerprint(problem, &self.params);
        let (outcome, warm) = cache.lookup(key, m, n);
        let mut seed = warm.map(|x| (x, SeedKind::Warm));
        let mut prediction = None;
        if seed.is_none() {
            if let Some(predictor) = predictor {
                let _span = mfcp_obs::span("learned.predict");
                if let Some(raw) = predictor.predict_duals(problem, &self.params) {
                    mfcp_obs::counter("optim.learned.predict").inc();
                    match repair(&raw, m, n) {
                        Ok(fixed) => {
                            mfcp_obs::counter("optim.learned.repaired").inc();
                            prediction = Some(PredictionOutcome::Seeded);
                            seed = Some((fixed.x, SeedKind::Predicted));
                        }
                        Err(err) => {
                            mfcp_obs::counter("optim.learned.rejected").inc();
                            mfcp_obs::trace::instant("learned.rejected", Some(key));
                            prediction = Some(PredictionOutcome::Rejected(err));
                        }
                    }
                }
            }
        }
        let warm_used = matches!(seed, Some((_, SeedKind::Warm)));
        let predicted = matches!(seed, Some((_, SeedKind::Predicted)));
        // Reuse the previous solve's factorization buffers for this
        // fingerprint, when the entry carries them.
        let mut kkt_ws = cache.take_kkt_workspace(key).unwrap_or_default();
        match self.solve_inner(problem, seed, &mut kkt_ws) {
            Ok(mut sol) => {
                let first_seed_failed = sol.diagnostics.attempts.first().is_some_and(|a| {
                    (a.warm_start || a.predicted) && !matches!(a.outcome, StageOutcome::Success)
                });
                sol.diagnostics.cache = Some(if warm_used && first_seed_failed {
                    cache.note_stale(key);
                    CacheOutcome::Stale
                } else if predicted && first_seed_failed {
                    mfcp_obs::counter("optim.learned.fallback").inc();
                    prediction = Some(PredictionOutcome::FellBack);
                    outcome
                } else if predicted {
                    CacheOutcome::Predicted
                } else {
                    outcome
                });
                sol.diagnostics.prediction = prediction;
                // Greedy 0/1 vertices are poor seeds for multiplicative
                // mirror-descent updates; only cache fractional optima.
                if sol.stage != FallbackStage::GreedyRounding {
                    cache.store(
                        key,
                        WarmStartEntry::from_solution(problem, &self.params, &sol.x, sol.objective),
                    );
                    cache.restore_kkt_workspace(key, kkt_ws);
                }
                Ok(sol)
            }
            Err(SolveError::Exhausted { mut diagnostics }) => {
                diagnostics.cache = Some(if warm_used {
                    cache.note_stale(key);
                    CacheOutcome::Stale
                } else {
                    if predicted {
                        mfcp_obs::counter("optim.learned.fallback").inc();
                        prediction = Some(PredictionOutcome::FellBack);
                    }
                    outcome
                });
                diagnostics.prediction = prediction;
                Err(SolveError::Exhausted { diagnostics })
            }
            Err(other) => Err(other),
        }
    }

    fn solve_inner(
        &self,
        problem: &MatchingProblem,
        mut seed: Option<(Matrix, SeedKind)>,
        kkt_ws: &mut KktWorkspace,
    ) -> Result<RobustSolution, SolveError> {
        let _span = mfcp_obs::span("robust_solve");
        mfcp_obs::counter("optim.robust.calls").inc();
        validate_problem(problem)?;
        validate_params(&self.params)?;
        let start = Instant::now();
        let convex = problem.speedup.iter().all(|c| c.is_trivial());
        let mut attempts: Vec<StageAttempt> = Vec::new();
        // One PGD workspace serves every first-order rung; the KKT
        // workspace (possibly carried over from a cached entry) serves
        // the Newton rung. Counter snapshots turn the workspace's
        // lifetime totals into per-solve diagnostics.
        let mut pgd_ws = PgdWorkspace::default();
        let kkt_base = (kkt_ws.structured_factors(), kkt_ws.dense_fallbacks());

        for &stage in &self.ladder {
            if stage != FallbackStage::GreedyRounding
                && (self.budget_spent(start) || self.budget.expired())
            {
                attempts.push(StageAttempt {
                    stage,
                    retry: 0,
                    iterations: 0,
                    converged: false,
                    objective: None,
                    elapsed_secs: 0.0,
                    warm_start: false,
                    predicted: false,
                    outcome: StageOutcome::Skipped(if self.budget.expired() {
                        "request budget expired".into()
                    } else {
                        "wall-clock budget exhausted".into()
                    }),
                });
                record_attempt_metrics(attempts.last().expect("just pushed"));
                continue;
            }
            match stage {
                FallbackStage::Primary => {
                    let opts = self.solver_opts;
                    // One seeded attempt first, when a cached optimum or
                    // a repaired prediction was supplied; its failure
                    // falls through to the regular cold primary attempt
                    // and the rest of the ladder.
                    if let Some(seeded) = seed.take() {
                        if let Some(sol) = self.try_pgd(
                            problem,
                            stage,
                            0,
                            self.params,
                            opts,
                            start,
                            Some(seeded),
                            &mut attempts,
                            &mut pgd_ws,
                        ) {
                            return Ok(self.finish(
                                sol,
                                stage,
                                None,
                                attempts,
                                start,
                                kkt_delta(kkt_ws, kkt_base),
                            ));
                        }
                    }
                    if let Some(sol) = self.try_pgd(
                        problem,
                        stage,
                        0,
                        self.params,
                        opts,
                        start,
                        None,
                        &mut attempts,
                        &mut pgd_ws,
                    ) {
                        return Ok(self.finish(
                            sol,
                            stage,
                            None,
                            attempts,
                            start,
                            kkt_delta(kkt_ws, kkt_base),
                        ));
                    }
                }
                FallbackStage::BackedOff => {
                    for retry in 1..=self.backoff.retries {
                        if self.budget_spent(start) || self.budget.expired() {
                            break;
                        }
                        let params = self.backoff.backed_off(&self.params, retry);
                        let opts = self.solver_opts;
                        if let Some(sol) = self.try_pgd(
                            problem,
                            stage,
                            retry,
                            params,
                            opts,
                            start,
                            None,
                            &mut attempts,
                            &mut pgd_ws,
                        ) {
                            return Ok(self.finish(
                                sol,
                                stage,
                                None,
                                attempts,
                                start,
                                kkt_delta(kkt_ws, kkt_base),
                            ));
                        }
                    }
                }
                FallbackStage::Newton => {
                    if !convex {
                        attempts.push(StageAttempt {
                            stage,
                            retry: 0,
                            iterations: 0,
                            converged: false,
                            objective: None,
                            elapsed_secs: 0.0,
                            warm_start: false,
                            predicted: false,
                            outcome: StageOutcome::Skipped(
                                "parallel speedup curves: Newton needs the convex sequential \
                                 setting"
                                    .into(),
                            ),
                        });
                        record_attempt_metrics(attempts.last().expect("just pushed"));
                        continue;
                    }
                    if let Some(sol) = self.try_newton(problem, start, &mut attempts, kkt_ws) {
                        return Ok(self.finish(
                            sol,
                            stage,
                            None,
                            attempts,
                            start,
                            kkt_delta(kkt_ws, kkt_base),
                        ));
                    }
                }
                FallbackStage::MirrorDescent | FallbackStage::EuclideanPgd => {
                    let mut opts = self.solver_opts;
                    opts.projection = if stage == FallbackStage::MirrorDescent {
                        ProjectionKind::MirrorDescent
                    } else {
                        ProjectionKind::Euclidean
                    };
                    let params = self.safe_params();
                    if let Some(sol) = self.try_pgd(
                        problem,
                        stage,
                        0,
                        params,
                        opts,
                        start,
                        None,
                        &mut attempts,
                        &mut pgd_ws,
                    ) {
                        return Ok(self.finish(
                            sol,
                            stage,
                            None,
                            attempts,
                            start,
                            kkt_delta(kkt_ws, kkt_base),
                        ));
                    }
                }
                FallbackStage::GreedyRounding => {
                    let t0 = Instant::now();
                    mfcp_obs::trace::begin(stage_trace_name(stage), None);
                    let mut asg = crate::exact::greedy_lpt(problem);
                    crate::rounding::repair_reliability(problem, &mut asg);
                    if problem.capacity.is_some() {
                        crate::rounding::repair_capacity(problem, &mut asg);
                    }
                    let x = asg.to_matrix(problem.clusters());
                    let objective = objective::value(problem, &self.safe_params(), &x);
                    let sol = RelaxedSolution {
                        x,
                        objective,
                        iterations: 0,
                        converged: true,
                    };
                    attempts.push(StageAttempt {
                        stage,
                        retry: 0,
                        iterations: 0,
                        converged: true,
                        objective: Some(objective),
                        elapsed_secs: t0.elapsed().as_secs_f64(),
                        warm_start: false,
                        predicted: false,
                        outcome: StageOutcome::Success,
                    });
                    mfcp_obs::trace::end(stage_trace_name(stage), None);
                    record_attempt_metrics(attempts.last().expect("just pushed"));
                    return Ok(self.finish(
                        sol,
                        stage,
                        Some(asg),
                        attempts,
                        start,
                        kkt_delta(kkt_ws, kkt_base),
                    ));
                }
            }
        }

        mfcp_obs::counter("optim.robust.exhausted").inc();
        let (kkt_structured, kkt_dense_fallbacks) = kkt_delta(kkt_ws, kkt_base);
        Err(SolveError::Exhausted {
            diagnostics: Box::new(SolveDiagnostics {
                recovered: false,
                total_secs: start.elapsed().as_secs_f64(),
                attempts,
                cache: None,
                prediction: None,
                kkt_structured,
                kkt_dense_fallbacks,
            }),
        })
    }

    fn budget_spent(&self, start: Instant) -> bool {
        self.policy
            .wall_limit
            .is_some_and(|limit| start.elapsed() >= limit)
    }

    /// Runs a guarded PGD attempt; records it and returns the solution
    /// on success.
    #[allow(clippy::too_many_arguments)]
    fn try_pgd(
        &self,
        problem: &MatchingProblem,
        stage: FallbackStage,
        retry: usize,
        params: RelaxationParams,
        opts: SolverOptions,
        start: Instant,
        seed: Option<(Matrix, SeedKind)>,
        attempts: &mut Vec<StageAttempt>,
        pgd_ws: &mut PgdWorkspace,
    ) -> Option<RelaxedSolution> {
        let t0 = Instant::now();
        mfcp_obs::trace::begin(stage_trace_name(stage), Some(retry as u64));
        // The softened barrier cutoff is this ladder's μ-style continuation
        // knob; its per-attempt trajectory shows how far back-off had to go.
        if let BarrierKind::Log { eps } = params.barrier {
            mfcp_obs::histogram("optim.robust.barrier_eps").record(eps);
        }
        let mut guard = GuardRunner::new(problem, params, &self.policy, &self.budget, start, stage);
        let kind = seed.as_ref().map(|(_, kind)| *kind);
        let x0 = match seed {
            // Both seed kinds are blended toward the interior —
            // projection output can carry exact zeros, which
            // multiplicative mirror-descent updates could never recover
            // from — but at very different strengths: a cached optimum
            // only needs its exact zeros lifted (`1e-9`), while a
            // learned prediction misplaces mass at the model's error
            // scale and needs a floor mirror descent can grow from
            // (see [`crate::learned::PREDICTED_BLEND`]).
            Some((x, SeedKind::Warm)) => warm_init(&x),
            Some((x, SeedKind::Predicted)) => crate::learned::predicted_init(&x),
            None => uniform_init(problem.clusters(), problem.tasks()),
        };
        let result = solve_relaxed_from_guarded(
            problem,
            &params,
            &opts,
            x0,
            &mut |it, x, step| guard.check(it, x, step),
            pgd_ws,
        );
        self.record(stage, retry, t0, result, kind, attempts)
    }

    /// Runs the guarded Newton attempt with conservative parameters.
    fn try_newton(
        &self,
        problem: &MatchingProblem,
        start: Instant,
        attempts: &mut Vec<StageAttempt>,
        kkt_ws: &mut KktWorkspace,
    ) -> Option<RelaxedSolution> {
        let stage = FallbackStage::Newton;
        let params = self.safe_params();
        let t0 = Instant::now();
        mfcp_obs::trace::begin(stage_trace_name(stage), None);
        let mut guard = GuardRunner::new(problem, params, &self.policy, &self.budget, start, stage);
        let result = solve_relaxed_newton_guarded(
            problem,
            &params,
            &self.newton_opts,
            &mut |it, x, step| guard.check(it, x, step),
            kkt_ws,
        );
        self.record(stage, 0, t0, result, None, attempts)
    }

    /// Health-checks a finished attempt, records it, and returns the
    /// solution when it is usable.
    fn record(
        &self,
        stage: FallbackStage,
        retry: usize,
        t0: Instant,
        result: Result<RelaxedSolution, SolveError>,
        seed: Option<SeedKind>,
        attempts: &mut Vec<StageAttempt>,
    ) -> Option<RelaxedSolution> {
        let warm_start = seed == Some(SeedKind::Warm);
        let predicted = seed == Some(SeedKind::Predicted);
        let elapsed_secs = t0.elapsed().as_secs_f64();
        let iters = match &result {
            Ok(sol) => sol.iterations,
            Err(err) => error_iteration(err),
        };
        mfcp_obs::trace::end(stage_trace_name(stage), Some(iters as u64));
        match result {
            Ok(sol) => {
                let healthy =
                    sol.objective.is_finite() && sol.x.as_slice().iter().all(|v| v.is_finite());
                let on_simplex = healthy && is_column_stochastic(&sol.x, 1e-6);
                let outcome = if !healthy {
                    StageOutcome::Failed(SolveError::NonFinite {
                        stage,
                        iteration: sol.iterations,
                    })
                } else if !on_simplex {
                    StageOutcome::Failed(SolveError::OffSimplex { stage })
                } else {
                    StageOutcome::Success
                };
                let usable = matches!(outcome, StageOutcome::Success);
                attempts.push(StageAttempt {
                    stage,
                    retry,
                    iterations: sol.iterations,
                    converged: sol.converged,
                    objective: Some(sol.objective),
                    elapsed_secs,
                    warm_start,
                    predicted,
                    outcome,
                });
                record_attempt_metrics(attempts.last().expect("just pushed"));
                usable.then_some(sol)
            }
            Err(err) => {
                attempts.push(StageAttempt {
                    stage,
                    retry,
                    iterations: error_iteration(&err),
                    converged: false,
                    objective: None,
                    elapsed_secs,
                    warm_start,
                    predicted,
                    outcome: StageOutcome::Failed(err),
                });
                record_attempt_metrics(attempts.last().expect("just pushed"));
                None
            }
        }
    }

    fn finish(
        &self,
        sol: RelaxedSolution,
        stage: FallbackStage,
        assignment: Option<Assignment>,
        attempts: Vec<StageAttempt>,
        start: Instant,
        kkt: (u64, u64),
    ) -> RobustSolution {
        let recovered = attempts
            .iter()
            .any(|a| matches!(a.outcome, StageOutcome::Failed(_)));
        if recovered {
            mfcp_obs::counter("optim.robust.recovered").inc();
        }
        RobustSolution {
            x: sol.x,
            objective: sol.objective,
            stage,
            assignment,
            diagnostics: SolveDiagnostics {
                attempts,
                recovered,
                total_secs: start.elapsed().as_secs_f64(),
                cache: None,
                prediction: None,
                kkt_structured: kkt.0,
                kkt_dense_fallbacks: kkt.1,
            },
        }
    }
}

/// Per-solve deltas of a workspace's lifetime factorization counters
/// relative to the snapshot taken at the start of the solve.
fn kkt_delta(ws: &KktWorkspace, base: (u64, u64)) -> (u64, u64) {
    (
        ws.structured_factors().saturating_sub(base.0),
        ws.dense_fallbacks().saturating_sub(base.1),
    )
}

/// Flight-recorder event name for a ladder stage. Attempts that actually
/// run emit a begin/end pair under this name; skipped stages emit an
/// instant, so the trace timeline shows where the ladder jumped.
fn stage_trace_name(stage: FallbackStage) -> &'static str {
    match stage {
        FallbackStage::Primary => "robust.primary",
        FallbackStage::BackedOff => "robust.backoff",
        FallbackStage::Newton => "robust.newton",
        FallbackStage::MirrorDescent => "robust.mirror-descent",
        FallbackStage::EuclideanPgd => "robust.euclidean-pgd",
        FallbackStage::GreedyRounding => "robust.greedy-rounding",
    }
}

/// Feeds one finished [`StageAttempt`] into the observability registry:
/// the attempt counter, per-stage outcome counters, and the wall-time /
/// iteration histograms that the `report` bin surfaces.
fn record_attempt_metrics(attempt: &StageAttempt) {
    if !mfcp_obs::enabled() {
        return;
    }
    mfcp_obs::counter("optim.robust.attempts").inc();
    let suffix = match attempt.outcome {
        StageOutcome::Success => "ok",
        StageOutcome::Failed(_) => "failed",
        StageOutcome::Skipped(_) => "skipped",
    };
    mfcp_obs::counter(&format!("optim.robust.stage.{}.{suffix}", attempt.stage)).inc();
    if matches!(attempt.outcome, StageOutcome::Skipped(_)) {
        mfcp_obs::trace::instant(stage_trace_name(attempt.stage), Some(attempt.retry as u64));
    } else {
        mfcp_obs::histogram("optim.robust.attempt_secs").record(attempt.elapsed_secs);
        mfcp_obs::histogram("optim.robust.attempt_iters").record(attempt.iterations as f64);
    }
}

fn error_iteration(err: &SolveError) -> usize {
    match err {
        SolveError::NonFinite { iteration, .. }
        | SolveError::Diverged { iteration, .. }
        | SolveError::Stalled { iteration, .. }
        | SolveError::DeadlineExceeded { iteration, .. }
        | SolveError::WallBudget { iteration, .. }
        | SolveError::SingularKkt { iteration, .. } => *iteration,
        _ => 0,
    }
}

/// Per-iterate health state threaded through a guarded solver run.
struct GuardRunner<'a> {
    problem: &'a MatchingProblem,
    params: RelaxationParams,
    policy: &'a HealthPolicy,
    budget: &'a Budget,
    start: Instant,
    stage: FallbackStage,
    best: f64,
    stall_count: usize,
}

impl<'a> GuardRunner<'a> {
    fn new(
        problem: &'a MatchingProblem,
        params: RelaxationParams,
        policy: &'a HealthPolicy,
        budget: &'a Budget,
        start: Instant,
        stage: FallbackStage,
    ) -> Self {
        GuardRunner {
            problem,
            params,
            policy,
            budget,
            start,
            stage,
            best: f64::INFINITY,
            stall_count: 0,
        }
    }

    fn check(&mut self, iteration: usize, x: &Matrix, step: f64) -> Result<(), SolveError> {
        // The request budget is the tightest contract: checked first, on
        // every accepted iterate of both the PGD and Newton/KKT loops.
        if self.budget.expired() {
            return Err(SolveError::DeadlineExceeded {
                stage: self.stage,
                iteration,
            });
        }
        if x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(SolveError::NonFinite {
                stage: self.stage,
                iteration,
            });
        }
        if let Some(limit) = self.policy.wall_limit {
            if self.start.elapsed() >= limit {
                return Err(SolveError::WallBudget {
                    stage: self.stage,
                    iteration,
                    elapsed_secs: self.start.elapsed().as_secs_f64(),
                });
            }
        }
        if iteration == 1 || iteration.is_multiple_of(self.policy.check_every.max(1)) {
            let obj = objective::value(self.problem, &self.params, x);
            if !obj.is_finite() {
                return Err(SolveError::NonFinite {
                    stage: self.stage,
                    iteration,
                });
            }
            if self.best.is_finite() {
                let ceiling = self.best
                    + self.policy.divergence_slack
                    + self.policy.divergence_ratio * self.best.abs();
                if obj > ceiling {
                    return Err(SolveError::Diverged {
                        stage: self.stage,
                        iteration,
                        objective: obj,
                        reference: self.best,
                    });
                }
                let improved = obj < self.best - self.policy.stall_tol * (1.0 + self.best.abs());
                if improved {
                    self.stall_count = 0;
                } else if step > self.policy.stall_step_floor {
                    // Sizable steps with no objective improvement: the
                    // iterate is bouncing, not converging.
                    self.stall_count += 1;
                    if self.stall_count > self.policy.stall_checks {
                        return Err(SolveError::Stalled {
                            stage: self.stage,
                            iteration,
                        });
                    }
                }
            }
            if obj < self.best {
                self.best = obj;
            }
        }
        Ok(())
    }
}

fn validate_problem(problem: &MatchingProblem) -> Result<(), SolveError> {
    let (m, n) = (problem.clusters(), problem.tasks());
    if m == 0 && n > 0 {
        return Err(SolveError::InvalidInput(format!(
            "{n} tasks but no clusters to place them on"
        )));
    }
    if problem.reliability.shape() != (m, n) {
        return Err(SolveError::InvalidInput(format!(
            "reliability shape {:?} does not match times shape {:?}",
            problem.reliability.shape(),
            (m, n)
        )));
    }
    if problem.speedup.len() != m {
        return Err(SolveError::InvalidInput(format!(
            "{} speedup curves for {m} clusters",
            problem.speedup.len()
        )));
    }
    if !problem.gamma.is_finite() {
        return Err(SolveError::InvalidInput(format!(
            "non-finite reliability threshold gamma = {}",
            problem.gamma
        )));
    }
    for i in 0..m {
        for j in 0..n {
            let t = problem.times[(i, j)];
            if !t.is_finite() || t < 0.0 {
                return Err(SolveError::InvalidInput(format!(
                    "times[({i}, {j})] = {t} (must be finite and non-negative)"
                )));
            }
            let a = problem.reliability[(i, j)];
            if !a.is_finite() || !(0.0..=1.0).contains(&a) {
                return Err(SolveError::InvalidInput(format!(
                    "reliability[({i}, {j})] = {a} (must be in [0, 1])"
                )));
            }
        }
    }
    if let Some(cap) = &problem.capacity {
        if cap.usage.shape() != (m, n) {
            return Err(SolveError::InvalidInput(format!(
                "capacity usage shape {:?} does not match {:?}",
                cap.usage.shape(),
                (m, n)
            )));
        }
        if cap.limits.len() != m {
            return Err(SolveError::InvalidInput(format!(
                "{} capacity limits for {m} clusters",
                cap.limits.len()
            )));
        }
        if cap
            .usage
            .as_slice()
            .iter()
            .any(|u| !u.is_finite() || *u < 0.0)
        {
            return Err(SolveError::InvalidInput(
                "capacity usage must be finite and non-negative".into(),
            ));
        }
        if cap.limits.iter().any(|l| !l.is_finite() || *l <= 0.0) {
            return Err(SolveError::InvalidInput(
                "capacity limits must be finite and positive".into(),
            ));
        }
    }
    Ok(())
}

fn validate_params(params: &RelaxationParams) -> Result<(), SolveError> {
    if !params.beta.is_finite() || params.beta <= 0.0 {
        return Err(SolveError::InvalidInput(format!(
            "smooth-max beta = {} (must be finite and positive)",
            params.beta
        )));
    }
    if !params.lambda.is_finite() || params.lambda < 0.0 {
        return Err(SolveError::InvalidInput(format!(
            "barrier weight lambda = {} (must be finite and non-negative)",
            params.lambda
        )));
    }
    if !params.rho.is_finite() || params.rho < 0.0 {
        return Err(SolveError::InvalidInput(format!(
            "entropy weight rho = {} (must be finite and non-negative)",
            params.rho
        )));
    }
    if let BarrierKind::Log { eps } = params.barrier {
        if !eps.is_finite() || eps < 0.0 {
            return Err(SolveError::InvalidInput(format!(
                "log-barrier eps = {eps} (must be finite and non-negative)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::SpeedupCurve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
        MatchingProblem::new(t, a, 0.75)
    }

    /// A problem that is reliability-infeasible at the uniform starting
    /// point: with a zero-cutoff log barrier the very first gradient is
    /// `-∞` and the plain solver's iterates go `NaN` immediately.
    fn degenerate_barrier_setup() -> (MatchingProblem, RelaxationParams) {
        let t = Matrix::filled(2, 4, 1.0);
        let a = Matrix::filled(2, 4, 0.7);
        let problem = MatchingProblem::new(t, a, 0.95);
        let params = RelaxationParams {
            barrier: BarrierKind::Log { eps: 0.0 },
            ..Default::default()
        };
        (problem, params)
    }

    #[test]
    fn healthy_problem_succeeds_on_primary() {
        let problem = random_problem(1, 3, 6);
        let mut solver = RobustSolver::new(RelaxationParams::default());
        // At the default lr = 0.8 mirror descent enters a large-step limit
        // cycle on this instance (which the stall guard rightly flags and
        // the ladder recovers from); lr = 0.3 converges monotonically.
        solver.solver_opts.lr = 0.3;
        let sol = solver.solve(&problem).expect("healthy instance solves");
        assert_eq!(
            sol.stage,
            FallbackStage::Primary,
            "path: {} | attempts: {:?}",
            sol.diagnostics.path(),
            sol.diagnostics.attempts
        );
        assert!(!sol.diagnostics.recovered);
        assert_eq!(sol.diagnostics.attempts.len(), 1);
        assert!(is_column_stochastic(&sol.x, 1e-6));
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn zero_eps_barrier_recovers_through_backoff() {
        let (problem, params) = degenerate_barrier_setup();
        // The unguarded solver silently returns a NaN matching here.
        let raw = crate::solver::solve_relaxed(&problem, &params, &SolverOptions::default());
        assert!(
            raw.x.as_slice().iter().any(|v| v.is_nan()),
            "setup must actually break the plain solver"
        );

        let sol = RobustSolver::new(params)
            .solve(&problem)
            .expect("ladder must recover");
        assert!(
            sol.diagnostics.recovered,
            "path: {}",
            sol.diagnostics.path()
        );
        assert_ne!(sol.stage, FallbackStage::Primary);
        assert!(is_column_stochastic(&sol.x, 1e-6));
        assert!(sol.x.as_slice().iter().all(|v| v.is_finite()));
        assert!(sol.objective.is_finite());
        // The primary attempt must be on record as a non-finite failure.
        let first = &sol.diagnostics.attempts[0];
        assert_eq!(first.stage, FallbackStage::Primary);
        assert!(
            matches!(
                first.outcome,
                StageOutcome::Failed(SolveError::NonFinite { .. })
            ),
            "unexpected first outcome: {:?}",
            first.outcome
        );
    }

    #[test]
    fn nan_times_rejected_as_invalid_input() {
        let mut problem = random_problem(2, 2, 3);
        problem.times[(0, 0)] = f64::NAN;
        let err = RobustSolver::new(RelaxationParams::default())
            .solve(&problem)
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn nan_beta_rejected_as_invalid_input() {
        let problem = random_problem(3, 2, 3);
        let params = RelaxationParams {
            beta: f64::NAN,
            ..Default::default()
        };
        let err = RobustSolver::new(params).solve(&problem).unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn tasks_without_clusters_rejected() {
        let problem = MatchingProblem::new(Matrix::zeros(0, 3), Matrix::zeros(0, 3), 0.5);
        let err = RobustSolver::new(RelaxationParams::default())
            .solve(&problem)
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn truncated_ladder_exhausts_with_diagnostics() {
        let (problem, params) = degenerate_barrier_setup();
        let mut solver = RobustSolver::new(params);
        solver.ladder = vec![FallbackStage::Primary];
        let err = solver.solve(&problem).unwrap_err();
        let SolveError::Exhausted { diagnostics } = err else {
            panic!("expected exhaustion, got {err}");
        };
        assert_eq!(diagnostics.attempts.len(), 1);
        assert_eq!(diagnostics.failures(), 1);
    }

    #[test]
    fn greedy_rung_alone_produces_feasible_assignment() {
        let problem = random_problem(4, 3, 7);
        let mut solver = RobustSolver::new(RelaxationParams::default());
        solver.ladder = vec![FallbackStage::GreedyRounding];
        let sol = solver.solve(&problem).expect("greedy rung is infallible");
        assert_eq!(sol.stage, FallbackStage::GreedyRounding);
        let asg = sol.assignment.expect("greedy rung returns an assignment");
        assert_eq!(asg.tasks(), 7);
        assert!(is_column_stochastic(&sol.x, 1e-12));
        assert!(sol.x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn newton_skipped_for_parallel_speedups() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Matrix::from_fn(2, 4, |_, _| rng.gen_range(0.5..2.0));
        let a = Matrix::from_fn(2, 4, |_, _| rng.gen_range(0.7..1.0));
        let problem =
            MatchingProblem::with_speedup(t, a, 0.95, vec![SpeedupCurve::paper_parallel(); 2]);
        let params = RelaxationParams {
            barrier: BarrierKind::Log { eps: 0.0 },
            ..Default::default()
        };
        // Skip the backed-off retries (which would already fix the broken
        // barrier) so the ladder actually reaches the Newton rung.
        let mut solver = RobustSolver::new(params);
        solver.ladder = vec![
            FallbackStage::Primary,
            FallbackStage::Newton,
            FallbackStage::GreedyRounding,
        ];
        let sol = solver
            .solve(&problem)
            .expect("ladder must not panic on the parallel setting");
        assert!(
            sol.diagnostics.attempts.iter().any(|a| {
                a.stage == FallbackStage::Newton && matches!(a.outcome, StageOutcome::Skipped(_))
            }),
            "Newton must be recorded as skipped, path: {}",
            sol.diagnostics.path()
        );
        assert!(is_column_stochastic(&sol.x, 1e-6));
    }

    #[test]
    fn empty_task_set_is_fine() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let sol = RobustSolver::new(RelaxationParams::default())
            .solve(&problem)
            .expect("empty task set solves trivially");
        assert_eq!(sol.x.shape(), (2, 0));
    }

    #[test]
    fn backoff_schedule_softens_parameters() {
        let schedule = BackoffSchedule::default();
        let params = RelaxationParams {
            beta: 8.0,
            rho: 0.0,
            barrier: BarrierKind::Log { eps: 0.0 },
            ..Default::default()
        };
        let once = schedule.backed_off(&params, 1);
        assert!((once.beta - 4.0).abs() < 1e-12);
        assert!(once.rho > 0.0);
        let BarrierKind::Log { eps } = once.barrier else {
            panic!("barrier kind must be preserved");
        };
        assert!(eps > 0.0);
        // Floors hold under heavy back-off.
        let deep = schedule.backed_off(&params, 40);
        assert!(deep.beta >= schedule.beta_floor);
        let BarrierKind::Log { eps } = deep.barrier else {
            panic!("barrier kind must be preserved");
        };
        assert!(eps <= 0.1 + 1e-12);
    }

    #[test]
    fn diagnostics_path_is_readable() {
        let (problem, params) = degenerate_barrier_setup();
        let sol = RobustSolver::new(params).solve(&problem).unwrap();
        let path = sol.diagnostics.path();
        assert!(path.contains("primary x(non-finite)"), "path: {path}");
        assert!(path.contains("ok"), "path: {path}");
    }

    fn cached_solver() -> RobustSolver {
        let mut solver = RobustSolver::new(RelaxationParams::default());
        // Converge tightly so warm and cold land on the same unique
        // entropic optimum (the default budget of 400 iterations stops
        // short of the 1e-8 objective agreement these tests assert).
        solver.solver_opts.lr = 0.3;
        solver.solver_opts.max_iters = 20_000;
        solver.solver_opts.tol = 1e-12;
        solver
    }

    #[test]
    fn warm_cache_hit_matches_cold_solve() {
        let problem = random_problem(7, 3, 6);
        let solver = cached_solver();
        let cold = solver.solve(&problem).expect("cold solve");

        let mut cache = WarmStartCache::new();
        let first = solver
            .solve_with_cache(&problem, &mut cache)
            .expect("miss populates");
        assert_eq!(first.diagnostics.cache, Some(CacheOutcome::Miss));
        let warm = solver
            .solve_with_cache(&problem, &mut cache)
            .expect("hit solves");
        assert_eq!(warm.diagnostics.cache, Some(CacheOutcome::Hit));
        assert!(warm.diagnostics.attempts[0].warm_start);
        assert!(warm.diagnostics.path().starts_with("warm-primary"));
        assert!((warm.objective - cold.objective).abs() < 1e-8);
        // Warm convergence from (near) the optimum takes far fewer
        // iterations than the cold run.
        assert!(
            warm.diagnostics.attempts[0].iterations <= cold.diagnostics.attempts[0].iterations,
            "warm {} vs cold {}",
            warm.diagnostics.attempts[0].iterations,
            cold.diagnostics.attempts[0].iterations
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn poisoned_nan_duals_fall_back_to_cold() {
        let problem = random_problem(8, 3, 5);
        let solver = cached_solver();
        let mut cache = WarmStartCache::new();
        solver
            .solve_with_cache(&problem, &mut cache)
            .expect("populate");
        let key = fingerprint(&problem, &solver.params);
        cache.entry_mut(key).expect("entry exists").duals[0] = f64::NAN;

        let cold = solver.solve(&problem).expect("plain solve");
        let sol = solver
            .solve_with_cache(&problem, &mut cache)
            .expect("poisoned entry must not panic or fail the solve");
        assert_eq!(sol.diagnostics.cache, Some(CacheOutcome::Stale));
        assert!(
            !sol.diagnostics.attempts[0].warm_start,
            "stale entry must be dropped before the solver runs"
        );
        assert_eq!(sol.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(sol.x.as_slice(), cold.x.as_slice());
        assert_eq!(cache.stats().stale, 1);
    }

    #[test]
    fn wrong_dimension_cached_assignment_falls_back_to_cold() {
        let problem = random_problem(9, 3, 5);
        let solver = cached_solver();
        let mut cache = WarmStartCache::new();
        solver
            .solve_with_cache(&problem, &mut cache)
            .expect("populate");
        let key = fingerprint(&problem, &solver.params);
        cache.entry_mut(key).expect("entry exists").x = Matrix::filled(2, 2, 0.5);

        let cold = solver.solve(&problem).expect("plain solve");
        let sol = solver
            .solve_with_cache(&problem, &mut cache)
            .expect("wrong-dimension entry must not panic");
        assert_eq!(sol.diagnostics.cache, Some(CacheOutcome::Stale));
        assert_eq!(sol.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(cache.stats().stale, 1);
    }

    #[test]
    fn warm_divergence_falls_back_to_cold_ladder() {
        // The degenerate barrier breaks the warm attempt (the entry
        // itself validates fine), so the solver must record the warm
        // failure, mark the entry stale, and recover through the ladder
        // with the same answer as a plain solve.
        let (problem, params) = degenerate_barrier_setup();
        let solver = RobustSolver::new(params);
        let (m, n) = (problem.clusters(), problem.tasks());
        let mut cache = WarmStartCache::new();
        let key = fingerprint(&problem, &solver.params);
        cache.store(
            key,
            WarmStartEntry {
                x: uniform_init(m, n),
                objective: 1.0,
                duals: vec![0.0; n],
                kkt: None,
                stored_at: 0,
            },
        );

        let cold = solver.solve(&problem).expect("plain ladder recovers");
        let sol = solver
            .solve_with_cache(&problem, &mut cache)
            .expect("warm divergence must fall back, not fail");
        assert_eq!(sol.diagnostics.cache, Some(CacheOutcome::Stale));
        let first = &sol.diagnostics.attempts[0];
        assert!(first.warm_start, "path: {}", sol.diagnostics.path());
        assert!(
            matches!(first.outcome, StageOutcome::Failed(_)),
            "warm attempt must be on record as failed"
        );
        assert!(sol.diagnostics.recovered);
        assert_eq!(sol.stage, cold.stage);
        assert_eq!(sol.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(sol.x.as_slice(), cold.x.as_slice());
        assert_eq!(cache.stats().stale, 1);
        // The divergent entry was evicted and replaced by the recovered
        // solution, not left in place to diverge again.
        let entry = cache
            .entry_mut(key)
            .expect("recovered solve refreshed the entry");
        assert_eq!(entry.x.as_slice(), cold.x.as_slice());
    }

    #[test]
    fn greedy_results_are_not_cached() {
        let problem = random_problem(10, 3, 7);
        let mut solver = cached_solver();
        solver.ladder = vec![FallbackStage::GreedyRounding];
        let mut cache = WarmStartCache::new();
        solver
            .solve_with_cache(&problem, &mut cache)
            .expect("greedy rung is infallible");
        assert!(cache.is_empty(), "0/1 vertices must not be cached");
    }

    #[test]
    fn expired_budget_degrades_to_greedy_deterministically() {
        let problem = random_problem(21, 3, 8);
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let solver = RobustSolver::new(RelaxationParams::default())
            .with_budget(Budget::unlimited().with_cancel(token));

        let sol = solver
            .solve(&problem)
            .expect("an expired budget still yields a feasible matching");
        assert_eq!(sol.stage, FallbackStage::GreedyRounding);
        assert!(is_column_stochastic(&sol.x, 1e-9));
        // Every optimizing rung must be on record as budget-skipped, not
        // silently dropped.
        let skipped: Vec<_> = sol
            .diagnostics
            .attempts
            .iter()
            .filter(
                |a| matches!(&a.outcome, StageOutcome::Skipped(r) if r.contains("request budget")),
            )
            .collect();
        assert_eq!(skipped.len(), sol.diagnostics.attempts.len() - 1);

        // Degradation is deterministic: a second run under the same fired
        // token reproduces the assignment bit for bit.
        let again = solver.solve(&problem).expect("greedy rung is infallible");
        assert_eq!(again.objective.to_bits(), sol.objective.to_bits());
        assert_eq!(again.x.as_slice(), sol.x.as_slice());
    }

    #[test]
    fn guard_reports_deadline_exceeded_mid_iteration() {
        let problem = random_problem(22, 2, 4);
        let params = RelaxationParams::default();
        let policy = HealthPolicy::default();
        let token = crate::budget::CancelToken::new();
        let budget = Budget::unlimited().with_cancel(token.clone());
        let mut guard = GuardRunner::new(
            &problem,
            params,
            &policy,
            &budget,
            Instant::now(),
            FallbackStage::Primary,
        );
        let x = crate::solver::uniform_init(problem.clusters(), problem.tasks());

        // Healthy while the token is quiet...
        guard.check(0, &x, 1.0).expect("live budget passes");
        // ...and a typed abort at the very next iterate once it fires.
        token.cancel();
        let err = guard.check(1, &x, 1.0).unwrap_err();
        match err {
            SolveError::DeadlineExceeded { stage, iteration } => {
                assert_eq!(stage, FallbackStage::Primary);
                assert_eq!(iteration, 1);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(short_reason(&err), "deadline");
    }
}
