//! Implicit differentiation of the relaxed matching optimum through its
//! KKT stationarity system (paper §3.3, Eq. 13–15) — the MFCP-AD path.
//!
//! At the relaxed optimum returned by Algorithm 1 the iterate is strictly
//! interior (the entropy term keeps every `x_ij > 0`), so the only active
//! constraints are the per-task simplex equalities `Σ_i x_ij = 1`.
//! Stationarity then reads
//!
//! ```text
//! ∇_X F(X*, T, A) + Dᵀ ν = 0,      D X* = 1
//! ```
//!
//! and total differentiation gives the symmetric saddle system
//!
//! ```text
//! [ H   Dᵀ ] [ dX ]     [ ∇²_XT F · dT + ∇²_XA F · dA ]
//! [ D   0  ] [ dν ]  = −[ 0                            ]
//! ```
//!
//! (the specialization of the paper's Eq. 15 to inactive box constraints:
//! with `0 < x < 1` strictly, complementary slackness forces `μ¹ = μ² = 0`
//! and those rows drop out). For training we never materialize `dX/dT`;
//! we solve the *adjoint* system once per backward pass:
//! `K [y; z] = [∂L/∂X; 0]`, then contract `∂L/∂T = −(∇²_XT F)ᵀ y` and
//! `∂L/∂A = −(∇²_XA F)ᵀ y`, both available in closed form.
//!
//! Only the convex (sequential-execution) case is supported — exactly the
//! regime where the paper applies MFCP-AD; the parallel case goes through
//! [`crate::zeroth`].

use crate::objective::{self, BarrierKind, CostKind, RelaxationParams};
use crate::problem::MatchingProblem;
use mfcp_linalg::{lu::Lu, LinalgError, Matrix};

/// Gradients of a scalar loss with respect to the problem's performance
/// matrices, obtained by implicit differentiation.
#[derive(Debug, Clone)]
pub struct KktGradients {
    /// `∂L/∂T`, shape `M x N`.
    pub dl_dt: Matrix,
    /// `∂L/∂A`, shape `M x N`.
    pub dl_da: Matrix,
}

/// Second derivative `φ''(g)` of the barrier.
fn barrier_second_derivative(params: &RelaxationParams, g: f64) -> f64 {
    match params.barrier {
        BarrierKind::Log { eps } => {
            if g >= eps {
                params.lambda / (g * g)
            } else {
                0.0
            }
        }
        BarrierKind::HardPenalty | BarrierKind::None => 0.0,
    }
}

/// Assembles the symmetric KKT saddle matrix `[[H, Dᵀ], [D, 0]]` at `x`,
/// where `H = ∇²_XX F` (smooth-max + barrier + entropy terms, plus mild
/// Tikhonov damping) and `D` stacks the per-task simplex equalities.
///
/// Shared by [`implicit_gradients`] (which solves the adjoint system) and
/// the Newton solver in [`crate::solver`] (which solves the primal step
/// system).
pub fn assemble_kkt_matrix(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
) -> Matrix {
    let (m, n) = x.shape();
    let mn = m * n;
    let dim = mn + n;
    let stats = objective::cluster_stats(problem, params, x);
    let g = objective::reliability_slack(problem, x);
    let ddphi = barrier_second_derivative(params, g);
    let (beta, w): (f64, Vec<f64>) = match params.cost {
        CostKind::SmoothMax => (params.beta, stats.weights.clone()),
        CostKind::LinearSum => (0.0, vec![1.0; m]),
    };
    let t = &problem.times;
    let a = &problem.reliability;
    let nf = n as f64;
    let idx = |i: usize, j: usize| i * n + j;
    let mut k = Matrix::zeros(dim, dim);

    // H1 (smooth max): β t_ij t_kl (δ_ik w_i − w_i w_k)
    // H2 (barrier):    φ''(g) a_ij a_kl / N²
    // H3 (entropy):    ρ / x_ij on the diagonal
    // H4 (capacity):   per-cluster rank-1 blocks
    //                  φ''(slack_i) u_ij u_il / limit_i²
    let capacity = problem.capacity.as_ref().map(|cap| {
        let cap_ddphi: Vec<f64> = (0..m)
            .map(|i| barrier_second_derivative(params, cap.slack(x, i)))
            .collect();
        (cap, cap_ddphi)
    });
    for i in 0..m {
        for j in 0..n {
            let row = idx(i, j);
            for kk in 0..m {
                for l in 0..n {
                    let col = idx(kk, l);
                    let mut h =
                        beta * t[(i, j)] * t[(kk, l)] * w[i] * ((i == kk) as u8 as f64 - w[kk]);
                    h += ddphi * a[(i, j)] * a[(kk, l)] / (nf * nf);
                    if i == kk {
                        if let Some((cap, cap_ddphi)) = &capacity {
                            if cap_ddphi[i] != 0.0 {
                                h += cap_ddphi[i] * cap.usage[(i, j)] * cap.usage[(i, l)]
                                    / (cap.limits[i] * cap.limits[i]);
                            }
                        }
                    }
                    k[(row, col)] += h;
                }
            }
            if params.rho != 0.0 {
                // Floor the entry so a fully collapsed coordinate cannot
                // blow the diagonal up to the point of swamping every
                // other pivot of the LU factorization.
                k[(row, row)] += params.rho / x[(i, j)].max(1e-7);
            }
        }
    }
    // Mild Tikhonov damping for numerical safety on near-singular systems.
    let damping = 1e-10 * (1.0 + k.max_abs());
    for d in 0..mn {
        k[(d, d)] += damping;
    }
    // D blocks: equality constraint j touches x_{i j} for all i.
    for j in 0..n {
        for i in 0..m {
            k[(idx(i, j), mn + j)] = 1.0; // Dᵀ
            k[(mn + j, idx(i, j))] = 1.0; // D
        }
    }
    k
}

/// Computes `∂L/∂T` and `∂L/∂A` at the relaxed optimum `x_star` given the
/// upstream gradient `dl_dx = ∂L/∂X*`.
///
/// # Errors
/// Returns an error when the KKT matrix is singular (e.g. `rho = 0` with a
/// vertex solution).
///
/// # Panics
/// Panics if any speedup curve is non-trivial (non-convex case — use the
/// zeroth-order path). Both cost kinds are supported ([`CostKind::LinearSum`]
/// is the β → 0 limit of the smooth-max formulas).
pub fn implicit_gradients(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x_star: &Matrix,
    dl_dx: &Matrix,
) -> Result<KktGradients, LinalgError> {
    assert!(
        problem.speedup.iter().all(|c| c.is_trivial()),
        "MFCP-AD requires the convex (sequential) setting; use zeroth-order gradients for parallel execution"
    );
    let (m, n) = x_star.shape();
    assert_eq!((m, n), problem.times.shape());
    assert_eq!(dl_dx.shape(), (m, n));
    let mn = m * n;
    if mn == 0 {
        return Ok(KktGradients {
            dl_dt: Matrix::zeros(m, n),
            dl_da: Matrix::zeros(m, n),
        });
    }

    let stats = objective::cluster_stats(problem, params, x_star);
    let g = objective::reliability_slack(problem, x_star);
    let dphi = objective::barrier_derivative(params, g);
    let ddphi = barrier_second_derivative(params, g);
    // The linear-sum ablation is the β → 0 limit with uniform weights:
    // the cost Hessian vanishes and the cross term reduces to the
    // identity (∂²F/∂x_ij∂t_kl = δ_ik δ_jl).
    let (beta, w): (f64, Vec<f64>) = match params.cost {
        CostKind::SmoothMax => (params.beta, stats.weights.clone()),
        CostKind::LinearSum => (0.0, vec![1.0; m]),
    };
    let w = &w;
    let t = &problem.times;
    let a = &problem.reliability;
    let nf = n as f64;
    let idx = |i: usize, j: usize| i * n + j;
    let k = assemble_kkt_matrix(problem, params, x_star);

    // ---- adjoint solve K [y; z] = [dl_dx; 0] --------------------------
    let mut rhs = vec![0.0; mn + n];
    for i in 0..m {
        for j in 0..n {
            rhs[idx(i, j)] = dl_dx[(i, j)];
        }
    }
    let y_full = Lu::factor(&k)?.solve(&rhs)?;
    let y = Matrix::from_fn(m, n, |i, j| y_full[idx(i, j)]);

    // ---- contract with the closed-form cross Hessians ------------------
    // r_i = Σ_j t_ij y_ij ;  ȳᵗ = Σ_i w_i r_i ;  q = Σ_ij y_ij a_ij
    let mut r = vec![0.0; m];
    let mut q = 0.0;
    for i in 0..m {
        for j in 0..n {
            r[i] += t[(i, j)] * y[(i, j)];
            q += a[(i, j)] * y[(i, j)];
        }
    }
    let rbar: f64 = (0..m).map(|i| w[i] * r[i]).sum();

    // ∂²F/∂x_ij ∂t_kl = w_i δ_ik δ_jl + β t_ij w_i (δ_ik − w_k) x_kl
    // (∇²_XT F)ᵀ y [kl] = w_k y_kl + β w_k x_kl (r_k − r̄)
    let mut dl_dt = Matrix::zeros(m, n);
    for kcl in 0..m {
        for l in 0..n {
            let v = w[kcl] * y[(kcl, l)] + beta * w[kcl] * x_star[(kcl, l)] * (r[kcl] - rbar);
            dl_dt[(kcl, l)] = -v;
        }
    }

    // ∂²F/∂x_ij ∂a_kl = φ''(g) (x_kl/N)(a_ij/N) + φ'(g) δ_ik δ_jl / N
    // (∇²_XA F)ᵀ y [kl] = φ'' x_kl q / N² + φ' y_kl / N
    let mut dl_da = Matrix::zeros(m, n);
    for kcl in 0..m {
        for l in 0..n {
            let v = ddphi * x_star[(kcl, l)] * q / (nf * nf) + dphi * y[(kcl, l)] / nf;
            dl_da[(kcl, l)] = -v;
        }
    }

    Ok(KktGradients { dl_dt, dl_da })
}

/// Full Jacobians of the relaxed optimum with respect to the prediction
/// matrices, as dense `(M·N) x (M·N)` matrices in row-major `(i·N + j)`
/// flattening: `dx_dt[(p, q)] = ∂X*_p / ∂T_q`.
#[derive(Debug, Clone)]
pub struct SolutionJacobians {
    /// `∂X*/∂T`.
    pub dx_dt: Matrix,
    /// `∂X*/∂A`.
    pub dx_da: Matrix,
}

/// Materializes `∂X*/∂T` and `∂X*/∂A` at the relaxed optimum — the
/// interpretability view of the matching layer: column `(k, l)` says how
/// every assignment probability moves when the prediction for task `l` on
/// cluster `k` changes. One LU factorization, `2·M·N` solves.
///
/// Training never needs this (it uses the adjoint VJP in
/// [`implicit_gradients`]); use it for per-round sensitivity reports and
/// diagnostics. Same convexity restriction as the rest of this module.
pub fn solution_jacobians(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x_star: &Matrix,
) -> Result<SolutionJacobians, LinalgError> {
    assert!(
        problem.speedup.iter().all(|c| c.is_trivial()),
        "solution Jacobians require the convex (sequential) setting"
    );
    let (m, n) = x_star.shape();
    let mn = m * n;
    if mn == 0 {
        return Ok(SolutionJacobians {
            dx_dt: Matrix::zeros(0, 0),
            dx_da: Matrix::zeros(0, 0),
        });
    }
    let stats = objective::cluster_stats(problem, params, x_star);
    let g = objective::reliability_slack(problem, x_star);
    let dphi = objective::barrier_derivative(params, g);
    let ddphi = barrier_second_derivative(params, g);
    let (beta, w): (f64, Vec<f64>) = match params.cost {
        CostKind::SmoothMax => (params.beta, stats.weights.clone()),
        CostKind::LinearSum => (0.0, vec![1.0; m]),
    };
    let t = &problem.times;
    let a = &problem.reliability;
    let nf = n as f64;
    let idx = |i: usize, j: usize| i * n + j;
    let lu = Lu::factor(&assemble_kkt_matrix(problem, params, x_star))?;

    let mut dx_dt = Matrix::zeros(mn, mn);
    let mut dx_da = Matrix::zeros(mn, mn);
    let mut rhs = vec![0.0; mn + n];
    for kcl in 0..m {
        for l in 0..n {
            let col = idx(kcl, l);
            // ---- dX/dT column: rhs = −∇²_XT F e_(k,l) -----------------
            // ∂²F/∂x_ij∂t_kl = w_i δ_ik δ_jl + β t_ij w_i (δ_ik − w_k) x_kl
            for slot in rhs.iter_mut() {
                *slot = 0.0;
            }
            for i in 0..m {
                for j in 0..n {
                    let mut v = 0.0;
                    if i == kcl && j == l {
                        v += w[i];
                    }
                    v += beta
                        * t[(i, j)]
                        * w[i]
                        * ((i == kcl) as u8 as f64 - w[kcl])
                        * x_star[(kcl, l)];
                    rhs[idx(i, j)] = -v;
                }
            }
            let sol = lu.solve(&rhs)?;
            for p in 0..mn {
                dx_dt[(p, col)] = sol[p];
            }
            // ---- dX/dA column ------------------------------------------
            // ∂²F/∂x_ij∂a_kl = φ''(g)(x_kl/N)(a_ij/N) + φ'(g) δ_ik δ_jl/N
            for slot in rhs.iter_mut() {
                *slot = 0.0;
            }
            for i in 0..m {
                for j in 0..n {
                    let mut v = ddphi * x_star[(kcl, l)] * a[(i, j)] / (nf * nf);
                    if i == kcl && j == l {
                        v += dphi / nf;
                    }
                    rhs[idx(i, j)] = -v;
                }
            }
            let sol = lu.solve(&rhs)?;
            for p in 0..mn {
                dx_da[(p, col)] = sol[p];
            }
        }
    }
    Ok(SolutionJacobians { dx_dt, dx_da })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_relaxed, SolverOptions};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tight_opts() -> SolverOptions {
        SolverOptions {
            max_iters: 20_000,
            lr: 0.5,
            tol: 1e-14,
            ..Default::default()
        }
    }

    fn random_setup(seed: u64, m: usize, n: usize) -> (MatchingProblem, RelaxationParams, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
        let problem = MatchingProblem::new(t, a, 0.7);
        let params = RelaxationParams {
            beta: 3.0,
            lambda: 0.05,
            rho: 0.05,
            ..Default::default()
        };
        let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        (problem, params, c)
    }

    /// L(T, A) = <c, X*(T, A)>: the canonical linear probe for testing
    /// Jacobians of an argmin.
    fn probe_loss(problem: &MatchingProblem, params: &RelaxationParams, c: &Matrix) -> f64 {
        let sol = solve_relaxed(problem, params, &tight_opts());
        // Elementwise contraction <c, X*> without going through the
        // shape-checked hadamard Result (shapes are equal by construction).
        c.as_slice()
            .iter()
            .zip(sol.x.as_slice())
            .map(|(ci, xi)| ci * xi)
            .sum()
    }

    #[test]
    fn dt_matches_finite_differences() {
        let (problem, params, c) = random_setup(1, 3, 4);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();

        let h = 1e-5;
        for &(i, j) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let mut tp = problem.clone();
            tp.times[(i, j)] += h;
            let mut tm = problem.clone();
            tm.times[(i, j)] -= h;
            let numeric = (probe_loss(&tp, &params, &c) - probe_loss(&tm, &params, &c)) / (2.0 * h);
            let analytic = grads.dl_dt[(i, j)];
            assert!(
                (analytic - numeric).abs() < 2e-3 * (1.0 + numeric.abs()),
                "dT[{i},{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn da_matches_finite_differences() {
        // Make the barrier bind: gamma close to the achievable mean.
        let mut rng = StdRng::seed_from_u64(2);
        let t = Matrix::from_fn(3, 4, |_, _| rng.gen_range(0.5..2.5));
        let a = Matrix::from_fn(3, 4, |_, _| rng.gen_range(0.75..0.95));
        let problem = MatchingProblem::new(t, a, 0.82);
        let params = RelaxationParams {
            beta: 3.0,
            lambda: 0.1,
            rho: 0.05,
            ..Default::default()
        };
        let c = Matrix::from_fn(3, 4, |_, _| rng.gen_range(-1.0..1.0));
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let g = objective::reliability_slack(&problem, &sol.x);
        assert!(g > 0.0, "barrier must be active-side feasible");
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();

        let h = 1e-5;
        for &(i, j) in &[(0usize, 1usize), (1, 0), (2, 2)] {
            let mut pp = problem.clone();
            pp.reliability[(i, j)] += h;
            let mut pm = problem.clone();
            pm.reliability[(i, j)] -= h;
            let numeric = (probe_loss(&pp, &params, &c) - probe_loss(&pm, &params, &c)) / (2.0 * h);
            let analytic = grads.dl_da[(i, j)];
            assert!(
                (analytic - numeric).abs() < 2e-3 * (1.0 + numeric.abs()),
                "dA[{i},{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn reliability_gradient_nonzero_through_barrier() {
        // The whole point of the interior-point reformulation: ∂X*/∂A must
        // not vanish when the constraint is strictly satisfied.
        let (problem, params, c) = random_setup(3, 3, 5);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        assert!(
            grads.dl_da.max_abs() > 1e-8,
            "log barrier should give meaningful reliability gradients"
        );
    }

    #[test]
    fn hard_penalty_gradient_vanishes_when_feasible() {
        // The ablation's failure mode (paper Table 1 row 2): with a hinge
        // penalty and a satisfied constraint, ∂X*/∂A ≡ 0.
        let (problem, mut params, c) = random_setup(4, 3, 5);
        params.barrier = BarrierKind::HardPenalty;
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        assert!(objective::reliability_slack(&problem, &sol.x) > 0.0);
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        assert!(grads.dl_da.max_abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "convex")]
    fn rejects_parallel_setting() {
        let (mut problem, params, c) = random_setup(5, 2, 3);
        problem.speedup = vec![crate::speedup::SpeedupCurve::paper_parallel(); 2];
        let x = crate::solver::uniform_init(2, 3);
        let _ = implicit_gradients(&problem, &params, &x, &c);
    }

    #[test]
    fn linear_cost_gradients_match_finite_differences() {
        let (problem, mut params, c) = random_setup(8, 3, 4);
        params.cost = CostKind::LinearSum;
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        let h = 1e-5;
        for &(i, j) in &[(0usize, 0usize), (2, 3)] {
            let mut tp = problem.clone();
            tp.times[(i, j)] += h;
            let mut tm = problem.clone();
            tm.times[(i, j)] -= h;
            let numeric = (probe_loss(&tp, &params, &c) - probe_loss(&tm, &params, &c)) / (2.0 * h);
            let analytic = grads.dl_dt[(i, j)];
            assert!(
                (analytic - numeric).abs() < 2e-3 * (1.0 + numeric.abs()),
                "dT[{i},{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn jacobian_consistent_with_adjoint_vjp() {
        // For any upstream gradient c: implicit_gradients(c) must equal
        // the contraction of c with the materialized Jacobians.
        let (problem, params, c) = random_setup(6, 3, 4);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        let jac = solution_jacobians(&problem, &params, &sol.x).unwrap();
        let (m, n) = (3, 4);
        let mn = m * n;
        let cvec: Vec<f64> = (0..mn).map(|p| c[(p / n, p % n)]).collect();
        for kcl in 0..m {
            for l in 0..n {
                let col = kcl * n + l;
                let via_jac_t: f64 = (0..mn).map(|p| cvec[p] * jac.dx_dt[(p, col)]).sum();
                let via_jac_a: f64 = (0..mn).map(|p| cvec[p] * jac.dx_da[(p, col)]).sum();
                assert!(
                    (via_jac_t - grads.dl_dt[(kcl, l)]).abs() < 1e-8,
                    "dT[{kcl},{l}]: {via_jac_t} vs {}",
                    grads.dl_dt[(kcl, l)]
                );
                assert!(
                    (via_jac_a - grads.dl_da[(kcl, l)]).abs() < 1e-8,
                    "dA[{kcl},{l}]: {via_jac_a} vs {}",
                    grads.dl_da[(kcl, l)]
                );
            }
        }
    }

    #[test]
    fn jacobian_columns_sum_to_zero_within_tasks() {
        // Perturbing any prediction moves mass within each task's simplex
        // column, so ∂(Σ_i x_ij)/∂θ = 0 for every task j.
        let (problem, params, _) = random_setup(7, 3, 4);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let jac = solution_jacobians(&problem, &params, &sol.x).unwrap();
        let (m, n) = (3, 4);
        for col in 0..m * n {
            for j in 0..n {
                let mass_change: f64 = (0..m).map(|i| jac.dx_dt[(i * n + j, col)]).sum();
                assert!(
                    mass_change.abs() < 1e-8,
                    "column {col}, task {j}: mass change {mass_change}"
                );
            }
        }
    }

    #[test]
    fn empty_problem_returns_zeros() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let params = RelaxationParams::default();
        let x = Matrix::zeros(2, 0);
        let g = implicit_gradients(&problem, &params, &x, &Matrix::zeros(2, 0)).unwrap();
        assert_eq!(g.dl_dt.shape(), (2, 0));
    }
}
